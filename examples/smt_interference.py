"""SMT and branch prediction (Section 3 of the paper).

Two experiments:

1. global-history predictor, per-thread vs shared history registers —
   the EV8 keeps one global history register per thread; sharing one
   register across threads interleaves unrelated outcomes and destroys
   correlation;
2. local-history predictor under two threads of the same binary — the
   paper's argument for why a local component would have been "disastrous"
   under SMT: both the history table and the counter table are polluted.

Run:  python examples/smt_interference.py [num_branches]
"""

import sys

from repro import GsharePredictor, LocalPredictor
from repro.history.providers import BranchGhistProvider
from repro.workloads.generator import generate_trace
from repro.workloads.smt import simulate_smt
from repro.workloads.spec95 import profile_for, spec95_trace


def main() -> None:
    num_branches = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000

    print("=== Global history under SMT ===")
    threads = [spec95_trace("perl", num_branches),
               spec95_trace("li", num_branches)]
    for per_thread in (True, False):
        result = simulate_smt(GsharePredictor(64 * 1024, 12), threads,
                              BranchGhistProvider,
                              per_thread_history=per_thread)
        label = ("one history register per thread (EV8 design)"
                 if per_thread else "single shared history register")
        print(f"  {label}: {result.misprediction_rate:.2%} mispredicted")
        for thread in result.per_thread:
            print(f"      {thread.trace_name}: "
                  f"{thread.misprediction_rate:.2%}")

    print("\n=== Local history under SMT (same binary, two threads) ===")
    base = profile_for("perl")
    same_binary = [generate_trace(base, num_branches),
                   generate_trace(base.with_seed(1234), num_branches)]

    def local():
        return LocalPredictor(1024, 10, 16 * 1024)

    solo = [simulate_smt(local(), [trace], BranchGhistProvider)
            for trace in same_binary]
    smt = simulate_smt(local(), same_binary, BranchGhistProvider)
    solo_misses = sum(run.total_mispredictions for run in solo)
    print(f"  threads run alone:    {solo_misses} mispredictions total")
    print(f"  threads run together: {smt.total_mispredictions} "
          f"mispredictions")
    growth = smt.total_mispredictions / max(1, solo_misses)
    print(f"  -> {growth:.2f}x more mispredictions: both the per-branch "
          f"history table and the counters are cross-polluted, as Section 3 "
          f"warns.")


if __name__ == "__main__":
    main()
