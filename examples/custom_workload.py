"""Build a custom synthetic program with the CFG API and study its
predictability.

Shows the workload substrate as a user-facing tool: hand-construct a small
program (an interpreter-style dispatch loop with a deeply-correlated branch
inside), execute it to a trace, and sweep predictors/history lengths over
it.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro import GsharePredictor, TableConfig, TwoBcGskewPredictor, simulate
from repro.workloads.behaviors import (
    BiasedBehavior,
    GlobalCorrelatedBehavior,
    LoopBehavior,
    PatternBehavior,
)
from repro.workloads.cfg import (
    DispatchNode,
    Function,
    IfNode,
    LoopNode,
    Program,
    Sequence,
    StaticBranch,
    Straight,
)
from repro.traces.stats import compute_statistics


def build_program() -> Program:
    rng = np.random.default_rng(2026)

    # An "opcode handler" with a guard chain and a data-dependent branch.
    handler_a = Function("handler_a", Sequence([
        IfNode(StaticBranch(0, BiasedBehavior(rng, 0.03)), Straight(2),
               lead=1),
        IfNode(StaticBranch(1, BiasedBehavior(rng, 0.5)), Straight(3),
               lead=2),
    ]))

    # A handler whose branch repeats a 4-beat pattern.
    handler_b = Function("handler_b", Sequence([
        IfNode(StaticBranch(2, PatternBehavior(rng, "1101")), Straight(2),
               lead=1),
        Straight(3),
    ]))

    # A loop whose inner branch echoes a decision made ~14 branches earlier:
    # only long-history predictors can see it.
    deep_branch = StaticBranch(3, GlobalCorrelatedBehavior(rng, [14]))
    handler_c = Function("handler_c", LoopNode(
        StaticBranch(4, LoopBehavior(rng, 6)),
        Sequence([
            IfNode(StaticBranch(5, BiasedBehavior(rng, 0.10)), Straight(1),
                   lead=1),
            IfNode(deep_branch, Straight(2), lead=1),
        ]),
        lead=1))

    handlers = [handler_a, handler_b, handler_c]
    # The interpreter visits handlers in a strongly structured order.
    transition = np.array([[0.1, 0.8, 0.1],
                           [0.1, 0.1, 0.8],
                           [0.8, 0.1, 0.1]])
    dispatch = DispatchNode(rng, handlers, transition)
    return Program("interp", handlers, dispatch, code_base=0x40_0000)


def main() -> None:
    program = build_program()
    print(f"program spans {program.code_end - program.code_base} bytes, "
          f"{len(program.static_branches())} static conditional branches")
    trace = program.run(60_000)
    stats = compute_statistics(trace)
    print(f"trace: {stats.instruction_count} instructions, taken rate "
          f"{stats.taken_rate:.2f}, lghist/ghist "
          f"{stats.lghist_to_ghist_ratio:.2f}\n")

    print("gshare, 16K entries, sweeping history length:")
    for history in (0, 4, 8, 12, 16, 20):
        result = simulate(GsharePredictor(16 * 1024, history), trace)
        bar = "#" * int(result.misprediction_rate * 200)
        print(f"  h={history:<2}  {result.misprediction_rate:6.2%}  {bar}")

    two_bc = TwoBcGskewPredictor(
        TableConfig(4 * 1024, 0), TableConfig(16 * 1024, 10),
        TableConfig(16 * 1024, 18), TableConfig(16 * 1024, 13),
        name="2bc-gskew")
    result = simulate(two_bc, trace)
    print(f"\n2Bc-gskew (per-table history 10/18/13): "
          f"{result.misprediction_rate:6.2%}")


if __name__ == "__main__":
    main()
