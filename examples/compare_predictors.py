"""Compare the paper's global-history predictor zoo (a scaled-down Fig 5).

Runs bimodal, gshare, GAs, agree, e-gskew, bi-mode, YAGS, 2Bc-gskew, the
21264 tournament, the perceptron and the full EV8 over the eight synthetic
SPECINT95 benchmarks and prints the misp/KI grid.

Run:  python examples/compare_predictors.py [num_branches]
(default 60000 — a quick look; the full-scale version is
``pytest benchmarks/bench_fig5.py``)
"""

import sys

from repro import (
    AgreePredictor,
    BiModePredictor,
    BimodalPredictor,
    EGskewPredictor,
    EV8BranchPredictor,
    GAsPredictor,
    GsharePredictor,
    PerceptronPredictor,
    TableConfig,
    TournamentPredictor,
    TwoBcGskewPredictor,
    YagsPredictor,
    ev8_info_provider,
    spec95_traces,
)
from repro.history.providers import BranchGhistProvider
from repro.sim.compare import run_comparison


def main() -> None:
    num_branches = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    traces = spec95_traces(num_branches)

    configs = {
        "bimodal": lambda: BimodalPredictor(64 * 1024),
        "gshare": lambda: GsharePredictor(256 * 1024, 14),
        "GAs": lambda: GAsPredictor(256 * 1024, 10),
        "agree": lambda: AgreePredictor(128 * 1024, 16 * 1024, 14),
        "e-gskew": lambda: EGskewPredictor(64 * 1024, 16,
                                           g0_history_length=12),
        "bi-mode": lambda: BiModePredictor(128 * 1024, 16 * 1024, 20),
        "YAGS": lambda: YagsPredictor(32 * 1024, 32 * 1024, 25),
        "2Bc-gskew": lambda: TwoBcGskewPredictor(
            TableConfig(16 * 1024, 0), TableConfig(64 * 1024, 17),
            TableConfig(64 * 1024, 27), TableConfig(64 * 1024, 20)),
        "21264": lambda: TournamentPredictor(),
        "perceptron": lambda: PerceptronPredictor(1024, 24),
        "EV8": lambda: EV8BranchPredictor(),
    }
    providers = {name: BranchGhistProvider for name in configs}
    providers["EV8"] = ev8_info_provider

    print(f"Simulating {len(configs)} predictors x {len(traces)} benchmarks "
          f"({num_branches} branches each)...\n")
    table = run_comparison(configs, traces, provider_factories=providers)
    print(table.render("Global-history predictor comparison (misp/KI)"))

    print("\nStorage budgets:")
    for name, factory in configs.items():
        print(f"  {name:<11} {factory().storage_kbits:8.1f} Kbits")


if __name__ == "__main__":
    main()
