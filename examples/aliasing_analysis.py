"""Measure the aliasing that de-aliased predictors are built to absorb.

Section 4 of the paper adopts 2Bc-gskew because "aliased" global-history
predictors (gshare, GAs) let branch substreams intermingle in shared
counters.  This example quantifies that on a synthetic gcc trace:

* destructive-aliasing rates of a gshare index across table sizes,
* how the skewed family spreads conflicting pairs across banks (a pair
  colliding in one bank almost never collides in another),
* how the measured destructive rate tracks the actual accuracy gap between
  gshare and e-gskew.

Run:  python examples/aliasing_analysis.py [benchmark]
"""

import sys

from repro import EGskewPredictor, GsharePredictor, simulate, spec95_trace
from repro.history.providers import BranchGhistProvider
from repro.indexing.fold import gshare_index, info_word
from repro.indexing.skew import skew_index
from repro.sim.interference import measure_interference

HISTORY = 12


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    trace = spec95_trace(benchmark, 80_000)

    print(f"=== Destructive aliasing vs table size (gshare h={HISTORY}, "
          f"{benchmark}) ===")
    for bits in (8, 10, 12, 14, 16):
        entries = 1 << bits
        report = measure_interference(
            lambda vector, bits=bits: gshare_index(
                vector.branch_pc, vector.history, HISTORY, bits),
            entries, trace, BranchGhistProvider())
        print(f"  {entries:>6} entries: aliased {report.aliased_fraction:6.1%}"
              f"  destructive {report.destructive_fraction:6.1%}"
              f"  utilization {report.utilization:6.1%}")

    print("\n=== Inter-bank dispersion of the skewed family (2x12-bit) ===")
    provider = BranchGhistProvider()

    def skew(rank):
        return lambda vector: skew_index(
            rank, info_word(vector.address, vector.history, HISTORY, 24), 12)

    for rank in (1, 2, 3):
        report = measure_interference(skew(rank), 1 << 12, trace,
                                      BranchGhistProvider())
        print(f"  bank function {rank}: destructive "
              f"{report.destructive_fraction:6.1%}")
    print("  (any single bank suffers aliasing; the majority vote of three "
          "differently-indexed banks absorbs it)")

    print("\n=== Accuracy consequence (64 Kbit budget) ===")
    gshare = simulate(GsharePredictor(1 << 15, HISTORY), trace)
    egskew = simulate(EGskewPredictor(1 << 13, HISTORY), trace)
    print(f"  gshare 32K entries : {gshare.misp_per_ki:7.3f} misp/KI")
    print(f"  e-gskew 3x8K       : {egskew.misp_per_ki:7.3f} misp/KI "
          f"(3/4 of the budget)")


if __name__ == "__main__":
    main()
