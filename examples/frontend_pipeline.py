"""Walk the EV8 front end: fetch blocks, lghist, conflict-free banking.

Demonstrates the structural side of the paper:

* fetch-block construction (Section 2: blocks end at aligned 8-instruction
  boundaries or taken control flow),
* the lghist compression ratio (Table 3),
* the two-block-ahead bank number computation with its zero-conflict
  guarantee (Section 6),
* the line predictor's "relatively low" accuracy that motivates backing it
  with the full PC-address generation pipeline (Fig 1),
* where one prediction physically lives: bank / wordline / word / bit
  (Section 7.1).

Run:  python examples/frontend_pipeline.py [benchmark]
"""

import sys
from collections import Counter

from repro import EV8BranchPredictor, spec95_trace
from repro.ev8.frontend import FrontEnd
from repro.history.providers import ev8_info_provider
from repro.traces.fetch import fetch_blocks_for
from repro.traces.stats import compute_statistics


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "perl"
    trace = spec95_trace(benchmark, 50_000)
    blocks = fetch_blocks_for(trace)

    print(f"=== Fetch blocks ({benchmark}) ===")
    sizes = Counter(block.num_instructions for block in blocks)
    branches = Counter(len(block.branch_pcs) for block in blocks)
    print(f"{len(blocks)} fetch blocks for {trace.instruction_count} "
          f"instructions")
    print("block size distribution:",
          {size: count for size, count in sorted(sizes.items())})
    print("branches/block distribution:",
          {n: count for n, count in sorted(branches.items())})
    stats = compute_statistics(trace)
    print(f"lghist/ghist ratio: {stats.lghist_to_ghist_ratio:.2f} "
          f"(each lghist bit summarises that many branches — Table 3)")

    print("\n=== Front-end pipeline (2 blocks/cycle) ===")
    front_end_stats = FrontEnd().run(trace)
    print(f"cycles: {front_end_stats.cycles}, "
          f"conditional predictions: {front_end_stats.conditional_branches}")
    print(f"line predictor accuracy: {front_end_stats.line_accuracy:.1%} "
          f"(hence the two-cycle PC-address generator behind it)")
    print(f"bank conflicts between successive blocks: "
          f"{front_end_stats.bank_conflicts} (guaranteed zero by the "
          f"Section 6 bank number computation)")
    print(f"max conditional predictions in one cycle: "
          f"{front_end_stats.max_predictions_in_a_cycle} (architectural "
          f"cap: 16)")

    print("\n=== PC-address generation (Fig 1) ===")
    from repro.ev8.pcgen import PCAddressGenerator
    generator = PCAddressGenerator(EV8BranchPredictor(), ev8_info_provider())
    pcgen_stats = generator.run(trace)
    print(f"line predictor alone:  {pcgen_stats.line_accuracy:.1%} of "
          f"next-block addresses")
    print(f"full PC generator:     {pcgen_stats.pcgen_accuracy:.1%} "
          f"(conditional predictor + jump table + return address stack)")
    print(f"fetch redirects (line prediction corrected two cycles later): "
          f"{pcgen_stats.redirects}")
    if pcgen_stats.ras_pops:
        print(f"return address stack:  {pcgen_stats.ras_accuracy:.1%} over "
              f"{pcgen_stats.ras_pops} returns")

    print("\n=== Physical location of one prediction (Section 7.1) ===")
    predictor = EV8BranchPredictor()
    provider = ev8_info_provider()
    shown = 0
    for block in blocks:
        vectors = provider.begin_block(block)
        for vector in vectors:
            bank, offset, line, column = predictor.physical_location(
                vector, "G1")
            print(f"branch {vector.branch_pc:#x}: G1 bank {bank}, "
                  f"wordline {line:2d}, column {column:2d}, "
                  f"bit {offset} of the 8-bit word")
            shown += 1
            if shown >= 5:
                break
        provider.end_block(block)
        if shown >= 5:
            break


if __name__ == "__main__":
    main()
