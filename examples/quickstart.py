"""Quickstart: predict a synthetic gcc trace with the Alpha EV8 predictor.

Builds the shipped 352 Kbit EV8 configuration (Table 1 of the paper), runs
it over a synthetic SPECINT95-style trace with the EV8 information vector
(three-fetch-blocks-old lghist + path), and compares it against a bimodal
predictor of the same total budget.

Run:  python examples/quickstart.py [benchmark] [num_branches]
"""

import sys

from repro import (
    BimodalPredictor,
    EV8BranchPredictor,
    simulate,
    spec95_trace,
)
from repro.traces.stats import compute_statistics


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    num_branches = int(sys.argv[2]) if len(sys.argv) > 2 else 100_000

    print(f"Generating a {num_branches}-branch synthetic '{benchmark}' trace...")
    trace = spec95_trace(benchmark, num_branches)
    stats = compute_statistics(trace)
    print(f"  {stats.instruction_count} instructions, "
          f"{stats.static_conditional} static conditional branches, "
          f"taken rate {stats.taken_rate:.2f}, "
          f"lghist/ghist ratio {stats.lghist_to_ghist_ratio:.2f}")

    print("\nThe Alpha EV8 conditional branch predictor (Table 1):")
    ev8 = EV8BranchPredictor()
    for name, (prediction, hysteresis) in ev8.table_sizes().items():
        config = dict(zip(("BIM", "G0", "G1", "Meta"),
                          ev8.config.tables()))[name]
        print(f"  {name:<5} {prediction // 1024:>3}K prediction entries, "
              f"{hysteresis // 1024:>3}K hysteresis, "
              f"history length {config.history_length}")
    print(f"  total {ev8.storage_kbits:.0f} Kbits "
          f"({ev8.config.prediction_bits // 1024} prediction + "
          f"{ev8.config.hysteresis_bits // 1024} hysteresis)")

    print("\nSimulating (trace-driven, immediate update)...")
    result = simulate(ev8, trace, EV8BranchPredictor.make_provider())
    print(f"  EV8:     {result.misp_per_ki:7.3f} misp/KI   "
          f"accuracy {result.accuracy:.2%}")

    bimodal = BimodalPredictor(128 * 1024, name="bimodal-352Kb-class")
    baseline = simulate(bimodal, trace)
    print(f"  bimodal: {baseline.misp_per_ki:7.3f} misp/KI   "
          f"accuracy {baseline.accuracy:.2%}")
    factor = baseline.mispredictions / max(1, result.mispredictions)
    print(f"\nThe EV8 removes {factor:.1f}x the mispredictions of a "
          f"same-class bimodal table on this workload.")


if __name__ == "__main__":
    main()
