"""Explore the 2Bc-gskew design space the way Section 4 of the paper does.

Four axes, each with the paper's claim:

1. update policy — partial beats total (Section 4.2),
2. BIM size — shrinking the bimodal table is free at large sizes
   (Section 4.6),
3. hysteresis sharing — half-size hysteresis costs almost nothing
   (Section 4.4),
4. history lengths — per-table lengths beat one shared length
   (Section 4.5).

Run:  python examples/design_space.py [num_branches]
"""

import sys

from repro import TableConfig, TwoBcGskewPredictor, spec95_traces
from repro.sim.compare import run_comparison


def make(bim_entries=16 * 1024, entries=64 * 1024, histories=(17, 27, 20),
         g0_hyst=None, meta_hyst=None, policy="partial", name="cfg"):
    g0_history, g1_history, meta_history = histories
    return lambda: TwoBcGskewPredictor(
        bim=TableConfig(bim_entries, 0),
        g0=TableConfig(entries, g0_history, g0_hyst),
        g1=TableConfig(entries, g1_history),
        meta=TableConfig(entries, meta_history, meta_hyst),
        update_policy=policy, name=name)


def main() -> None:
    num_branches = int(sys.argv[1]) if len(sys.argv) > 1 else 80_000
    traces = spec95_traces(num_branches)

    axes = {
        "partial update": make(policy="partial", name="partial"),
        "total update": make(policy="total", name="total"),
        "BIM 64K": make(bim_entries=64 * 1024, name="bim64"),
        "BIM 16K": make(name="bim16"),
        "full hysteresis": make(name="full-hyst"),
        "half G0/Meta hyst": make(g0_hyst=32 * 1024, meta_hyst=32 * 1024,
                                  name="half-hyst"),
        "equal history 16": make(histories=(16, 16, 16), name="equal16"),
        "per-table history": make(name="pertable"),
    }
    print(f"Sweeping the 2Bc-gskew design space "
          f"({num_branches} branches/benchmark)...\n")
    table = run_comparison(axes, traces)
    print(table.render("2Bc-gskew design axes (misp/KI)"))

    print("\nPaper claims vs this run (mean misp/KI):")
    pairs = [
        ("partial update beats total (Sec 4.2)", "partial update",
         "total update"),
        ("small BIM is free at 4x64K (Sec 4.6)", "BIM 16K", "BIM 64K"),
        ("half hysteresis is nearly free (Sec 4.4)", "half G0/Meta hyst",
         "full hysteresis"),
        ("per-table history beats equal (Sec 4.5)", "per-table history",
         "equal history 16"),
    ]
    for claim, better, worse in pairs:
        b, w = table.mean(better), table.mean(worse)
        verdict = "HOLDS" if b <= w * 1.02 else "DOES NOT HOLD"
        print(f"  {claim}: {better} {b:.3f} vs {worse} {w:.3f} -> {verdict}")


if __name__ == "__main__":
    main()
