"""Re-derive the "best history length" constants of
``repro.experiments.common.BEST_HISTORY``.

The paper tunes each Fig 5 predictor's history length to its trace set
(Section 8.2); we do the same for the synthetic stand-ins.  This script
re-runs that calibration so the constants can be regenerated after any
workload change.

Run:  python examples/calibrate_history.py [num_branches]
(300000 was used for the committed constants; smaller is faster and
noisier)
"""

import sys

from repro import (
    BiModePredictor,
    GsharePredictor,
    TableConfig,
    TwoBcGskewPredictor,
    YagsPredictor,
    spec95_traces,
)
from repro.sim.sweep import sweep


def report(title, points):
    best = min(points, key=lambda point: point.mean_misp_per_ki)
    print(f"\n== {title} ==")
    for point in points:
        marker = "  <- best" if point is best else ""
        print(f"  h={point.value:<12} mean {point.mean_misp_per_ki:7.4f} "
              f"misp/KI{marker}")
    return best.value


def main() -> None:
    num_branches = int(sys.argv[1]) if len(sys.argv) > 1 else 300_000
    print(f"Calibrating on {num_branches}-branch traces "
          f"(this takes a while at full scale)...")
    traces = spec95_traces(num_branches)

    results = {}
    results["gshare_1m"] = report(
        "gshare 1M entries",
        sweep(lambda h: GsharePredictor(1 << 20, h),
              (8, 12, 14, 16, 20), traces))
    results["bimode"] = report(
        "bi-mode 2x128K",
        sweep(lambda h: BiModePredictor(1 << 17, 1 << 14, h),
              (12, 14, 17, 20, 23), traces))
    results["yags_small"] = report(
        "YAGS 288Kb",
        sweep(lambda h: YagsPredictor(1 << 14, 1 << 14, h),
              (12, 14, 18, 23, 26), traces))
    results["yags_big"] = report(
        "YAGS 576Kb",
        sweep(lambda h: YagsPredictor(1 << 15, 1 << 15, h),
              (12, 15, 19, 25, 28), traces))

    for label, entries, candidates in (
            ("2bc_32k", 1 << 15,
             [(12, 19, 14), (13, 21, 15), (13, 23, 16), (15, 15, 15)]),
            ("2bc_64k", 1 << 16,
             [(13, 21, 15), (15, 23, 17), (17, 27, 20), (16, 16, 16)])):
        print(f"\n== 2Bc-gskew 4x{entries // 1024}K (G0, G1, Meta) ==")
        best_value, best_mean = None, float("inf")
        for g0, g1, meta in candidates:
            points = sweep(
                lambda _=0, g0=g0, g1=g1, meta=meta: TwoBcGskewPredictor(
                    TableConfig(entries, 0), TableConfig(entries, g0),
                    TableConfig(entries, g1), TableConfig(entries, meta)),
                [0], traces)
            mean = points[0].mean_misp_per_ki
            marker = ""
            if mean < best_mean:
                best_value, best_mean = (g0, g1, meta), mean
                marker = "  <- best so far"
            print(f"  (G0,G1,Meta)=({g0},{g1},{meta}) mean {mean:7.4f}"
                  f"{marker}")
        results[label] = best_value

    print("\nPaste into repro/experiments/common.py BEST_HISTORY:")
    for key, value in results.items():
        print(f'    "{key}": {value},')


if __name__ == "__main__":
    main()
