"""Tests for the split prediction/hysteresis counter arrays (Sections
4.3-4.4 of the paper)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.counters import SplitCounterArray


class TestConstruction:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            SplitCounterArray(48)

    def test_rejects_non_power_of_two_hysteresis(self):
        with pytest.raises(ValueError):
            SplitCounterArray(64, 48)

    def test_rejects_hysteresis_larger_than_prediction(self):
        with pytest.raises(ValueError):
            SplitCounterArray(64, 128)

    def test_default_initial_state_weak_not_taken(self):
        array = SplitCounterArray(16)
        for index in range(16):
            assert array.counter_value(index) == 1  # weak not-taken
            assert not array.predict(index)

    def test_init_taken(self):
        array = SplitCounterArray(16, init_taken=True)
        for index in range(16):
            assert array.counter_value(index) == 2  # weak taken
            assert array.predict(index)

    def test_storage_accounting(self):
        assert SplitCounterArray(64).storage_bits == 128
        assert SplitCounterArray(64, 32).storage_bits == 96
        assert len(SplitCounterArray(64)) == 64


class TestSaturatingSemantics:
    """The update must follow the conventional 2-bit automaton in the
    (prediction, hysteresis) encoding."""

    def test_full_walk_up(self):
        array = SplitCounterArray(4)
        array.set_counter(0, 0)  # strong not-taken
        expected = [1, 2, 3, 3]  # weak NT -> weak T -> strong T -> saturate
        for value in expected:
            array.update(0, True)
            assert array.counter_value(0) == value

    def test_full_walk_down(self):
        array = SplitCounterArray(4)
        array.set_counter(0, 3)
        expected = [2, 1, 0, 0]
        for value in expected:
            array.update(0, False)
            assert array.counter_value(0) == value

    def test_direction_flip_lands_weak(self):
        array = SplitCounterArray(4)
        array.set_counter(0, 1)  # weak not-taken
        array.update(0, True)
        assert array.counter_value(0) == 2  # weak taken, not strong

    @given(st.integers(0, 3), st.lists(st.booleans(), max_size=30))
    def test_matches_reference_automaton(self, start, outcomes):
        array = SplitCounterArray(4)
        array.set_counter(1, start)
        reference = start
        for taken in outcomes:
            array.update(1, taken)
            reference = min(3, reference + 1) if taken else max(0, reference - 1)
            assert array.counter_value(1) == reference
            assert array.predict(1) == (reference >= 2)


class TestStrengthen:
    def test_strengthen_sets_hysteresis_only(self):
        array = SplitCounterArray(4)
        array.set_counter(0, 2)  # weak taken
        array.strengthen(0, True)
        assert array.counter_value(0) == 3
        # Idempotent.
        array.strengthen(0, True)
        assert array.counter_value(0) == 3

    def test_strengthen_against_direction_weakens(self):
        # Can happen when a majority vote was right but this bank was wrong.
        array = SplitCounterArray(4)
        array.set_counter(0, 3)  # strong taken
        array.strengthen(0, False)
        assert array.counter_value(0) == 2  # weakened one step


class TestSharedHysteresis:
    """Section 4.4: two prediction entries share one hysteresis entry; the
    index differs only in the most significant bit."""

    def test_partner_enumeration(self):
        array = SplitCounterArray(8, 4)
        assert array.sharing_partners(1) == [1, 5]
        assert array.sharing_partners(5) == [1, 5]
        private = SplitCounterArray(8)
        assert private.sharing_partners(3) == [3]

    def test_shared_strength_is_visible_to_partner(self):
        array = SplitCounterArray(8, 4)
        array.set_counter(0, 3)  # strong taken -> shared hysteresis set
        # Partner entry 4 keeps its own direction but sees the hysteresis.
        assert array.predict(4) is False
        assert array.hysteresis(4) is True
        # So the partner is now effectively STRONG not-taken.
        assert array.counter_value(4) == 0

    def test_partner_reset_scenario_from_paper(self):
        """The Section 4.4 aliasing scenario: A keeps resetting the shared
        hysteresis bit, but two consecutive accesses to B with no
        intermediate access to A still let B flip its prediction bit."""
        array = SplitCounterArray(8, 4)
        a_index, b_index = 0, 4
        # B is biased not-taken but currently predicts taken (wrong
        # direction); A trains strongly taken (setting the shared bit).
        array.set_counter(b_index, 2)
        array.set_counter(a_index, 3)
        # B mispredicts: first update clears the shared hysteresis...
        array.update(b_index, False)
        assert array.predict(b_index) is True  # still wrong
        # ...A interferes by re-strengthening...
        array.strengthen(a_index, True)
        assert array.hysteresis(b_index) is True
        # ...but two consecutive B accesses fix B regardless.
        array.update(b_index, False)
        array.update(b_index, False)
        assert array.predict(b_index) is False

    def test_reset(self):
        array = SplitCounterArray(8, 4)
        array.set_counter(2, 3)
        array.reset()
        assert array.counter_value(2) == 1

    def test_set_counter_rejects_out_of_range(self):
        array = SplitCounterArray(4)
        with pytest.raises(ValueError):
            array.set_counter(0, 4)


class TestIndexWrapping:
    def test_indices_wrap_modulo_size(self):
        array = SplitCounterArray(8)
        array.set_counter(3, 3)
        assert array.predict(3 + 8) is True
        assert array.counter_value(3 + 16) == 3
