"""Tests for the split prediction/hysteresis counter arrays (Sections
4.3-4.4 of the paper)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.counters import SplitCounterArray


class TestConstruction:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            SplitCounterArray(48)

    def test_rejects_non_power_of_two_hysteresis(self):
        with pytest.raises(ValueError):
            SplitCounterArray(64, 48)

    def test_rejects_hysteresis_larger_than_prediction(self):
        with pytest.raises(ValueError):
            SplitCounterArray(64, 128)

    def test_default_initial_state_weak_not_taken(self):
        array = SplitCounterArray(16)
        for index in range(16):
            assert array.counter_value(index) == 1  # weak not-taken
            assert not array.predict(index)

    def test_init_taken(self):
        array = SplitCounterArray(16, init_taken=True)
        for index in range(16):
            assert array.counter_value(index) == 2  # weak taken
            assert array.predict(index)

    def test_storage_accounting(self):
        assert SplitCounterArray(64).storage_bits == 128
        assert SplitCounterArray(64, 32).storage_bits == 96
        assert len(SplitCounterArray(64)) == 64


class TestSaturatingSemantics:
    """The update must follow the conventional 2-bit automaton in the
    (prediction, hysteresis) encoding."""

    def test_full_walk_up(self):
        array = SplitCounterArray(4)
        array.set_counter(0, 0)  # strong not-taken
        expected = [1, 2, 3, 3]  # weak NT -> weak T -> strong T -> saturate
        for value in expected:
            array.update(0, True)
            assert array.counter_value(0) == value

    def test_full_walk_down(self):
        array = SplitCounterArray(4)
        array.set_counter(0, 3)
        expected = [2, 1, 0, 0]
        for value in expected:
            array.update(0, False)
            assert array.counter_value(0) == value

    def test_direction_flip_lands_weak(self):
        array = SplitCounterArray(4)
        array.set_counter(0, 1)  # weak not-taken
        array.update(0, True)
        assert array.counter_value(0) == 2  # weak taken, not strong

    @given(st.integers(0, 3), st.lists(st.booleans(), max_size=30))
    def test_matches_reference_automaton(self, start, outcomes):
        array = SplitCounterArray(4)
        array.set_counter(1, start)
        reference = start
        for taken in outcomes:
            array.update(1, taken)
            reference = min(3, reference + 1) if taken else max(0, reference - 1)
            assert array.counter_value(1) == reference
            assert array.predict(1) == (reference >= 2)


class TestStrengthen:
    def test_strengthen_sets_hysteresis_only(self):
        array = SplitCounterArray(4)
        array.set_counter(0, 2)  # weak taken
        array.strengthen(0, True)
        assert array.counter_value(0) == 3
        # Idempotent.
        array.strengthen(0, True)
        assert array.counter_value(0) == 3

    def test_strengthen_against_direction_weakens(self):
        # Can happen when a majority vote was right but this bank was wrong.
        array = SplitCounterArray(4)
        array.set_counter(0, 3)  # strong taken
        array.strengthen(0, False)
        assert array.counter_value(0) == 2  # weakened one step


class TestSharedHysteresis:
    """Section 4.4: two prediction entries share one hysteresis entry; the
    index differs only in the most significant bit."""

    def test_partner_enumeration(self):
        array = SplitCounterArray(8, 4)
        assert array.sharing_partners(1) == [1, 5]
        assert array.sharing_partners(5) == [1, 5]
        private = SplitCounterArray(8)
        assert private.sharing_partners(3) == [3]

    def test_shared_strength_is_visible_to_partner(self):
        array = SplitCounterArray(8, 4)
        array.set_counter(0, 3)  # strong taken -> shared hysteresis set
        # Partner entry 4 keeps its own direction but sees the hysteresis.
        assert array.predict(4) is False
        assert array.hysteresis(4) is True
        # So the partner is now effectively STRONG not-taken.
        assert array.counter_value(4) == 0

    def test_partner_reset_scenario_from_paper(self):
        """The Section 4.4 aliasing scenario: A keeps resetting the shared
        hysteresis bit, but two consecutive accesses to B with no
        intermediate access to A still let B flip its prediction bit."""
        array = SplitCounterArray(8, 4)
        a_index, b_index = 0, 4
        # B is biased not-taken but currently predicts taken (wrong
        # direction); A trains strongly taken (setting the shared bit).
        array.set_counter(b_index, 2)
        array.set_counter(a_index, 3)
        # B mispredicts: first update clears the shared hysteresis...
        array.update(b_index, False)
        assert array.predict(b_index) is True  # still wrong
        # ...A interferes by re-strengthening...
        array.strengthen(a_index, True)
        assert array.hysteresis(b_index) is True
        # ...but two consecutive B accesses fix B regardless.
        array.update(b_index, False)
        array.update(b_index, False)
        assert array.predict(b_index) is False

    def test_reset(self):
        array = SplitCounterArray(8, 4)
        array.set_counter(2, 3)
        array.reset()
        assert array.counter_value(2) == 1

    def test_set_counter_rejects_out_of_range(self):
        array = SplitCounterArray(4)
        with pytest.raises(ValueError):
            array.set_counter(0, 4)


class TestIndexWrapping:
    def test_indices_wrap_modulo_size(self):
        array = SplitCounterArray(8)
        array.set_counter(3, 3)
        assert array.predict(3 + 8) is True
        assert array.counter_value(3 + 16) == 3


def _scalar_replay(size, hysteresis_size, indices, takens):
    """Reference: predict-then-update one access at a time."""
    array = SplitCounterArray(size, hysteresis_size)
    predictions = []
    for index, taken in zip(indices, takens):
        predictions.append(array.predict(int(index)))
        array.update(int(index), bool(taken))
    return array, predictions


def _random_stream(size, length, seed=0):
    rng = np.random.default_rng(seed)
    # Skewed indices so hysteresis groups see real collision runs.
    indices = (rng.integers(0, size, size=length)
               & rng.integers(0, size, size=length))
    takens = rng.random(length) < 0.7
    return indices.astype(np.int64), takens


class TestBatchAccess:
    """``batch_access`` must replay a whole stream bit-identically to the
    scalar predict/update walk — including shared/half-size hysteresis,
    where the scan runs over the joint group state (Section 4.4)."""

    @pytest.mark.parametrize("size,hysteresis_size",
                             [(64, 64), (64, 32), (64, 16), (128, 32),
                              (16, 4), (8, 2)])
    def test_matches_scalar_replay(self, size, hysteresis_size):
        indices, takens = _random_stream(size, 3000, seed=size)
        reference, expected = _scalar_replay(size, hysteresis_size,
                                             indices, takens)
        array = SplitCounterArray(size, hysteresis_size)
        predictions = array.batch_access(indices, takens)
        assert predictions.tolist() == expected
        assert array._prediction == reference._prediction
        assert array._hysteresis == reference._hysteresis

    def test_chunking_does_not_change_results(self):
        indices, takens = _random_stream(64, 2000, seed=7)
        whole = SplitCounterArray(64, 16)
        chunked = SplitCounterArray(64, 16)
        whole_predictions = whole.batch_access(indices, takens)
        chunked_predictions = chunked.batch_access(indices, takens, chunk=13)
        assert (whole_predictions == chunked_predictions).all()
        assert whole._prediction == chunked._prediction
        assert whole._hysteresis == chunked._hysteresis

    def test_partner_interference_through_shared_bit(self):
        """The Section 4.4 aliasing scenario, replayed in one batch: hammering
        entry A must leak strength into partner B exactly as it does
        scalar-wise."""
        size, hysteresis_size = 8, 4
        a_index, b_index = 0, 4  # sharing partners
        indices = np.array([a_index] * 5 + [b_index, a_index, b_index] * 10,
                           dtype=np.int64)
        takens = np.array([True] * 5 + [False, True, False] * 10)
        reference, expected = _scalar_replay(size, hysteresis_size,
                                             indices, takens)
        array = SplitCounterArray(size, hysteresis_size)
        predictions = array.batch_access(indices, takens)
        assert predictions.tolist() == expected
        assert array._prediction == reference._prediction
        assert array._hysteresis == reference._hysteresis

    @given(st.lists(st.tuples(st.integers(0, 15), st.booleans()),
                    max_size=60))
    def test_matches_scalar_replay_hypothesis(self, accesses):
        indices = np.array([index for index, _ in accesses], dtype=np.int64)
        takens = np.array([taken for _, taken in accesses], dtype=np.bool_)
        reference, expected = _scalar_replay(16, 4, indices, takens)
        array = SplitCounterArray(16, 4)
        predictions = array.batch_access(indices, takens)
        assert predictions.tolist() == expected
        assert array._prediction == reference._prediction
        assert array._hysteresis == reference._hysteresis

    def test_extreme_sharing_ratio_outside_envelope(self):
        array = SplitCounterArray(256, 8)  # ratio 32
        assert not array.batch_supported
        with pytest.raises(ValueError, match="sharing ratio"):
            array.batch_access(np.zeros(4, dtype=np.int64),
                               np.zeros(4, dtype=np.bool_))

    def test_ev8_ratio_two_is_supported(self):
        # The paper's G0/Meta configuration: half-size hysteresis.
        assert SplitCounterArray(1 << 16, 1 << 15).batch_supported


class TestTrainManyUnique:
    """Vectorized strengthen/update over group-distinct index sets must match
    the scalar operations."""

    def test_update_matches_scalar(self):
        indices = np.array([1, 3, 6, 12], dtype=np.int64)  # distinct groups
        takens = np.array([True, False, True, False])
        reference = SplitCounterArray(16, 8)
        for value, index in enumerate(indices):
            reference.set_counter(int(index), value % 4)
        array = SplitCounterArray(16, 8)
        for value, index in enumerate(indices):
            array.set_counter(int(index), value % 4)
        for index, taken in zip(indices, takens):
            reference.update(int(index), bool(taken))
        array.train_many_unique(indices, takens,
                                update=np.ones(4, dtype=np.bool_))
        assert array._prediction == reference._prediction
        assert array._hysteresis == reference._hysteresis

    def test_strengthen_matches_scalar_including_disagreement(self):
        indices = np.array([0, 1, 2, 3], dtype=np.int64)
        takens = np.array([True, True, False, False])
        reference = SplitCounterArray(4)
        array = SplitCounterArray(4)
        for counters in (reference, array):
            counters.set_counter(0, 2)  # agrees with taken -> saturates
            counters.set_counter(1, 0)  # disagrees -> degenerates to a step
            counters.set_counter(2, 1)  # agrees with not-taken
            counters.set_counter(3, 3)  # disagrees -> weakened
        for index, taken in zip(indices, takens):
            reference.strengthen(int(index), bool(taken))
        array.train_many_unique(indices, takens,
                                strengthen=np.ones(4, dtype=np.bool_))
        assert array._prediction == reference._prediction
        assert array._hysteresis == reference._hysteresis

    def test_masks_select_disjoint_operations(self):
        indices = np.array([0, 1, 2], dtype=np.int64)
        takens = np.array([True, True, True])
        strengthen = np.array([True, False, False])
        update = np.array([False, True, False])
        reference = SplitCounterArray(8)
        array = SplitCounterArray(8)
        reference.strengthen(0, True)
        reference.update(1, True)
        array.train_many_unique(indices, takens, strengthen=strengthen,
                                update=update)
        # Position 2 selected by neither mask: untouched.
        assert array._prediction == reference._prediction
        assert array._hysteresis == reference._hysteresis

    def test_no_masks_is_a_no_op(self):
        array = SplitCounterArray(8)
        before = bytes(array._prediction)
        array.train_many_unique(np.array([1], dtype=np.int64),
                                np.array([True]))
        assert bytes(array._prediction) == before

    def test_gather_helpers_match_scalar_reads(self):
        array = SplitCounterArray(16, 8)
        rng = np.random.default_rng(3)
        for index in range(16):
            array.set_counter(index, int(rng.integers(0, 4)))
        indices = rng.integers(0, 64, size=40).astype(np.int64)
        assert array.predict_many(indices).tolist() == \
            [array.predict(int(i)) for i in indices]
        packed = array.packed_many(indices)
        expected = [(int(array.predict(int(i))) << 1)
                    | int(array.hysteresis(int(i))) for i in indices]
        assert packed.tolist() == expected
