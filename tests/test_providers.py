"""Tests for information-vector providers (the Fig 7 axis)."""

from repro.history.providers import (
    BlockLghistProvider,
    BranchGhistProvider,
    ev8_info_provider,
)
from repro.traces.fetch import FetchBlock


def make_block(start, branch_pcs, branch_outcomes, ended_taken=True):
    return FetchBlock(start, 8, list(branch_pcs), list(branch_outcomes),
                      ended_taken)


class TestBranchGhistProvider:
    def test_history_updates_within_block(self):
        provider = BranchGhistProvider()
        block = make_block(0x1000, [0x1000, 0x1004, 0x1008],
                           [True, False, True])
        vectors = provider.begin_block(block)
        assert [v.history for v in vectors] == [0b0, 0b1, 0b10]
        provider.end_block(block)
        next_block = make_block(0x2000, [0x2000], [False])
        vectors = provider.begin_block(next_block)
        assert vectors[0].history == 0b101

    def test_address_is_branch_pc(self):
        provider = BranchGhistProvider()
        block = make_block(0x1000, [0x1008], [True])
        vector = provider.begin_block(block)[0]
        assert vector.address == 0x1008
        assert vector.branch_pc == 0x1008

    def test_path_tracks_previous_blocks(self):
        provider = BranchGhistProvider()
        first = make_block(0x1000, [0x1000], [True])
        provider.begin_block(first)
        provider.end_block(first)
        second = make_block(0x2000, [0x2000], [True])
        vector = provider.begin_block(second)[0]
        assert vector.path[0] == 0x1000

    def test_reset(self):
        provider = BranchGhistProvider()
        block = make_block(0x1000, [0x1000], [True])
        provider.begin_block(block)
        provider.end_block(block)
        provider.reset()
        vector = provider.begin_block(block)[0]
        assert vector.history == 0
        assert vector.path == (0, 0, 0)


class TestBlockLghistProvider:
    def test_vectors_share_block_state(self):
        provider = BlockLghistProvider(include_path=False)
        block = make_block(0x1000, [0x1000, 0x1008], [False, True])
        vectors = provider.begin_block(block)
        assert vectors[0].history == vectors[1].history
        assert vectors[0].address == vectors[1].address == 0x1000
        assert vectors[0].branch_pc == 0x1000
        assert vectors[1].branch_pc == 0x1008

    def test_history_is_block_compressed(self):
        provider = BlockLghistProvider(include_path=False)
        first = make_block(0x1000, [0x1000, 0x1004], [False, True])
        provider.begin_block(first)
        provider.end_block(first)
        second = make_block(0x2000, [0x2000], [True])
        vector = provider.begin_block(second)[0]
        # One bit for the whole first block: last outcome True.
        assert vector.history == 0b1

    def test_delayed_variant(self):
        provider = BlockLghistProvider(include_path=False, delay_blocks=3)
        blocks = [make_block(0x1000 * (i + 1), [0x1000 * (i + 1)], [True])
                  for i in range(5)]
        histories = []
        for block in blocks:
            vectors = provider.begin_block(block)
            histories.append(vectors[0].history)
            provider.end_block(block)
        # Predicting block D excludes the three preceding blocks A, B, C
        # entirely: block 3 still sees nothing, block 4 sees exactly the
        # bit block 0 inserted.
        assert histories == [0, 0, 0, 0, 1]

    def test_bank_advances_every_block_even_without_branches(self):
        provider = BlockLghistProvider()
        banks = []
        for i in range(6):
            # Alternate branchy and branchless blocks at varied addresses.
            if i % 2:
                block = make_block(i * 0x40, [], [])
                provider.end_block(block)  # driver skips begin_block
            else:
                block = make_block(i * 0x40, [i * 0x40], [True])
                banks.append(provider.begin_block(block)[0].bank)
                provider.end_block(block)
        assert all(0 <= bank < 4 for bank in banks)

    def test_successive_blocks_get_distinct_banks(self):
        provider = BlockLghistProvider()
        previous = None
        for i in range(50):
            block = make_block((i * 0x24) & ~3, [(i * 0x24) & ~3], [True])
            bank = provider.begin_block(block)[0].bank
            if previous is not None:
                assert bank != previous
            previous = bank
            provider.end_block(block)

    def test_begin_block_idempotent_bank(self):
        provider = BlockLghistProvider()
        block = make_block(0x1000, [0x1000], [True])
        first = provider.begin_block(block)[0].bank
        second = provider.begin_block(block)[0].bank
        assert first == second

    def test_ev8_info_provider_configuration(self):
        provider = ev8_info_provider()
        assert provider._lghist.delay_blocks == 3
        assert provider._lghist.include_path is True
        assert provider._path.depth == 3
