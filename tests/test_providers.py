"""Tests for information-vector providers (the Fig 7 axis)."""

import pytest

from conftest import simple_loop_trace
from repro.history.providers import (
    BlockLghistProvider,
    BranchGhistProvider,
    ev8_info_provider,
)
from repro.traces.fetch import FetchBlock, fetch_blocks_for


def make_block(start, branch_pcs, branch_outcomes, ended_taken=True):
    return FetchBlock(start, 8, list(branch_pcs), list(branch_outcomes),
                      ended_taken)


class TestBranchGhistProvider:
    def test_history_updates_within_block(self):
        provider = BranchGhistProvider()
        block = make_block(0x1000, [0x1000, 0x1004, 0x1008],
                           [True, False, True])
        vectors = provider.begin_block(block)
        assert [v.history for v in vectors] == [0b0, 0b1, 0b10]
        provider.end_block(block)
        next_block = make_block(0x2000, [0x2000], [False])
        vectors = provider.begin_block(next_block)
        assert vectors[0].history == 0b101

    def test_address_is_branch_pc(self):
        provider = BranchGhistProvider()
        block = make_block(0x1000, [0x1008], [True])
        vector = provider.begin_block(block)[0]
        assert vector.address == 0x1008
        assert vector.branch_pc == 0x1008

    def test_path_tracks_previous_blocks(self):
        provider = BranchGhistProvider()
        first = make_block(0x1000, [0x1000], [True])
        provider.begin_block(first)
        provider.end_block(first)
        second = make_block(0x2000, [0x2000], [True])
        vector = provider.begin_block(second)[0]
        assert vector.path[0] == 0x1000

    def test_reset(self):
        provider = BranchGhistProvider()
        block = make_block(0x1000, [0x1000], [True])
        provider.begin_block(block)
        provider.end_block(block)
        provider.reset()
        vector = provider.begin_block(block)[0]
        assert vector.history == 0
        assert vector.path == (0, 0, 0)


class TestBlockLghistProvider:
    def test_vectors_share_block_state(self):
        provider = BlockLghistProvider(include_path=False)
        block = make_block(0x1000, [0x1000, 0x1008], [False, True])
        vectors = provider.begin_block(block)
        assert vectors[0].history == vectors[1].history
        assert vectors[0].address == vectors[1].address == 0x1000
        assert vectors[0].branch_pc == 0x1000
        assert vectors[1].branch_pc == 0x1008

    def test_history_is_block_compressed(self):
        provider = BlockLghistProvider(include_path=False)
        first = make_block(0x1000, [0x1000, 0x1004], [False, True])
        provider.begin_block(first)
        provider.end_block(first)
        second = make_block(0x2000, [0x2000], [True])
        vector = provider.begin_block(second)[0]
        # One bit for the whole first block: last outcome True.
        assert vector.history == 0b1

    def test_delayed_variant(self):
        provider = BlockLghistProvider(include_path=False, delay_blocks=3)
        blocks = [make_block(0x1000 * (i + 1), [0x1000 * (i + 1)], [True])
                  for i in range(5)]
        histories = []
        for block in blocks:
            vectors = provider.begin_block(block)
            histories.append(vectors[0].history)
            provider.end_block(block)
        # Predicting block D excludes the three preceding blocks A, B, C
        # entirely: block 3 still sees nothing, block 4 sees exactly the
        # bit block 0 inserted.
        assert histories == [0, 0, 0, 0, 1]

    def test_bank_advances_every_block_even_without_branches(self):
        provider = BlockLghistProvider()
        banks = []
        for i in range(6):
            # Alternate branchy and branchless blocks at varied addresses.
            if i % 2:
                block = make_block(i * 0x40, [], [])
                provider.end_block(block)  # driver skips begin_block
            else:
                block = make_block(i * 0x40, [i * 0x40], [True])
                banks.append(provider.begin_block(block)[0].bank)
                provider.end_block(block)
        assert all(0 <= bank < 4 for bank in banks)

    def test_successive_blocks_get_distinct_banks(self):
        provider = BlockLghistProvider()
        previous = None
        for i in range(50):
            block = make_block((i * 0x24) & ~3, [(i * 0x24) & ~3], [True])
            bank = provider.begin_block(block)[0].bank
            if previous is not None:
                assert bank != previous
            previous = bank
            provider.end_block(block)

    def test_begin_block_idempotent_bank(self):
        provider = BlockLghistProvider()
        block = make_block(0x1000, [0x1000], [True])
        first = provider.begin_block(block)[0].bank
        second = provider.begin_block(block)[0].bank
        assert first == second

    def test_ev8_info_provider_configuration(self):
        provider = ev8_info_provider()
        assert provider._lghist.delay_blocks == 3
        assert provider._lghist.include_path is True
        assert provider._path.depth == 3


def _scalar_vector_walk(provider, trace):
    """Reference: the per-block begin/end walk the scalar engine performs."""
    vectors = []
    for block in fetch_blocks_for(trace):
        vectors.extend(provider.begin_block(block))
        provider.end_block(block)
    return vectors


class TestLghistMaterialize:
    """``BlockLghistProvider.materialize`` must reproduce the scalar
    begin_block/end_block walk bit for bit — histories, path columns and
    front-end bank numbers — for every lghist variant Fig 7 sweeps."""

    # (include_path, delay_blocks, capacity, path_depth): the EV8 vector,
    # the un-aged and outcome-only variants, short capacities that force
    # window wraparound, and non-default path depths.
    VARIANTS = [
        (True, 3, 64, 3),    # the EV8 information vector
        (True, 0, 64, 3),
        (False, 0, 64, 3),
        (False, 3, 64, 3),
        (True, 1, 16, 2),
        (False, 2, 8, 1),
        (True, 5, 32, 4),
    ]

    @staticmethod
    def _assert_batch_matches_walk(provider_factory, trace):
        batch = provider_factory().materialize(trace)
        assert batch is not None
        vectors = _scalar_vector_walk(provider_factory(), trace)
        assert len(batch) == len(vectors)
        for i, vector in enumerate(vectors):
            assert int(batch.history[i]) == vector.history, i
            assert int(batch.address[i]) == vector.address, i
            assert int(batch.branch_pc[i]) == vector.branch_pc, i
            assert tuple(int(batch.path[d, i])
                         for d in range(batch.path_depth)) == vector.path, i
            assert int(batch.bank[i]) == vector.bank, i

    @pytest.mark.parametrize("include_path,delay,capacity,depth", VARIANTS)
    def test_bit_identical_to_scalar_walk_on_gcc(self, include_path, delay,
                                                 capacity, depth, gcc_trace):
        self._assert_batch_matches_walk(
            lambda: BlockLghistProvider(include_path=include_path,
                                        delay_blocks=delay,
                                        capacity=capacity,
                                        path_depth=depth),
            gcc_trace)

    @pytest.mark.parametrize("pattern", [None, (True, False),
                                         (True, True, False)])
    def test_bit_identical_on_loop_patterns(self, pattern):
        # Single-block loops exercise the block-boundary bookkeeping: every
        # block inserts a bit and the delay pipeline stays saturated.
        trace = simple_loop_trace(300, taken_pattern=pattern)
        self._assert_batch_matches_walk(ev8_info_provider, trace)

    def test_over_capacity_histories_do_not_materialize(self, gcc_trace):
        assert BlockLghistProvider(capacity=80).materialize(gcc_trace) is None

    def test_materialized_batch_is_cached_per_trace(self, gcc_trace):
        # Two provider instances with the same configuration share the
        # per-trace batch; a different configuration gets its own.
        first = ev8_info_provider().materialize(gcc_trace)
        second = ev8_info_provider().materialize(gcc_trace)
        assert first is second
        other = BlockLghistProvider(include_path=False).materialize(gcc_trace)
        assert other is not first

    def test_materialized_columns_are_read_only(self, gcc_trace):
        batch = ev8_info_provider().materialize(gcc_trace)
        with pytest.raises(ValueError):
            batch.history[0] = 0
        with pytest.raises(ValueError):
            batch.bank[0] = 0
