"""Tests for SMT workload interleaving and simulation (Section 3)."""

import pytest

from repro.history.providers import BranchGhistProvider
from repro.predictors import GsharePredictor, LocalPredictor
from repro.traces.fetch import fetch_blocks_for
from repro.workloads.smt import SMTResult, interleave_blocks, simulate_smt
from repro.workloads.spec95 import spec95_trace


@pytest.fixture(scope="module")
def thread_traces():
    return [spec95_trace("perl", 6000), spec95_trace("li", 6000)]


class TestInterleave:
    def test_validation(self, thread_traces):
        with pytest.raises(ValueError):
            interleave_blocks([])
        with pytest.raises(ValueError):
            interleave_blocks(thread_traces, chunk_blocks=0)

    def test_all_blocks_present_once(self, thread_traces):
        merged = interleave_blocks(thread_traces, chunk_blocks=4)
        expected = sum(len(fetch_blocks_for(trace))
                       for trace in thread_traces)
        assert len(merged) == expected

    def test_round_robin_chunks(self, thread_traces):
        merged = interleave_blocks(thread_traces, chunk_blocks=3)
        thread_ids = [thread_id for thread_id, _ in merged[:12]]
        assert thread_ids == [0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1]

    def test_per_thread_order_preserved(self, thread_traces):
        merged = interleave_blocks(thread_traces, chunk_blocks=5)
        for thread_id, trace in enumerate(thread_traces):
            original = fetch_blocks_for(trace)
            seen = [block for tid, block in merged if tid == thread_id]
            assert seen == original

    def test_uneven_lengths(self):
        short = spec95_trace("compress", 1200)
        long = spec95_trace("li", 6000)
        merged = interleave_blocks([short, long], chunk_blocks=4)
        expected = len(fetch_blocks_for(short)) + len(fetch_blocks_for(long))
        assert len(merged) == expected
        # The long thread's tail still arrives after the short one ends.
        tail_threads = {tid for tid, _ in merged[-100:]}
        assert tail_threads == {1}


class TestSimulateSMT:
    def test_result_bookkeeping(self, thread_traces):
        predictor = GsharePredictor(1 << 14, 8)
        result = simulate_smt(predictor, thread_traces,
                              BranchGhistProvider)
        assert isinstance(result, SMTResult)
        assert result.total_branches == sum(
            trace.conditional_count for trace in thread_traces)
        assert result.total_mispredictions == sum(
            r.mispredictions for r in result.per_thread)
        assert 0 < result.misprediction_rate < 0.5

    def test_per_thread_history_beats_shared(self, thread_traces):
        """Section 3: one global history register per thread; a shared
        register sees an interleaved outcome stream and loses correlation."""
        private = simulate_smt(GsharePredictor(1 << 15, 10), thread_traces,
                               BranchGhistProvider,
                               per_thread_history=True)
        shared = simulate_smt(GsharePredictor(1 << 15, 10), thread_traces,
                              BranchGhistProvider,
                              per_thread_history=False)
        assert private.total_mispredictions < shared.total_mispredictions

    def test_local_predictor_suffers_cross_thread_pollution(self):
        """The paper's warning: thread interference on a local-history
        scheme pollutes both the history and prediction tables.  Two threads
        running the same binary at the same addresses collide everywhere."""
        from repro.workloads.spec95 import profile_for
        from repro.workloads.generator import generate_trace
        base = profile_for("perl")
        # Same program layout, different dynamic behaviour per thread.
        threads = [generate_trace(base, 6000),
                   generate_trace(base.with_seed(77), 6000)]
        solo = [simulate_smt(LocalPredictor(512, 8, 4096), [trace],
                             BranchGhistProvider).total_mispredictions
                for trace in threads]
        smt = simulate_smt(LocalPredictor(512, 8, 4096), threads,
                           BranchGhistProvider)
        together = sum(r.mispredictions for r in smt.per_thread)
        # Sharing the local history/prediction tables across threads that
        # collide at every PC must cost mispredictions overall.
        assert together > sum(solo)
