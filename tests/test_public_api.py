"""Public-API hygiene: exports resolve, modules are documented, versions
are consistent."""

import importlib
import pathlib
import pkgutil

import pytest

import repro

PACKAGES = ["repro", "repro.common", "repro.traces", "repro.workloads",
            "repro.history", "repro.indexing", "repro.predictors",
            "repro.ev8", "repro.sim", "repro.experiments"]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    for name in getattr(package, "__all__", []):
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_every_module_has_a_docstring():
    root = pathlib.Path(repro.__file__).parent
    for info in pkgutil.walk_packages([str(root)], prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it runs the CLI
        module = importlib.import_module(info.name)
        assert module.__doc__ and module.__doc__.strip(), info.name


def test_version_matches_pyproject():
    pyproject = pathlib.Path(repro.__file__).parents[2] / "pyproject.toml"
    assert f'version = "{repro.__version__}"' in pyproject.read_text()


def test_predictor_classes_expose_interface():
    from repro.predictors.base import Predictor
    from repro import (
        AgreePredictor, BiModePredictor, BimodalPredictor, EGskewPredictor,
        EV8BranchPredictor, GAsPredictor, GsharePredictor, LocalPredictor,
        PerceptronPredictor, TournamentPredictor, TwoBcGskewPredictor,
        YagsPredictor)
    classes = [AgreePredictor, BiModePredictor, BimodalPredictor,
               EGskewPredictor, EV8BranchPredictor, GAsPredictor,
               GsharePredictor, LocalPredictor, PerceptronPredictor,
               TournamentPredictor, TwoBcGskewPredictor, YagsPredictor]
    for cls in classes:
        assert issubclass(cls, Predictor), cls
        for method in ("predict", "update", "access"):
            assert callable(getattr(cls, method)), (cls, method)
