"""Tests for the EV8 hardware-constrained index functions (Section 7)."""

import pytest

from conftest import make_vector
from repro.ev8.config import EV8_CONFIG
from repro.ev8.indexfuncs import EV8IndexScheme, decompose_index

CONFIGS = EV8_CONFIG.tables()


def indices_for(vector, scheme=None):
    scheme = scheme or EV8IndexScheme()
    return scheme.compute(vector, CONFIGS)


class TestDecompose:
    def test_field_extraction(self):
        index = (0b10110 << 11) | (0b011010 << 5) | (0b101 << 2) | 0b10
        bank, offset, line, column = decompose_index(index)
        assert bank == 0b10
        assert offset == 0b101
        assert line == 0b011010
        assert column == 0b10110

    def test_bim_column_width(self):
        index = (0b111 << 11) | 0
        assert decompose_index(index, column_bits=3)[3] == 0b111


class TestIndexRanges:
    def test_indices_fit_table_sizes(self):
        for history in (0, 0x155555, 0x1FFFFF):
            for pc in (0x1000, 0x12345678 & ~3, 0x7FFC):
                vector = make_vector(pc=pc, history=history,
                                     path=(0x2040, 0x1100, 0x880), bank=2)
                bim, g0, g1, meta = indices_for(vector)
                assert 0 <= bim < CONFIGS[0].entries
                assert 0 <= g0 < CONFIGS[1].entries
                assert 0 <= g1 < CONFIGS[2].entries
                assert 0 <= meta < CONFIGS[3].entries

    def test_validation(self):
        with pytest.raises(ValueError):
            EV8IndexScheme(wordline_mode="diagonal")


class TestSharedBits:
    def test_bank_and_wordline_shared_across_tables(self):
        """Section 7.3: all four indices share the 2 bank bits and the 6
        wordline bits."""
        vector = make_vector(pc=0x1ABC0, history=0x5A5A5,
                             path=(0x2040, 0x1100, 0x880), bank=3)
        decomposed = [decompose_index(i) for i in indices_for(vector)]
        banks = {d[0] for d in decomposed}
        lines = {d[2] for d in decomposed}
        assert len(banks) == 1
        assert len(lines) == 1

    def test_wordline_is_h3_h0_a8_a7(self):
        vector = make_vector(pc=0x1000, address=0x1000, history=0b1011,
                             bank=0)
        _, _, line, _ = decompose_index(indices_for(vector)[1])
        # (i10..i5) = (h3,h2,h1,h0,a8,a7); a8,a7 of 0x1000 are 0,0.
        assert line == 0b1011_00

    def test_wordline_address_mode(self):
        scheme = EV8IndexScheme(wordline_mode="address")
        vector = make_vector(pc=0x1000, address=0b1_1010_1000_0000,
                             history=0xF, bank=0)
        _, _, line, _ = decompose_index(indices_for(vector, scheme)[1])
        assert line == (vector.address >> 7) & 0x3F

    def test_bank_comes_from_vector(self):
        for bank in range(4):
            vector = make_vector(bank=bank)
            assert all(decompose_index(i)[0] == bank
                       for i in indices_for(vector))

    def test_address_bank_mode(self):
        scheme = EV8IndexScheme(use_block_bank=False)
        vector = make_vector(pc=0x1000, address=0b110_0000, bank=3)
        assert decompose_index(indices_for(vector, scheme)[1])[0] == 0b11


class TestBlockCohesion:
    def test_same_block_same_word_different_slots(self):
        """Section 6.1: the 8 predictions of one fetch block lie in a single
        8-bit word — identical bank/line/column, offsets permuted by the
        shared unshuffle parameter."""
        base = dict(history=0x3CA5, address=0x2340,
                    path=(0x8000, 0x4000, 0x2000), bank=1)
        decomposed = []
        for slot in range(8):
            vector = make_vector(pc=0x2340 + slot * 4, **base)
            decomposed.append(
                [decompose_index(i) for i in indices_for(vector)])
        for table in range(4):
            banks = {d[table][0] for d in decomposed}
            lines = {d[table][2] for d in decomposed}
            columns = {d[table][3] for d in decomposed}
            offsets = [d[table][1] for d in decomposed]
            assert len(banks) == len(lines) == len(columns) == 1
            # The XOR permutation is a bijection on the 8 slots.
            assert sorted(offsets) == list(range(8))

    def test_unshuffle_is_xor_permutation(self):
        """offset(slot) = slot XOR P for a block-constant P."""
        base = dict(history=0x1111, address=0x5680,
                    path=(0x100, 0x200, 0x300), bank=2)
        offsets = []
        for slot in range(8):
            vector = make_vector(pc=0x5680 + slot * 4, **base)
            offsets.append(decompose_index(indices_for(vector)[2])[1])
        parameter = offsets[0]
        assert all(offsets[slot] == slot ^ parameter for slot in range(8))


class TestHistoryUsage:
    def test_g1_uses_bit_20(self):
        """G1's 21-bit history: flipping h20 must move its index."""
        a = make_vector(history=0)
        b = make_vector(history=1 << 20)
        assert indices_for(a)[2] != indices_for(b)[2]

    def test_g0_ignores_bits_beyond_13(self):
        a = make_vector(history=0)
        b = make_vector(history=1 << 13)
        assert indices_for(a)[1] == indices_for(b)[1]

    def test_meta_uses_bit_14_but_not_15(self):
        a = make_vector(history=0)
        assert indices_for(a)[3] != indices_for(make_vector(history=1 << 14))[3]
        assert indices_for(a)[3] == indices_for(make_vector(history=1 << 15))[3]

    def test_bim_uses_exactly_four_history_bits(self):
        a = make_vector(history=0)
        for bit in range(4):
            assert indices_for(a)[0] != \
                indices_for(make_vector(history=1 << bit))[0]
        assert indices_for(a)[0] == indices_for(make_vector(history=1 << 4))[0]

    def test_effective_history_lengths_match_table1(self):
        """Exhaustively confirm each table's index depends on exactly the
        Table 1 history bits (4/13/21/15)."""
        reference = indices_for(make_vector(history=0))
        sensitive = [set() for _ in range(4)]
        for bit in range(24):
            flipped = indices_for(make_vector(history=1 << bit))
            for table in range(4):
                if flipped[table] != reference[table]:
                    sensitive[table].add(bit)
        assert max(sensitive[0]) == 3    # BIM: h0..h3
        assert max(sensitive[1]) == 12   # G0: h0..h12
        assert max(sensitive[2]) == 20   # G1: h0..h20
        assert max(sensitive[3]) == 14   # Meta: h0..h14
        # The wordline bits h0..h3 are shared by everyone.
        for table in range(4):
            assert {0, 1, 2, 3} <= sensitive[table]


class TestPathUsage:
    def test_z_bits_affect_indices(self):
        a = make_vector(path=(0, 0, 0))
        b = make_vector(path=(1 << 6, 0, 0))
        indices_a, indices_b = indices_for(a), indices_for(b)
        assert indices_a[0] != indices_b[0]  # BIM uses z6
        assert indices_a[2] != indices_b[2]  # G1 uses z6

    def test_distribution_better_with_history_wordline(self, gcc_trace):
        """Fig 9's mechanism: history-based wordline bits spread accesses
        over the table more uniformly than address-only bits."""
        from repro.history.providers import BlockLghistProvider
        from repro.indexing.analysis import assess_indices
        from repro.traces.fetch import fetch_blocks_for

        def wordlines(mode):
            scheme = EV8IndexScheme(wordline_mode=mode)
            provider = BlockLghistProvider(include_path=True, delay_blocks=3)
            lines = []
            for block in fetch_blocks_for(gcc_trace)[:20000]:
                for vector in provider.begin_block(block):
                    lines.append(decompose_index(
                        scheme.compute(vector, CONFIGS)[1])[2])
                provider.end_block(block)
            return lines

        history_quality = assess_indices(wordlines("history"), 64)
        address_quality = assess_indices(wordlines("address"), 64)
        assert history_quality.entropy > address_quality.entropy
