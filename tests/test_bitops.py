"""Unit and property tests for repro.common.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.bitops import (
    bit,
    bits,
    concat_bits,
    mask,
    parity,
    parity_of_bits,
    popcount,
    reverse_bits,
    rotate_left,
    rotate_right,
    set_bit,
    xor_fold,
)

values = st.integers(min_value=0, max_value=2**80 - 1)
widths = st.integers(min_value=1, max_value=64)


class TestMask:
    def test_small_masks(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(4) == 0b1111
        assert mask(16) == 0xFFFF

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)

    @given(widths)
    def test_mask_has_width_bits(self, width):
        assert mask(width).bit_length() == width
        assert popcount(mask(width)) == width


class TestBitAccess:
    def test_bit_extraction(self):
        assert bit(0b1010, 0) == 0
        assert bit(0b1010, 1) == 1
        assert bit(0b1010, 3) == 1
        assert bit(0b1010, 10) == 0

    def test_negative_position_rejected(self):
        with pytest.raises(ValueError):
            bit(1, -1)

    def test_bits_field(self):
        assert bits(0xABCD, 4, 8) == 0xBC
        assert bits(0xABCD, 0, 4) == 0xD
        assert bits(0xABCD, 12, 4) == 0xA

    def test_bits_zero_width(self):
        assert bits(0xFFFF, 3, 0) == 0

    def test_set_bit(self):
        assert set_bit(0, 3, 1) == 8
        assert set_bit(0b1111, 2, 0) == 0b1011
        assert set_bit(0b1111, 2, 1) == 0b1111

    def test_set_bit_rejects_non_binary(self):
        with pytest.raises(ValueError):
            set_bit(0, 0, 2)

    @given(values, st.integers(min_value=0, max_value=70))
    def test_set_then_get(self, value, position):
        for bit_value in (0, 1):
            assert bit(set_bit(value, position, bit_value), position) == bit_value


class TestConcat:
    def test_concat_order(self):
        # First field is most significant.
        assert concat_bits((0b1, 1), (0b00, 2)) == 0b100
        assert concat_bits((3, 2), (0, 3), (5, 3)) == 0b11000101

    def test_concat_masks_overflow(self):
        assert concat_bits((0b111, 2)) == 0b11

    @given(st.lists(st.tuples(st.integers(0, 255),
                              st.integers(1, 8)), min_size=1, max_size=6))
    def test_total_width(self, fields):
        total = sum(width for _, width in fields)
        assert concat_bits(*fields) < (1 << total)


class TestXorFold:
    def test_identity_when_short(self):
        assert xor_fold(0b101, 8) == 0b101

    def test_fold_two_segments(self):
        assert xor_fold(0xF0 << 8 | 0x0F, 8) == 0xFF

    def test_zero(self):
        assert xor_fold(0, 16) == 0

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            xor_fold(5, 0)

    @given(values, widths)
    def test_result_fits_width(self, value, width):
        assert 0 <= xor_fold(value, width) < (1 << width)

    @given(values, values, widths)
    def test_fold_is_xor_homomorphic(self, a, b, width):
        # Folding distributes over XOR — the property that makes folded
        # indices stable under partial history updates.
        assert xor_fold(a ^ b, width) == xor_fold(a, width) ^ xor_fold(b, width)


class TestParity:
    def test_examples(self):
        assert parity(0) == 0
        assert parity(1) == 1
        assert parity(0b1011) == 1
        assert parity(0b1001) == 0

    @given(values)
    def test_parity_is_popcount_lsb(self, value):
        assert parity(value) == popcount(value) % 2

    def test_parity_of_bits(self):
        assert parity_of_bits(0b1110, (1, 2, 3)) == 1
        assert parity_of_bits(0b1110, (1, 2)) == 0
        assert parity_of_bits(0b1110, ()) == 0

    @given(values, st.lists(st.integers(0, 79), max_size=10))
    def test_parity_of_bits_matches_manual(self, value, positions):
        expected = 0
        for position in positions:
            expected ^= (value >> position) & 1
        assert parity_of_bits(value, positions) == expected


class TestRotate:
    def test_rotate_left(self):
        assert rotate_left(0b0001, 1, 4) == 0b0010
        assert rotate_left(0b1000, 1, 4) == 0b0001
        assert rotate_left(0b1001, 2, 4) == 0b0110

    def test_rotate_right_inverse(self):
        assert rotate_right(rotate_left(0b1011, 3, 4), 3, 4) == 0b1011

    @given(st.integers(0, 2**16 - 1), st.integers(0, 40), widths)
    def test_rotation_round_trip(self, value, amount, width):
        value &= mask(width)
        assert rotate_right(rotate_left(value, amount, width),
                            amount, width) == value

    @given(st.integers(0, 2**16 - 1), widths)
    def test_full_rotation_is_identity(self, value, width):
        value &= mask(width)
        assert rotate_left(value, width, width) == value


class TestReverse:
    def test_examples(self):
        assert reverse_bits(0b0011, 4) == 0b1100
        assert reverse_bits(0b1, 1) == 0b1

    @given(st.integers(0, 2**20 - 1), st.integers(1, 20))
    def test_involution(self, value, width):
        value &= mask(width)
        assert reverse_bits(reverse_bits(value, width), width) == value


class TestPopcount:
    def test_examples(self):
        assert popcount(0) == 0
        assert popcount(0xFF) == 8

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            popcount(-1)
