"""Tests for the e-gskew predictor."""

import pytest

from conftest import make_vector
from repro.predictors import EGskewPredictor


class TestStructure:
    def test_validation(self):
        with pytest.raises(ValueError):
            EGskewPredictor(100, 8)
        with pytest.raises(ValueError):
            EGskewPredictor(256, 8, update_policy="never")

    def test_storage_is_three_banks(self):
        assert EGskewPredictor(1 << 15, 15).storage_bits == 3 * (2 << 15)

    def test_per_bank_history_lengths(self):
        predictor = EGskewPredictor(256, 10, g0_history_length=5)
        assert predictor.g0_history_length == 5
        assert predictor.history_length == 10

    def test_default_name(self):
        assert EGskewPredictor(1 << 15, 15).name == "egskew-3x32K-h15"


class TestVoting:
    def test_majority_vote(self):
        predictor = EGskewPredictor(256, 6)
        vector = make_vector()
        # Train twice taken: all three banks agree taken.
        predictor.update(vector, True)
        predictor.update(vector, True)
        assert predictor.predict(vector) is True

    def test_single_bank_cannot_flip_majority(self):
        predictor = EGskewPredictor(256, 6)
        vector = make_vector()
        for _ in range(3):
            predictor.update(vector, True)
        bim_i, g0_i, g1_i = predictor._indices(vector)
        # Corrupt one bank (simulating an aliasing steal).
        predictor.g0.set_counter(g0_i, 0)
        assert predictor.predict(vector) is True  # majority survives


class TestPartialUpdate:
    def test_correct_prediction_strengthens_only_correct_banks(self):
        predictor = EGskewPredictor(256, 6)
        vector = make_vector()
        bim_i, g0_i, g1_i = predictor._indices(vector)
        predictor.bim.set_counter(bim_i, 2)
        predictor.g0.set_counter(g0_i, 2)
        predictor.g1.set_counter(g1_i, 1)  # dissenting bank
        assert predictor.access(vector, True) is True
        assert predictor.bim.counter_value(bim_i) == 3
        assert predictor.g0.counter_value(g0_i) == 3
        assert predictor.g1.counter_value(g1_i) == 1  # untouched

    def test_misprediction_updates_all_banks(self):
        predictor = EGskewPredictor(256, 6)
        vector = make_vector()
        bim_i, g0_i, g1_i = predictor._indices(vector)
        predictor.bim.set_counter(bim_i, 3)
        predictor.g0.set_counter(g0_i, 3)
        predictor.g1.set_counter(g1_i, 1)
        assert predictor.access(vector, False) is True  # mispredicts
        assert predictor.bim.counter_value(bim_i) == 2
        assert predictor.g0.counter_value(g0_i) == 2
        assert predictor.g1.counter_value(g1_i) == 0

    def test_total_policy_touches_everything(self):
        predictor = EGskewPredictor(256, 6, update_policy="total")
        vector = make_vector()
        bim_i, g0_i, g1_i = predictor._indices(vector)
        predictor.bim.set_counter(bim_i, 2)
        predictor.g0.set_counter(g0_i, 2)
        predictor.g1.set_counter(g1_i, 1)
        predictor.access(vector, True)
        assert predictor.g1.counter_value(g1_i) == 2  # trained despite partial


class TestDealiasing:
    def test_survives_single_bank_collision(self):
        """Two (pc, history) pairs colliding in one bank must still both
        predict correctly — the core skewing property."""
        predictor = EGskewPredictor(1 << 12, 10)
        a = make_vector(pc=0x4000, history=0b1010101010)
        b = make_vector(pc=0x8230, history=0b0101010101)
        for _ in range(4):
            predictor.access(a, True)
            predictor.access(b, False)
        assert predictor.predict(a) is True
        assert predictor.predict(b) is False
