"""Tests for the trace model."""

import numpy as np
import pytest

from repro.traces.model import (
    INSTRUCTION_BYTES,
    BlockExecution,
    TerminatorKind,
    Trace,
    TraceBuilder,
)


def build_demo() -> Trace:
    builder = TraceBuilder("demo")
    builder.add(0x1000, 3, TerminatorKind.CONDITIONAL, False, 0x100C)
    builder.add(0x100C, 2, TerminatorKind.JUMP, True, 0x2000)
    builder.add(0x2000, 5, TerminatorKind.CONDITIONAL, True, 0x1000)
    builder.add(0x1000, 3, TerminatorKind.CONDITIONAL, True, 0x3000)
    return builder.build()


class TestBuilder:
    def test_lengths_and_counts(self):
        trace = build_demo()
        assert len(trace) == 4
        assert trace.instruction_count == 13
        assert trace.conditional_count == 3

    def test_rejects_zero_instructions(self):
        builder = TraceBuilder("bad")
        with pytest.raises(ValueError):
            builder.add(0x1000, 0, TerminatorKind.JUMP, True, 0)

    def test_rejects_misaligned_start(self):
        builder = TraceBuilder("bad")
        with pytest.raises(ValueError):
            builder.add(0x1001, 1, TerminatorKind.JUMP, True, 0)

    def test_builder_len(self):
        builder = TraceBuilder("demo")
        assert len(builder) == 0
        builder.add(0, 1, TerminatorKind.JUMP, True, 0)
        assert len(builder) == 1


class TestTraceViews:
    def test_branches_view(self):
        trace = build_demo()
        pcs, outcomes = trace.branches()
        assert pcs == [0x1008, 0x2010, 0x1008]
        assert outcomes == [False, True, True]

    def test_branches_view_is_cached(self):
        trace = build_demo()
        assert trace.branches() is trace.branches()

    def test_static_pcs(self):
        trace = build_demo()
        assert trace.static_conditional_pcs() == {0x1008, 0x2010}

    def test_taken_rate(self):
        trace = build_demo()
        assert trace.taken_rate() == pytest.approx(2 / 3)

    def test_taken_rate_empty(self):
        builder = TraceBuilder("jumps")
        builder.add(0, 1, TerminatorKind.JUMP, True, 0)
        assert builder.build().taken_rate() == 0.0

    def test_blocks_iteration(self):
        trace = build_demo()
        blocks = list(trace.blocks())
        assert len(blocks) == 4
        first = blocks[0]
        assert isinstance(first, BlockExecution)
        assert first.terminator_pc == 0x1000 + 2 * INSTRUCTION_BYTES
        assert first.end == 0x1000 + 3 * INSTRUCTION_BYTES
        assert first.kind is TerminatorKind.CONDITIONAL

    def test_slice(self):
        trace = build_demo()
        head = trace.slice(2, name="head")
        assert len(head) == 2
        assert head.name == "head"
        assert head.conditional_count == 1
        # Slicing beyond the end clamps.
        assert len(trace.slice(100)) == 4


class TestValidation:
    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            Trace("bad", np.zeros(2, dtype=np.uint64),
                  np.ones(3, dtype=np.uint16), np.zeros(2, dtype=np.uint8),
                  np.zeros(2, dtype=np.bool_), np.zeros(2, dtype=np.uint64))
