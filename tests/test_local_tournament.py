"""Tests for the local two-level predictor and the 21264-style tournament."""

import pytest

from conftest import make_vector
from repro.predictors import LocalPredictor, TournamentPredictor


class TestLocal:
    def test_validation(self):
        with pytest.raises(ValueError):
            LocalPredictor(1024, 10, 1000)

    def test_learns_local_pattern(self):
        """An alternating branch is perfectly predictable from local
        history, independent of global history noise."""
        predictor = LocalPredictor(64, 6, 1024)
        correct = 0
        outcome = True
        import random
        noise = random.Random(3)
        for trial in range(200):
            vector = make_vector(pc=0x1000, history=noise.getrandbits(12))
            if predictor.access(vector, outcome) == outcome and trial > 50:
                correct += 1
            outcome = not outcome
        assert correct > 140  # near-perfect after warmup

    def test_separate_branches_separate_histories(self):
        predictor = LocalPredictor(64, 4, 1024, hash_pc=True)
        a = make_vector(pc=0x1000)
        b = make_vector(pc=0x1004)
        for _ in range(20):
            predictor.access(a, True)
            predictor.access(b, False)
        assert predictor.predict(a) is True
        assert predictor.predict(b) is False

    def test_storage(self):
        predictor = LocalPredictor(1024, 10, 1024)
        assert predictor.storage_bits == 1024 * 10 + 2 * 1024


class TestTournament:
    def test_validation(self):
        with pytest.raises(ValueError):
            TournamentPredictor(global_entries=1000)
        with pytest.raises(ValueError):
            TournamentPredictor(chooser_entries=1000)

    def test_default_21264_storage(self):
        predictor = TournamentPredictor()
        # 1K x 10 local histories + 1K counters + 4K global + 4K chooser.
        expected = 1024 * 10 + 2 * 1024 + 2 * 4096 + 2 * 4096
        assert predictor.storage_bits == expected

    def test_chooser_picks_working_component(self):
        """A branch predictable only from global history must end up routed
        to the global side."""
        predictor = TournamentPredictor(local_history_entries=64,
                                        local_counter_entries=64,
                                        global_entries=256,
                                        chooser_entries=256,
                                        global_history_length=4)
        import random
        rng = random.Random(5)
        correct_tail = 0
        for trial in range(600):
            history = rng.getrandbits(4)
            outcome = bool(history & 1)  # copy of the last global outcome
            vector = make_vector(pc=0x2000, history=history)
            prediction = predictor.access(vector, outcome)
            if trial >= 300 and prediction == outcome:
                correct_tail += 1
        assert correct_tail > 240  # > 80% in the second half

    def test_local_side_survives_global_noise(self):
        predictor = TournamentPredictor(local_history_entries=64,
                                        local_counter_entries=1024,
                                        global_entries=256,
                                        chooser_entries=256,
                                        global_history_length=8)
        import random
        rng = random.Random(6)
        pattern = [True, True, False]
        correct_tail = 0
        for trial in range(600):
            outcome = pattern[trial % 3]
            vector = make_vector(pc=0x3000, history=rng.getrandbits(8))
            prediction = predictor.access(vector, outcome)
            if trial >= 300 and prediction == outcome:
                correct_tail += 1
        assert correct_tail > 240
