"""Smoke test for the consolidated report generator."""

import json

import pytest

from repro.experiments.runall import run_all


@pytest.mark.slow
def test_run_all_produces_complete_report(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_RESULT_CACHE_DIR", str(tmp_path / "cache"))
    report = run_all(num_branches=4000)
    # One section per paper table/figure, with its finding and its table.
    for heading in ("Table 2", "Table 3", "Fig 5", "Fig 6", "Fig 7",
                    "Fig 8", "Fig 9", "Fig 10"):
        assert f"## {heading}" in report, heading
    assert report.count("```") % 2 == 0
    assert "misp/KI" in report
    # The per-experiment JSON files were recorded as a side effect.
    recorded = {path.name for path in tmp_path.glob("*.json")}
    assert {"table2.json", "table3.json", "fig5.json", "fig10.json"} <= recorded
    # Every simulation populated the persistent result cache...
    assert list((tmp_path / "cache").glob("*.json"))
    first_run = json.loads((tmp_path / "fig5.json").read_text())
    assert set(sum((list(row.values()) for row in
                    first_run["cache"].values()), [])) == {"miss"}
    # ...so a repeated invocation replays every cell from the cache.
    report_again = run_all(num_branches=4000)
    assert report_again.count("misp/KI") == report.count("misp/KI")
    second_run = json.loads((tmp_path / "fig5.json").read_text())
    assert set(sum((list(row.values()) for row in
                    second_run["cache"].values()), [])) == {"hit"}
    assert second_run["misp_per_ki"] == first_run["misp_per_ki"]
