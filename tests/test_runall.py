"""Smoke test for the consolidated report generator."""

from repro.experiments.runall import run_all


def test_run_all_produces_complete_report(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    report = run_all(num_branches=4000)
    # One section per paper table/figure, with its finding and its table.
    for heading in ("Table 2", "Table 3", "Fig 5", "Fig 6", "Fig 7",
                    "Fig 8", "Fig 9", "Fig 10"):
        assert f"## {heading}" in report, heading
    assert report.count("```") % 2 == 0
    assert "misp/KI" in report
    # The per-experiment JSON files were recorded as a side effect.
    recorded = {path.name for path in tmp_path.glob("*.json")}
    assert {"table2.json", "table3.json", "fig5.json", "fig10.json"} <= recorded
