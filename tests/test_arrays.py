"""Tests for the physical wordline layout (Section 7.1)."""

import pytest

from repro.ev8.arrays import WordlineLayout
from repro.ev8.config import EV8Config
from repro.predictors.twobcgskew import TableConfig


def small_config() -> EV8Config:
    """A scaled-down EV8 (same 4x64-line grid, 1/16th the columns) so the
    bijection can be checked exhaustively."""
    return EV8Config(
        bim=TableConfig(4 * 1024, 4, 4 * 1024),
        g0=TableConfig(4 * 1024, 13, 2 * 1024),
        g1=TableConfig(4 * 1024, 21),
        meta=TableConfig(4 * 1024, 15, 2 * 1024),
    )


class TestGeometry:
    def test_paper_wordline_composition(self):
        """Section 7.1: "Each word line contains 32 8-bit prediction words
        from G0, G1 and Meta, and 8 8-bit prediction words from BIM"."""
        layout = WordlineLayout()
        assert layout.words_per_line("BIM") == 8
        assert layout.words_per_line("G0") == 32
        assert layout.words_per_line("G1") == 32
        assert layout.words_per_line("Meta") == 32
        assert layout.wordlines == 64
        assert layout.line_bits == (8 + 32 + 32 + 32) * 8

    def test_total_capacity_matches_budget(self):
        layout = WordlineLayout()
        assert layout.total_prediction_bits() == 208 * 1024

    def test_component_ranges_disjoint_and_covering(self):
        layout = WordlineLayout()
        covered = []
        for table in ("BIM", "G0", "G1", "Meta"):
            start, end = layout.component_bit_range(table)
            covered.append((start, end))
        covered.sort()
        assert covered[0][0] == 0
        for (a_start, a_end), (b_start, b_end) in zip(covered, covered[1:]):
            assert a_end == b_start
        assert covered[-1][1] == layout.line_bits


class TestMapping:
    def test_bijection_exhaustive_on_small_config(self):
        layout = WordlineLayout(small_config())
        seen = set()
        count = 0
        for table, index, coordinate in layout.enumerate_all("prediction"):
            key = (coordinate.bank, coordinate.wordline, coordinate.bit)
            assert key not in seen, (table, index, coordinate)
            seen.add(key)
            count += 1
            assert 0 <= coordinate.bank < 4
            assert 0 <= coordinate.wordline < 64
            assert 0 <= coordinate.bit < layout.line_bits
        assert count == 4 * 4 * 1024

    def test_hysteresis_arrays_also_inject(self):
        layout = WordlineLayout(small_config())
        seen = set()
        for table, index, coordinate in layout.enumerate_all("hysteresis"):
            assert coordinate.array == "hysteresis"
            key = (coordinate.bank, coordinate.wordline, coordinate.bit)
            assert key not in seen
            seen.add(key)

    def test_index_decomposition_matches_read_pipeline(self):
        from repro.ev8.indexfuncs import decompose_index
        layout = WordlineLayout()
        index = (0b10011 << 11) | (0b010110 << 5) | (0b101 << 2) | 0b01
        bank, offset, line, column = decompose_index(index)
        coordinate = layout.locate("G1", index)
        assert coordinate.bank == bank
        assert coordinate.wordline == line
        start, _ = layout.component_bit_range("G1")
        assert coordinate.bit == start + column * 8 + offset

    def test_validation(self):
        layout = WordlineLayout()
        with pytest.raises(ValueError):
            layout.locate("L1", 0)
        with pytest.raises(ValueError):
            layout.locate("G0", 1 << 20)
        with pytest.raises(ValueError):
            layout.locate("G0", 0, array="backup")
        # BIM hysteresis is full-size; G0's is half: the half-size bound is
        # enforced per array.
        with pytest.raises(ValueError):
            layout.locate("G0", 40 * 1024, array="hysteresis")

    def test_same_block_words_are_contiguous(self):
        """The 8 predictions of one fetch block (same bank/line/column,
        offsets 0..7) occupy one contiguous 8-bit word — the 'single 8-bit
        word' property of Section 6.1."""
        layout = WordlineLayout()
        base_index = (7 << 11) | (13 << 5) | (0 << 2) | 2
        bits = [layout.locate("Meta", base_index | (offset << 2)).bit
                for offset in range(8)]
        assert bits == list(range(min(bits), min(bits) + 8))
