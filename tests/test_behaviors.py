"""Tests for the branch behaviour models."""

import numpy as np
import pytest

from repro.workloads.behaviors import (
    BiasedBehavior,
    GlobalCorrelatedBehavior,
    LocalCorrelatedBehavior,
    LoopBehavior,
    MarkovBehavior,
    PatternBehavior,
    RandomBehavior,
)


class FakeContext:
    """Minimal ExecutionContext for driving behaviours directly."""

    def __init__(self):
        self.global_history = 0
        self.counts = {}

    def occurrence(self, branch_id):
        return self.counts.get(branch_id, 0)

    def record(self, branch_id, taken):
        self.global_history = (self.global_history << 1) | int(taken)
        self.counts[branch_id] = self.counts.get(branch_id, 0) + 1


@pytest.fixture
def ctx():
    return FakeContext()


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestBiased:
    def test_extremes(self, rng, ctx):
        always = BiasedBehavior(rng, 1.0)
        never = BiasedBehavior(rng, 0.0)
        assert all(always.next(0, ctx) for _ in range(50))
        assert not any(never.next(0, ctx) for _ in range(50))

    def test_rate_matches_probability(self, rng, ctx):
        behavior = BiasedBehavior(rng, 0.2)
        rate = sum(behavior.next(0, ctx) for _ in range(5000)) / 5000
        assert rate == pytest.approx(0.2, abs=0.03)

    def test_rejects_bad_probability(self, rng):
        with pytest.raises(ValueError):
            BiasedBehavior(rng, 1.5)

    def test_noise_flips(self, rng, ctx):
        behavior = BiasedBehavior(rng, 1.0, noise=0.3)
        rate = sum(behavior.next(0, ctx) for _ in range(5000)) / 5000
        assert rate == pytest.approx(0.7, abs=0.03)

    def test_rejects_bad_noise(self, rng):
        with pytest.raises(ValueError):
            BiasedBehavior(rng, 0.5, noise=-0.1)

    def test_random_behavior_is_balanced(self, rng, ctx):
        behavior = RandomBehavior(rng)
        rate = sum(behavior.next(0, ctx) for _ in range(5000)) / 5000
        assert rate == pytest.approx(0.5, abs=0.05)

    def test_determinism_given_seed(self, ctx):
        a = BiasedBehavior(np.random.default_rng(3), 0.5)
        b = BiasedBehavior(np.random.default_rng(3), 0.5)
        assert [a.next(0, ctx) for _ in range(30)] == [
            b.next(0, ctx) for _ in range(30)]


class TestLoop:
    def test_fixed_trip_count(self, rng, ctx):
        behavior = LoopBehavior(rng, mean_trips=4)
        behavior.enter()
        outcomes = [behavior.next(0, ctx) for _ in range(8)]
        # taken, taken, taken, not-taken -- twice (auto re-enter).
        assert outcomes == [True, True, True, False] * 2

    def test_single_trip_loop_always_exits(self, rng, ctx):
        behavior = LoopBehavior(rng, mean_trips=1)
        behavior.enter()
        assert [behavior.next(0, ctx) for _ in range(4)] == [False] * 4

    def test_rejects_zero_trips(self, rng):
        with pytest.raises(ValueError):
            LoopBehavior(rng, 0)

    def test_jitter_draws_at_least_one(self, rng, ctx):
        behavior = LoopBehavior(rng, mean_trips=2, trip_jitter=3.0)
        for _ in range(50):
            behavior.enter()
            # Must terminate within a bounded number of iterations.
            for _ in range(10000):
                if not behavior.next(0, ctx):
                    break
            else:
                pytest.fail("loop behaviour never exited")


class TestPattern:
    def test_string_pattern(self, rng, ctx):
        behavior = PatternBehavior(rng, "110")
        outcomes = []
        for _ in range(6):
            outcome = behavior.next(0, ctx)
            outcomes.append(outcome)
            ctx.record(0, outcome)
        assert outcomes == [True, True, False, True, True, False]

    def test_list_pattern(self, rng, ctx):
        behavior = PatternBehavior(rng, [True, False])
        outcome = behavior.next(0, ctx)
        ctx.record(0, outcome)
        assert outcome is True
        assert behavior.next(0, ctx) is False

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            PatternBehavior(rng, "")


class TestGlobalCorrelated:
    def test_deterministic_function_of_lags(self, rng):
        behavior = GlobalCorrelatedBehavior(rng, [1, 3])
        ctx = FakeContext()
        seen = {}
        for history in range(16):
            ctx.global_history = history
            key = (history & 1, (history >> 2) & 1)
            outcome = behavior.next(0, ctx)
            if key in seen:
                assert seen[key] == outcome
            seen[key] = outcome

    def test_depth(self, rng):
        behavior = GlobalCorrelatedBehavior(rng, [2, 7, 5])
        assert behavior.depth == 7
        assert behavior.lags == [2, 5, 7]

    def test_rejects_bad_lags(self, rng):
        with pytest.raises(ValueError):
            GlobalCorrelatedBehavior(rng, [])
        with pytest.raises(ValueError):
            GlobalCorrelatedBehavior(rng, [0])
        with pytest.raises(ValueError):
            GlobalCorrelatedBehavior(rng, list(range(1, 20)))

    def test_duplicate_lags_deduplicated(self, rng):
        behavior = GlobalCorrelatedBehavior(rng, [3, 3, 5])
        assert behavior.lags == [3, 5]


class TestLocalCorrelated:
    def test_eventually_periodic(self, rng, ctx):
        # A deterministic function of its own last outcomes must enter a
        # cycle of length at most 2^depth.
        behavior = LocalCorrelatedBehavior(rng, depth=3)
        outcomes = [behavior.next(0, ctx) for _ in range(64)]
        tail = outcomes[16:]
        # Look for a period up to 8 in the tail.
        assert any(
            all(tail[i] == tail[i + period] for i in range(len(tail) - period))
            for period in range(1, 9))

    def test_rejects_bad_depth(self, rng):
        with pytest.raises(ValueError):
            LocalCorrelatedBehavior(rng, 0)
        with pytest.raises(ValueError):
            LocalCorrelatedBehavior(rng, 17)


class TestMarkov:
    def test_high_persistence_produces_runs(self, rng, ctx):
        behavior = MarkovBehavior(rng, 0.99, 0.99)
        outcomes = [behavior.next(0, ctx) for _ in range(2000)]
        switches = sum(1 for a, b in zip(outcomes, outcomes[1:]) if a != b)
        assert switches < 80  # ~1% switch rate

    def test_zero_persistence_alternates(self, rng, ctx):
        behavior = MarkovBehavior(rng, 0.0, 0.0)
        outcomes = [behavior.next(0, ctx) for _ in range(10)]
        assert all(a != b for a, b in zip(outcomes, outcomes[1:]))

    def test_rejects_bad_probability(self, rng):
        with pytest.raises(ValueError):
            MarkovBehavior(rng, 1.2, 0.5)
