"""Smoke tests for the example scripts and the library's doctests."""

import doctest
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "li", "8000")
        assert "352 Kbits" in out
        assert "misp/KI" in out

    def test_smt_interference(self):
        out = run_example("smt_interference.py", "6000")
        assert "per-thread history" in out.lower() or "history register" in out
        assert "mispredictions" in out

    def test_custom_workload(self):
        out = run_example("custom_workload.py")
        assert "2Bc-gskew" in out
        assert "static conditional branches" in out

    def test_all_examples_compile(self):
        for script in EXAMPLES.glob("*.py"):
            source = script.read_text()
            compile(source, str(script), "exec")


DOCTEST_MODULES = [
    "repro.common.bitops",
    "repro.common.rng",
    "repro.indexing.skew",
    "repro.ev8.banks",
]


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_doctests(module_name):
    import importlib
    module = importlib.import_module(module_name)
    failures, tests = doctest.testmod(module).failed, \
        doctest.testmod(module).attempted
    assert tests > 0, f"{module_name} has no doctests"
    assert failures == 0


def test_trace_io_doctest(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    import repro.traces.io as io_module
    result = doctest.testmod(io_module)
    assert result.failed == 0
