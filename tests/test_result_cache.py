"""Persistent caches: result-cache keying/storage/driver plumbing, plus the
telemetry that distinguishes cold-miss, corrupt-regenerate and hit for both
the result cache and the trace cache."""

from __future__ import annotations

import dataclasses
import json

import pytest

from conftest import simple_loop_trace
from repro.history.providers import BlockLghistProvider, BranchGhistProvider
from repro.obs import Telemetry, use_telemetry
from repro.predictors import GsharePredictor
from repro.sim import result_cache
from repro.sim.driver import simulate
from repro.sim.metrics import SimulationResult
from repro.sim.result_cache import (
    CACHE_DIR_ENV_VAR,
    CACHE_ENV_VAR,
    UncacheableError,
    cache_dir,
    cache_enabled,
    load,
    result_key,
    store,
)
from repro.traces.io import TraceCache


@pytest.fixture
def cache_env(tmp_path, monkeypatch):
    """Enable the cache in an isolated directory."""
    monkeypatch.setenv(CACHE_ENV_VAR, "1")
    monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "cache"))
    return tmp_path / "cache"


@pytest.fixture
def trace():
    return simple_loop_trace(400, taken_pattern=(True, True, False))


def _gshare():
    return GsharePredictor(1 << 10, 10)


class TestEnvironment:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert not cache_enabled()

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("YES", True), (" on ", True),
        ("0", False), ("off", False), ("", False),
    ])
    def test_truthy_values(self, monkeypatch, value, expected):
        monkeypatch.setenv(CACHE_ENV_VAR, value)
        assert cache_enabled() is expected

    def test_cache_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "x"))
        assert cache_dir() == tmp_path / "x"


class TestResultKey:
    def test_deterministic_across_fresh_instances(self, trace):
        first = result_key(_gshare(), trace, BranchGhistProvider(), 0,
                           "batched")
        second = result_key(_gshare(), trace, BranchGhistProvider(), 0,
                            "batched")
        assert first == second

    def test_discriminates_every_input(self, trace):
        base = result_key(_gshare(), trace, None, 0, "batched")
        assert result_key(GsharePredictor(1 << 10, 12), trace, None, 0,
                          "batched") != base
        assert result_key(_gshare(), trace, BranchGhistProvider(), 0,
                          "batched") != base
        assert result_key(_gshare(), trace, None, 100, "batched") != base
        assert result_key(_gshare(), trace, None, 0, "scalar") != base
        other_trace = simple_loop_trace(400)  # different outcome pattern
        assert result_key(_gshare(), other_trace, None, 0, "batched") != base

    def test_discriminates_provider_configuration(self, trace):
        aged = result_key(_gshare(), trace,
                          BlockLghistProvider(delay_blocks=3), 0, "scalar")
        fresh = result_key(_gshare(), trace,
                           BlockLghistProvider(delay_blocks=0), 0, "scalar")
        assert aged != fresh

    def test_trace_name_excluded_from_key(self):
        # Identical content under different names is the same simulation.
        first = simple_loop_trace(200, name="a")
        second = simple_loop_trace(200, name="b")
        assert result_key(_gshare(), first, None, 0, "scalar") == \
            result_key(_gshare(), second, None, 0, "scalar")

    def test_uncacheable_inputs_raise(self, trace):
        predictor = _gshare()
        predictor.hook = lambda: None  # a callable attribute
        with pytest.raises(UncacheableError):
            result_key(predictor, trace, None, 0, "scalar")


class TestStorage:
    RESULT = SimulationResult(predictor_name="gshare", trace_name="loop",
                              branches=400, mispredictions=37,
                              instructions=1600, wall_seconds=0.25,
                              engine="batched", cache="miss")

    def test_round_trip_marks_hit(self, cache_env):
        store("deadbeef", self.RESULT)
        loaded = load("deadbeef")
        assert loaded is not None
        assert loaded.cache == "hit"
        assert dataclasses.replace(loaded, cache="miss") == self.RESULT

    def test_stored_payload_omits_cache_provenance(self, cache_env):
        store("deadbeef", self.RESULT)
        payload = json.loads((cache_env / "deadbeef.json").read_text())
        assert "cache" not in payload
        assert payload["mispredictions"] == 37

    def test_missing_entry_is_none(self, cache_env):
        assert load("0" * 64) is None

    def test_corrupt_entry_is_a_miss(self, cache_env):
        cache_env.mkdir(parents=True, exist_ok=True)
        (cache_env / "bad.json").write_text("{not json")
        (cache_env / "partial.json").write_text('{"branches": 3}')
        assert load("bad") is None
        assert load("partial") is None


class TestDriverPlumbing:
    def test_cache_off_by_default(self, trace, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "cache"))
        result = simulate(_gshare(), trace)
        assert result.cache == "off"
        assert not (tmp_path / "cache").exists()

    def test_miss_then_hit(self, cache_env, trace):
        first = simulate(_gshare(), trace, engine="batched")
        assert first.cache == "miss"
        assert list(cache_env.glob("*.json"))
        second = simulate(_gshare(), trace, engine="batched")
        assert second.cache == "hit"
        assert second.mispredictions == first.mispredictions
        assert second.branches == first.branches
        assert second.engine == first.engine

    def test_explicit_use_cache_overrides_environment(self, cache_env,
                                                      trace, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        first = simulate(_gshare(), trace, use_cache=True)
        second = simulate(_gshare(), trace, use_cache=True)
        assert (first.cache, second.cache) == ("miss", "hit")
        third = simulate(_gshare(), trace, use_cache=False)
        assert third.cache == "off"

    def test_engines_key_separately(self, cache_env, trace):
        batched = simulate(_gshare(), trace, engine="batched")
        scalar = simulate(_gshare(), trace, engine="scalar")
        assert (batched.cache, scalar.cache) == ("miss", "miss")
        assert scalar.mispredictions == batched.mispredictions

    def test_uncacheable_predictor_runs_uncached(self, cache_env, trace):
        predictor = _gshare()
        predictor.hook = lambda: None
        result = simulate(predictor, trace)
        assert result.cache == "off"
        assert result.branches == 400

    def test_hit_matches_fresh_simulation(self, cache_env, trace):
        simulate(_gshare(), trace, engine="batched", warmup_branches=50)
        hit = simulate(_gshare(), trace, engine="batched",
                       warmup_branches=50)
        fresh = simulate(_gshare(), trace, engine="batched",
                         warmup_branches=50, use_cache=False)
        assert hit.cache == "hit"
        assert hit.mispredictions == fresh.mispredictions
        assert hit.branches == fresh.branches


class TestResultCacheTelemetry:
    """The cache telemetry distinguishes its three lookup outcomes."""

    def test_cold_miss_then_hit(self, cache_env, trace):
        sink = Telemetry()
        first = simulate(_gshare(), trace, engine="batched", telemetry=sink)
        second = simulate(_gshare(), trace, engine="batched", telemetry=sink)
        assert (first.cache, second.cache) == ("miss", "hit")
        assert sink.counters["result_cache.cold_misses"] == 1
        assert sink.counters["result_cache.hits"] == 1
        assert sink.counters["result_cache.stores"] == 1
        assert "result_cache.corrupt" not in sink.counters
        assert sink.histograms["result_cache.hit_seconds"]["count"] == 1
        assert sink.histograms["result_cache.miss_seconds"]["count"] == 1
        # The miss simulated; the hit only read a small JSON file.
        assert sink.histograms["result_cache.miss_seconds"]["total"] \
            >= sink.histograms["result_cache.hit_seconds"]["total"]

    def test_corrupt_entry_counts_and_is_rewritten(self, cache_env, trace):
        simulate(_gshare(), trace, engine="batched")
        entry, = cache_env.glob("*.json")
        entry.write_text("{definitely not json")
        sink = Telemetry()
        recovered = simulate(_gshare(), trace, engine="batched",
                             telemetry=sink)
        assert recovered.cache == "miss"  # re-simulated and re-stored
        assert sink.counters["result_cache.corrupt"] == 1
        assert sink.counters["result_cache.stores"] == 1
        assert "result_cache.hits" not in sink.counters
        assert "result_cache.cold_misses" not in sink.counters
        # The rewrite healed the entry: the next lookup is a clean hit.
        healed = simulate(_gshare(), trace, engine="batched", telemetry=sink)
        assert healed.cache == "hit"
        assert sink.counters["result_cache.hits"] == 1
        assert healed.mispredictions == recovered.mispredictions

    def test_structurally_invalid_entry_is_corrupt(self, cache_env):
        cache_env.mkdir(parents=True, exist_ok=True)
        (cache_env / "partial.json").write_text('{"branches": 3}')
        sink = Telemetry()
        assert load("partial", telemetry=sink) is None
        assert sink.counters == {"result_cache.corrupt": 1}

    def test_active_sink_used_when_none_passed(self, cache_env):
        sink = Telemetry()
        with use_telemetry(sink):
            assert load("0" * 64) is None
        assert sink.counters == {"result_cache.cold_misses": 1}

    def test_null_sink_records_nothing(self, cache_env, trace):
        result = simulate(_gshare(), trace, engine="batched")
        assert result.cache == "miss"
        assert load("0" * 64) is None  # and no sink to notice it


class TestTraceCacheTelemetry:
    """trace_cache.* distinguishes memory hit, disk hit, cold miss and
    corrupt-regenerate (the satellite case: a garbage ``.npz`` must be
    dropped, regenerated, and rewritten)."""

    @staticmethod
    def _generator(calls):
        def generate():
            calls.append(1)
            return simple_loop_trace(60, name="cached")
        return generate

    def test_cold_miss_then_memory_then_disk(self, tmp_path):
        sink = Telemetry()
        calls = []
        cache = TraceCache(tmp_path, telemetry=sink)
        cache.get_or_generate("t", {"n": 1}, self._generator(calls))
        assert sink.counters == {"trace_cache.cold_misses": 1}
        assert sink.histograms["trace_cache.generate_seconds"]["count"] == 1

        cache.get_or_generate("t", {"n": 1}, self._generator(calls))
        assert sink.counters["trace_cache.memory_hits"] == 1

        cache.clear_memory()
        cache.get_or_generate("t", {"n": 1}, self._generator(calls))
        assert sink.counters["trace_cache.disk_hits"] == 1
        assert len(calls) == 1  # generated exactly once throughout

    def test_corrupt_npz_is_regenerated_and_rewritten(self, tmp_path):
        sink = Telemetry()
        calls = []
        cache = TraceCache(tmp_path, telemetry=sink)
        first = cache.get_or_generate("t", {"n": 1}, self._generator(calls))
        archive, = tmp_path.glob("*.npz")
        archive.write_bytes(b"\x00garbage, not a zip archive")

        cache.clear_memory()
        regenerated = cache.get_or_generate("t", {"n": 1},
                                            self._generator(calls))
        assert len(calls) == 2
        assert regenerated.conditional_count == first.conditional_count
        assert sink.counters["trace_cache.corrupt_regenerated"] == 1
        assert sink.counters["trace_cache.cold_misses"] == 1
        assert sink.histograms["trace_cache.generate_seconds"]["count"] == 2

        # The regeneration rewrote the archive: next lookup is a disk hit.
        cache.clear_memory()
        cache.get_or_generate("t", {"n": 1}, self._generator(calls))
        assert len(calls) == 2
        assert sink.counters["trace_cache.disk_hits"] == 1

    def test_defers_to_active_sink_when_unbound(self, tmp_path):
        sink = Telemetry()
        cache = TraceCache(tmp_path)  # no sink bound at construction
        with use_telemetry(sink):
            cache.get_or_generate("t", {"n": 1}, self._generator([]))
        assert sink.counters == {"trace_cache.cold_misses": 1}
        # Outside the scope, the same instance goes quiet again.
        cache.clear_memory()
        cache.get_or_generate("t", {"n": 1}, self._generator([]))
        assert sink.counters == {"trace_cache.cold_misses": 1}
