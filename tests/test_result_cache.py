"""Persistent simulation-result cache: keying, storage, and driver plumbing."""

from __future__ import annotations

import dataclasses
import json

import pytest

from conftest import simple_loop_trace
from repro.history.providers import BlockLghistProvider, BranchGhistProvider
from repro.predictors import GsharePredictor
from repro.sim import result_cache
from repro.sim.driver import simulate
from repro.sim.metrics import SimulationResult
from repro.sim.result_cache import (
    CACHE_DIR_ENV_VAR,
    CACHE_ENV_VAR,
    UncacheableError,
    cache_dir,
    cache_enabled,
    load,
    result_key,
    store,
)


@pytest.fixture
def cache_env(tmp_path, monkeypatch):
    """Enable the cache in an isolated directory."""
    monkeypatch.setenv(CACHE_ENV_VAR, "1")
    monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "cache"))
    return tmp_path / "cache"


@pytest.fixture
def trace():
    return simple_loop_trace(400, taken_pattern=(True, True, False))


def _gshare():
    return GsharePredictor(1 << 10, 10)


class TestEnvironment:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert not cache_enabled()

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("YES", True), (" on ", True),
        ("0", False), ("off", False), ("", False),
    ])
    def test_truthy_values(self, monkeypatch, value, expected):
        monkeypatch.setenv(CACHE_ENV_VAR, value)
        assert cache_enabled() is expected

    def test_cache_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "x"))
        assert cache_dir() == tmp_path / "x"


class TestResultKey:
    def test_deterministic_across_fresh_instances(self, trace):
        first = result_key(_gshare(), trace, BranchGhistProvider(), 0,
                           "batched")
        second = result_key(_gshare(), trace, BranchGhistProvider(), 0,
                            "batched")
        assert first == second

    def test_discriminates_every_input(self, trace):
        base = result_key(_gshare(), trace, None, 0, "batched")
        assert result_key(GsharePredictor(1 << 10, 12), trace, None, 0,
                          "batched") != base
        assert result_key(_gshare(), trace, BranchGhistProvider(), 0,
                          "batched") != base
        assert result_key(_gshare(), trace, None, 100, "batched") != base
        assert result_key(_gshare(), trace, None, 0, "scalar") != base
        other_trace = simple_loop_trace(400)  # different outcome pattern
        assert result_key(_gshare(), other_trace, None, 0, "batched") != base

    def test_discriminates_provider_configuration(self, trace):
        aged = result_key(_gshare(), trace,
                          BlockLghistProvider(delay_blocks=3), 0, "scalar")
        fresh = result_key(_gshare(), trace,
                           BlockLghistProvider(delay_blocks=0), 0, "scalar")
        assert aged != fresh

    def test_trace_name_excluded_from_key(self):
        # Identical content under different names is the same simulation.
        first = simple_loop_trace(200, name="a")
        second = simple_loop_trace(200, name="b")
        assert result_key(_gshare(), first, None, 0, "scalar") == \
            result_key(_gshare(), second, None, 0, "scalar")

    def test_uncacheable_inputs_raise(self, trace):
        predictor = _gshare()
        predictor.hook = lambda: None  # a callable attribute
        with pytest.raises(UncacheableError):
            result_key(predictor, trace, None, 0, "scalar")


class TestStorage:
    RESULT = SimulationResult(predictor_name="gshare", trace_name="loop",
                              branches=400, mispredictions=37,
                              instructions=1600, wall_seconds=0.25,
                              engine="batched", cache="miss")

    def test_round_trip_marks_hit(self, cache_env):
        store("deadbeef", self.RESULT)
        loaded = load("deadbeef")
        assert loaded is not None
        assert loaded.cache == "hit"
        assert dataclasses.replace(loaded, cache="miss") == self.RESULT

    def test_stored_payload_omits_cache_provenance(self, cache_env):
        store("deadbeef", self.RESULT)
        payload = json.loads((cache_env / "deadbeef.json").read_text())
        assert "cache" not in payload
        assert payload["mispredictions"] == 37

    def test_missing_entry_is_none(self, cache_env):
        assert load("0" * 64) is None

    def test_corrupt_entry_is_a_miss(self, cache_env):
        cache_env.mkdir(parents=True, exist_ok=True)
        (cache_env / "bad.json").write_text("{not json")
        (cache_env / "partial.json").write_text('{"branches": 3}')
        assert load("bad") is None
        assert load("partial") is None


class TestDriverPlumbing:
    def test_cache_off_by_default(self, trace, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "cache"))
        result = simulate(_gshare(), trace)
        assert result.cache == "off"
        assert not (tmp_path / "cache").exists()

    def test_miss_then_hit(self, cache_env, trace):
        first = simulate(_gshare(), trace, engine="batched")
        assert first.cache == "miss"
        assert list(cache_env.glob("*.json"))
        second = simulate(_gshare(), trace, engine="batched")
        assert second.cache == "hit"
        assert second.mispredictions == first.mispredictions
        assert second.branches == first.branches
        assert second.engine == first.engine

    def test_explicit_use_cache_overrides_environment(self, cache_env,
                                                      trace, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        first = simulate(_gshare(), trace, use_cache=True)
        second = simulate(_gshare(), trace, use_cache=True)
        assert (first.cache, second.cache) == ("miss", "hit")
        third = simulate(_gshare(), trace, use_cache=False)
        assert third.cache == "off"

    def test_engines_key_separately(self, cache_env, trace):
        batched = simulate(_gshare(), trace, engine="batched")
        scalar = simulate(_gshare(), trace, engine="scalar")
        assert (batched.cache, scalar.cache) == ("miss", "miss")
        assert scalar.mispredictions == batched.mispredictions

    def test_uncacheable_predictor_runs_uncached(self, cache_env, trace):
        predictor = _gshare()
        predictor.hook = lambda: None
        result = simulate(predictor, trace)
        assert result.cache == "off"
        assert result.branches == 400

    def test_hit_matches_fresh_simulation(self, cache_env, trace):
        simulate(_gshare(), trace, engine="batched", warmup_branches=50)
        hit = simulate(_gshare(), trace, engine="batched",
                       warmup_branches=50)
        fresh = simulate(_gshare(), trace, engine="batched",
                         warmup_branches=50, use_cache=False)
        assert hit.cache == "hit"
        assert hit.mispredictions == fresh.mispredictions
        assert hit.branches == fresh.branches
