"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_predictor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "tage", "gcc"])

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "ev8", "mcf"])

    def test_experiment_commands_registered(self):
        for name in ("table2", "table3", "fig5", "fig10"):
            args = build_parser().parse_args([name])
            assert args.command == name
            assert args.branches is None


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "352 Kbits" in out
        assert "Table 1" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "bimodal", "compress",
                     "--branches", "5000"]) == 0
        out = capsys.readouterr().out
        assert "misp/KI" in out
        assert "storage" in out

    def test_simulate_ev8_uses_block_provider(self, capsys):
        assert main(["simulate", "ev8", "compress",
                     "--branches", "5000"]) == 0
        assert "misp/KI" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main(["sweep", "compress", "--branches", "5000",
                     "--lengths", "0", "4"]) == 0
        out = capsys.readouterr().out
        assert "<- best" in out
        assert out.count("h=") == 2

    def test_experiment_table3(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["table3", "--branches", "4000"]) == 0
        assert "lghist" in capsys.readouterr().out

    def test_every_predictor_constructs(self):
        from repro.cli import _make_predictor, _PREDICTOR_CHOICES
        for name in _PREDICTOR_CHOICES:
            predictor = _make_predictor(name)
            assert predictor.storage_bits > 0, name
