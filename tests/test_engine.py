"""Engine layer: scalar/batched equivalence, fallbacks, and the registry.

The batched engine's contract is bit-identical ``mispredictions`` and
``branches`` versus the scalar reference (plus equivalent final table
state) for every opted-in predictor; these tests pin that contract on both
synthetic and stand-in SPEC traces.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import simple_loop_trace
from repro.history.providers import BlockLghistProvider, BranchGhistProvider
from repro.predictors import (
    BatchCapable,
    BimodalPredictor,
    EGskewPredictor,
    GAsPredictor,
    GsharePredictor,
    LocalPredictor,
    TableConfig,
    TwoBcGskewPredictor,
)
from repro.sim.engine import (
    ENGINE_ENV_VAR,
    ENGINES,
    BatchedEngine,
    ScalarEngine,
    SimulationEngine,
    default_engine_name,
    get_engine,
    register_engine,
)
from repro.sim.driver import simulate
from repro.sim.sweep import sweep, sweep_parallel

PREDICTOR_FACTORIES = {
    "bimodal": lambda: BimodalPredictor(1 << 12),
    "gshare": lambda: GsharePredictor(1 << 12, 12),
    "gshare-long-history": lambda: GsharePredictor(1 << 10, 30),
    "gas": lambda: GAsPredictor(1 << 12, 6),
    "egskew": lambda: EGskewPredictor(1 << 11, 10),
    "2bc-gskew": lambda: TwoBcGskewPredictor(
        TableConfig(1 << 10, 0), TableConfig(1 << 10, 9),
        TableConfig(1 << 10, 15), TableConfig(1 << 10, 11)),
}


def _both_engines(factory, trace, warmup: int = 0):
    scalar = ScalarEngine().run(factory(), trace, warmup_branches=warmup)
    batched = BatchedEngine(strict=True).run(factory(), trace,
                                             warmup_branches=warmup)
    return scalar, batched


@pytest.mark.parametrize("config", sorted(PREDICTOR_FACTORIES))
def test_engines_bit_identical_on_gcc(config, gcc_trace):
    scalar, batched = _both_engines(PREDICTOR_FACTORIES[config], gcc_trace)
    assert batched.branches == scalar.branches
    assert batched.mispredictions == scalar.mispredictions
    assert batched.engine == "batched" and scalar.engine == "scalar"


@pytest.mark.parametrize("config", sorted(PREDICTOR_FACTORIES))
def test_engines_bit_identical_on_compress(config, compress_trace):
    scalar, batched = _both_engines(PREDICTOR_FACTORIES[config],
                                    compress_trace)
    assert (batched.mispredictions, batched.branches) == \
        (scalar.mispredictions, scalar.branches)


@pytest.mark.parametrize("pattern", [None, (True, False), (True,) * 5 + (False,),
                                     (True, True, False, True, False, False)])
def test_engines_bit_identical_on_loop_patterns(pattern):
    trace = simple_loop_trace(400, taken_pattern=pattern)
    for config, factory in PREDICTOR_FACTORIES.items():
        scalar, batched = _both_engines(factory, trace)
        assert (batched.mispredictions, batched.branches) == \
            (scalar.mispredictions, scalar.branches), config


def test_engines_bit_identical_with_warmup(gcc_trace):
    for warmup in (1, 100, 5000):
        scalar, batched = _both_engines(PREDICTOR_FACTORIES["gshare"],
                                        gcc_trace, warmup=warmup)
        assert (batched.mispredictions, batched.branches) == \
            (scalar.mispredictions, scalar.branches), warmup


def test_engines_equivalent_final_table_state(gcc_trace):
    """Batched simulation leaves the counter arrays in the same state the
    scalar walk does — the equivalence is stronger than count-equality."""
    scalar_pred = GsharePredictor(1 << 12, 12)
    batched_pred = GsharePredictor(1 << 12, 12)
    ScalarEngine().run(scalar_pred, gcc_trace)
    BatchedEngine(strict=True).run(batched_pred, gcc_trace)
    assert scalar_pred._counters._prediction == batched_pred._counters._prediction
    assert scalar_pred._counters._hysteresis == batched_pred._counters._hysteresis


def test_batched_falls_back_for_non_batch_capable(gcc_trace):
    predictor = LocalPredictor(1 << 10, 10, 1 << 10)
    assert not isinstance(predictor, BatchCapable)
    result = BatchedEngine().run(predictor, gcc_trace)
    assert result.engine == "scalar"
    reference = ScalarEngine().run(LocalPredictor(1 << 10, 10, 1 << 10),
                                   gcc_trace)
    assert result.mispredictions == reference.mispredictions


def test_batched_handles_shared_hysteresis(gcc_trace):
    """Half-size hysteresis is inside the batched envelope: the grouped
    segmented replay must match the scalar walk bit for bit."""
    factory = lambda: BimodalPredictor(1 << 12, hysteresis_entries=1 << 10)  # noqa: E731
    assert factory().batch_supported()
    scalar, batched = _both_engines(factory, gcc_trace)
    assert batched.engine == "batched"
    assert (batched.mispredictions, batched.branches) == \
        (scalar.mispredictions, scalar.branches)


def test_ev8_table1_batched_strict_bit_identical(gcc_trace):
    """The full EV8 Table 1 configuration — lghist/path provider, EV8 index
    functions, shared G0/Meta hysteresis, partial update — runs entirely
    inside the batched envelope, bit-identical to the scalar walk."""
    from repro.ev8.predictor import EV8BranchPredictor

    scalar_pred = EV8BranchPredictor()
    batched_pred = EV8BranchPredictor()
    scalar = ScalarEngine().run(scalar_pred, gcc_trace,
                                provider=EV8BranchPredictor.make_provider())
    batched = BatchedEngine(strict=True).run(
        batched_pred, gcc_trace, provider=EV8BranchPredictor.make_provider())
    assert batched.engine == "batched"
    assert (batched.mispredictions, batched.branches) == \
        (scalar.mispredictions, scalar.branches)
    # Equivalence extends to the final state of all four tables (G0 and
    # Meta exercise the shared-hysteresis group scan).
    for table in ("bim", "g0", "g1", "meta"):
        scalar_table = getattr(scalar_pred, table)
        batched_table = getattr(batched_pred, table)
        assert scalar_table._prediction == batched_table._prediction, table
        assert scalar_table._hysteresis == batched_table._hysteresis, table


def test_ev8_batched_strict_bit_identical_with_warmup(compress_trace):
    from repro.ev8.predictor import EV8BranchPredictor

    for warmup in (1, 777, 5000):
        scalar = ScalarEngine().run(
            EV8BranchPredictor(), compress_trace,
            provider=EV8BranchPredictor.make_provider(),
            warmup_branches=warmup)
        batched = BatchedEngine(strict=True).run(
            EV8BranchPredictor(), compress_trace,
            provider=EV8BranchPredictor.make_provider(),
            warmup_branches=warmup)
        assert (batched.mispredictions, batched.branches) == \
            (scalar.mispredictions, scalar.branches), warmup


def test_batched_falls_back_for_unmaterializable_provider(gcc_trace):
    # Histories beyond 64 bits cannot be packed into a uint64 column, so
    # materialize returns None and the engine replays scalar.
    result = BatchedEngine().run(GsharePredictor(1 << 12, 12), gcc_trace,
                                 provider=BlockLghistProvider(capacity=80))
    assert result.engine == "scalar"
    reference = ScalarEngine().run(GsharePredictor(1 << 12, 12), gcc_trace,
                                   provider=BlockLghistProvider(capacity=80))
    assert result.mispredictions == reference.mispredictions


def test_batched_strict_raises_instead_of_falling_back(gcc_trace):
    with pytest.raises(ValueError, match="BatchCapable"):
        BatchedEngine(strict=True).run(LocalPredictor(1 << 10, 10, 1 << 10),
                                       gcc_trace)
    with pytest.raises(ValueError, match="materialize"):
        BatchedEngine(strict=True).run(GsharePredictor(1 << 12, 12),
                                       gcc_trace,
                                       provider=BlockLghistProvider(
                                           capacity=80))


def test_materialized_batch_matches_scalar_provider_walk(gcc_trace):
    """The trace-side vector columns agree with the scalar provider walk."""
    from repro.traces.fetch import fetch_blocks_for

    provider = BranchGhistProvider()
    batch = BranchGhistProvider().materialize(gcc_trace)
    assert batch is not None
    i = 0
    for block in fetch_blocks_for(gcc_trace):
        for vector in provider.begin_block(block):
            assert int(batch.history[i]) == vector.history
            assert int(batch.branch_pc[i]) == vector.branch_pc
            assert int(batch.address[i]) == vector.address
            assert tuple(int(batch.path[d, i])
                         for d in range(batch.path_depth)) == vector.path
            i += 1
        provider.end_block(block)
    assert i == len(batch)


def test_wall_clock_recorded(gcc_trace):
    result = simulate(GsharePredictor(1 << 12, 12), gcc_trace)
    assert result.wall_seconds > 0
    assert result.branches_per_second > 0


def test_get_engine_resolution(monkeypatch):
    assert isinstance(get_engine("scalar"), ScalarEngine)
    assert isinstance(get_engine("batched"), BatchedEngine)
    instance = BatchedEngine(strict=True)
    assert get_engine(instance) is instance
    with pytest.raises(ValueError, match="unknown simulation engine"):
        get_engine("warp-drive")

    monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
    assert default_engine_name() == "scalar"
    monkeypatch.setenv(ENGINE_ENV_VAR, "batched")
    assert default_engine_name() == "batched"
    assert isinstance(get_engine(None), BatchedEngine)


def test_register_engine(monkeypatch):
    class CountingEngine(ScalarEngine):
        name = "counting"

    register_engine("counting", CountingEngine)
    try:
        assert isinstance(get_engine("counting"), CountingEngine)
    finally:
        ENGINES.pop("counting", None)


def test_simulate_engine_argument_equivalence(gcc_trace):
    scalar = simulate(GsharePredictor(1 << 12, 12), gcc_trace,
                      engine="scalar")
    batched = simulate(GsharePredictor(1 << 12, 12), gcc_trace,
                       engine="batched")
    assert batched.mispredictions == scalar.mispredictions
    assert batched.engine == "batched"


def _make_gshare(history_length: int) -> GsharePredictor:
    """Module-level factory: picklable, as sweep_parallel requires."""
    return GsharePredictor(1 << 12, history_length)


def test_sweep_parallel_matches_serial_sweep(gcc_trace):
    lengths = [4, 8, 12]
    traces = {"gcc": gcc_trace}
    serial = sweep(_make_gshare, lengths, traces, engine="batched")
    parallel = sweep_parallel(_make_gshare, lengths, traces,
                              engine="batched", max_workers=2)
    assert [p.value for p in parallel] == lengths
    for serial_point, parallel_point in zip(serial, parallel):
        assert parallel_point.mean_misp_per_ki == serial_point.mean_misp_per_ki
        assert parallel_point.per_benchmark == serial_point.per_benchmark


def test_sweep_parallel_falls_back_on_unpicklable_factory(gcc_trace):
    traces = {"gcc": gcc_trace}
    factory = lambda length: GsharePredictor(1 << 12, length)  # noqa: E731
    with pytest.warns(RuntimeWarning, match="falling back to serial"):
        points = sweep_parallel(factory, [4, 8], traces, max_workers=2)
    assert [p.value for p in points] == [4, 8]


def test_simulation_engine_protocol_repr():
    engine = ScalarEngine()
    assert isinstance(engine, SimulationEngine)
    assert "scalar" in repr(engine)
