"""Property-based stateful test: SplitCounterArray against a reference
model of independent 2-bit saturating counters with (optionally shared)
hysteresis."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.common.counters import SplitCounterArray

SIZE = 16


class ReferenceModel:
    """Direct transcription of the paper's split-array semantics."""

    def __init__(self, size, hysteresis_size):
        self.size = size
        self.hysteresis_size = hysteresis_size
        self.prediction = [0] * size
        self.hysteresis = [0] * hysteresis_size

    def _h(self, index):
        return index % self.hysteresis_size

    def counter(self, index):
        direction = self.prediction[index]
        strength = self.hysteresis[self._h(index)]
        return (2 + strength) if direction else (1 - strength)

    def update(self, index, taken):
        direction = self.prediction[index]
        strength = self.hysteresis[self._h(index)]
        if bool(direction) == taken:
            self.hysteresis[self._h(index)] = 1
        elif strength:
            self.hysteresis[self._h(index)] = 0
        else:
            self.prediction[index] = int(taken)

    def strengthen(self, index, taken):
        if bool(self.prediction[index]) == taken:
            self.hysteresis[self._h(index)] = 1
        else:
            self.update(index, taken)

    def set_counter(self, index, value):
        self.prediction[index] = 1 if value >= 2 else 0
        self.hysteresis[self._h(index)] = 1 if value in (0, 3) else 0


class CounterMachine(RuleBasedStateMachine):
    @initialize(shared=st.booleans())
    def setup(self, shared):
        hysteresis = SIZE // 2 if shared else SIZE
        self.array = SplitCounterArray(SIZE, hysteresis)
        self.model = ReferenceModel(SIZE, hysteresis)

    @rule(index=st.integers(0, SIZE - 1), taken=st.booleans())
    def update(self, index, taken):
        self.array.update(index, taken)
        self.model.update(index, taken)

    @rule(index=st.integers(0, SIZE - 1), taken=st.booleans())
    def strengthen(self, index, taken):
        self.array.strengthen(index, taken)
        self.model.strengthen(index, taken)

    @rule(index=st.integers(0, SIZE - 1), value=st.integers(0, 3))
    def set_counter(self, index, value):
        self.array.set_counter(index, value)
        self.model.set_counter(index, value)

    @invariant()
    def states_agree(self):
        if not hasattr(self, "array"):
            return
        for index in range(SIZE):
            assert self.array.counter_value(index) == \
                self.model.counter(index), index
            assert self.array.predict(index) == \
                (self.model.counter(index) >= 2), index


TestCounterMachine = CounterMachine.TestCase
TestCounterMachine.settings = settings(max_examples=40,
                                       stateful_step_count=60,
                                       deadline=None)
