"""Differential fuzzing: the scalar ↔ batched contract, whole-predictor.

``tests/test_counters.py`` locks ``SplitCounterArray.batch_access`` against
the scalar counter walk per component; these tests lock the contract at the
level the engines actually rely on: Hypothesis generates random predictor
configurations (per-table sizes, history lengths, hysteresis sharing on/off,
partial vs total update, ghist vs lghist providers) and random short traces,
then asserts that the scalar reference walk and the strict batched replay
produce **bit-identical per-branch predictions**, identical final
prediction/hysteresis array bytes, and identical telemetry counters.

The example budget is tunable: ``REPRO_DIFF_FUZZ_EXAMPLES`` (default 230)
lets the dedicated CI fuzzer step pick a budget that fits its time box
while local runs keep the full sweep.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.counters import SplitCounterArray
from repro.history.providers import BlockLghistProvider, BranchGhistProvider
from repro.obs import Telemetry
from repro.predictors.egskew import EGskewPredictor
from repro.predictors.twobcgskew import (SkewedIndexScheme, TableConfig,
                                         TwoBcGskewPredictor)
from repro.traces.fetch import fetch_blocks_for
from repro.traces.model import TerminatorKind, TraceBuilder

FUZZ_EXAMPLES = int(os.environ.get("REPRO_DIFF_FUZZ_EXAMPLES", "230"))

_PCS = tuple(0x4000 + 16 * i for i in range(12))


# -- strategies ---------------------------------------------------------------

@st.composite
def random_traces(draw):
    """A short trace over a small set of branch PCs with random outcomes
    (some unconditional blocks mixed in to exercise block/path plumbing)."""
    length = draw(st.integers(min_value=4, max_value=120))
    builder = TraceBuilder("fuzz")
    for _ in range(length):
        pc = draw(st.sampled_from(_PCS))
        if draw(st.integers(0, 9)) == 0:
            builder.add(pc, draw(st.integers(1, 4)), TerminatorKind.JUMP,
                        True, draw(st.sampled_from(_PCS)))
            continue
        taken = draw(st.booleans())
        target = draw(st.sampled_from(_PCS))
        builder.add(pc, draw(st.integers(1, 4)), TerminatorKind.CONDITIONAL,
                    taken, target if taken else pc + 16)
    return builder.build()


@st.composite
def table_configs(draw, max_history: int = 14):
    entries = 1 << draw(st.integers(min_value=4, max_value=7))
    history = draw(st.integers(min_value=0, max_value=max_history))
    shared = draw(st.booleans())
    return TableConfig(entries, history,
                       entries // 2 if shared else None)


@st.composite
def twobcgskew_configs(draw):
    """Constructor kwargs for a random (small) 2Bc-gskew instance."""
    return dict(
        bim=draw(table_configs(max_history=4)),
        g0=draw(table_configs()),
        g1=draw(table_configs()),
        meta=draw(table_configs()),
        index_scheme=SkewedIndexScheme(
            use_path_addresses=draw(st.booleans())),
        update_policy=draw(st.sampled_from(("partial", "total"))),
    )


@st.composite
def providers_factories(draw):
    """A factory for fresh, equivalent provider instances (providers are
    stateful, so each engine run needs its own)."""
    kind = draw(st.sampled_from(("ghist", "lghist")))
    if kind == "ghist":
        return BranchGhistProvider
    include_path = draw(st.booleans())
    delay_blocks = draw(st.integers(min_value=0, max_value=2))

    def make() -> BlockLghistProvider:
        return BlockLghistProvider(include_path=include_path,
                                   delay_blocks=delay_blocks)

    return make


# -- the reference walk -------------------------------------------------------

def scalar_walk(predictor, trace, provider, sink) -> np.ndarray:
    """The ScalarEngine loop, returning every per-branch prediction."""
    predictor.attach_telemetry(sink)
    predictions = []
    for block in fetch_blocks_for(trace):
        if block.branch_pcs:
            vectors = provider.begin_block(block)
            for vector, taken in zip(vectors, block.branch_outcomes):
                predictions.append(predictor.access(vector, taken))
        provider.end_block(block)
    return np.asarray(predictions, dtype=np.bool_)


def batched_walk(predictor, trace, provider, sink) -> np.ndarray:
    """The strict batched replay over the materialized vector batch."""
    batch = provider.materialize(trace)
    assert batch is not None, "provider fell out of the batchable envelope"
    predictor.attach_telemetry(sink)
    return predictor.batch_access(batch)


def fast_walk(predictor, trace, provider) -> np.ndarray:
    """The batched replay under the fast kernel (telemetry disabled — a
    recording sink forces the compat kernel, so this arm runs without one,
    exactly like production sweeps)."""
    batch = provider.materialize(trace)
    assert batch is not None, "provider fell out of the batchable envelope"
    predictor.set_replay_kernel("fast")
    return predictor.batch_access(batch)


def _bank_arrays(predictor) -> dict[str, SplitCounterArray]:
    banks = {name: value for name, value in vars(predictor).items()
             if isinstance(value, SplitCounterArray)}
    assert banks, "predictor exposes no counter arrays to compare"
    return banks


def _assert_same_state(reference, candidate, arm: str) -> None:
    for name, bank in _bank_arrays(reference).items():
        other = getattr(candidate, name)
        assert bytes(bank._prediction) == bytes(other._prediction), \
            f"{name} prediction array diverged ({arm})"
        assert bytes(bank._hysteresis) == bytes(other._hysteresis), \
            f"{name} hysteresis array diverged ({arm})"


def assert_equivalent(make_predictor, trace, make_provider) -> None:
    scalar_sink, batched_sink = Telemetry(), Telemetry()
    reference = make_predictor()
    candidate = make_predictor()
    expected = scalar_walk(reference, trace, make_provider(), scalar_sink)
    actual = batched_walk(candidate, trace, make_provider(), batched_sink)

    np.testing.assert_array_equal(expected, actual)
    _assert_same_state(reference, candidate, "compat kernel")

    # Engine-consistent telemetry: logical bank traffic, arbitration and
    # update-policy event counts must match key-for-key (replay.* is
    # batched-only bookkeeping and excluded by construction).
    def comparable(sink):
        return {name: value
                for name, value in sink.snapshot()["counters"].items()
                if name.split(".", 1)[0] in ("bank", "arbitration", "update")}

    assert comparable(scalar_sink) == comparable(batched_sink)

    # Third arm: the fast replay kernel (what production sweeps run when no
    # sink is attached) must be bit-identical to the same scalar reference —
    # predictions and final table state both.
    fast = make_predictor()
    np.testing.assert_array_equal(
        expected, fast_walk(fast, trace, make_provider()))
    _assert_same_state(reference, fast, "fast kernel")


# -- the fuzzers --------------------------------------------------------------

class TestTwoBcGskewDifferential:
    # slow: the full randomized budget runs in the dedicated CI fuzzer step
    # (which runs this file without the marker filter); the default lane
    # keeps the fixed-shape differential tests below.
    @pytest.mark.slow
    @settings(max_examples=FUZZ_EXAMPLES, deadline=None)
    @given(config=twobcgskew_configs(), trace=random_traces(),
           make_provider=providers_factories())
    def test_random_config_random_trace(self, config, trace, make_provider):
        assert_equivalent(lambda: TwoBcGskewPredictor(**config), trace,
                          make_provider)

    @settings(max_examples=40, deadline=None)
    @given(trace=random_traces(), make_provider=providers_factories())
    def test_ev8_shaped_sharing(self, trace, make_provider):
        """The Table 1 shape in miniature: half-size hysteresis on G0 and
        Meta, distinct per-table history lengths."""
        def make():
            return TwoBcGskewPredictor(
                bim=TableConfig(64, 4),
                g0=TableConfig(256, 8, 128),
                g1=TableConfig(256, 12),
                meta=TableConfig(256, 10, 128),
                update_policy="partial")
        assert_equivalent(make, trace, make_provider)


class TestEGskewDifferential:
    @settings(max_examples=60, deadline=None)
    @given(entries_log2=st.integers(min_value=4, max_value=7),
           history=st.integers(min_value=0, max_value=12),
           g0_history=st.integers(min_value=0, max_value=12),
           policy=st.sampled_from(("partial", "total")),
           trace=random_traces())
    def test_random_config_random_trace(self, entries_log2, history,
                                        g0_history, policy, trace):
        def make():
            return EGskewPredictor(1 << entries_log2, history,
                                   g0_history_length=g0_history,
                                   update_policy=policy)
        assert_equivalent(make, trace, BranchGhistProvider)


def test_fuzz_budget_meets_acceptance_floor():
    """The default example budget exercises 200+ generated cases (the
    acceptance criterion); CI may override it explicitly but the default
    must not silently shrink."""
    if "REPRO_DIFF_FUZZ_EXAMPLES" not in os.environ:
        assert FUZZ_EXAMPLES >= 200


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-v"]))
