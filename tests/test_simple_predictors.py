"""Tests for bimodal, gshare and GAs."""

import pytest

from conftest import make_vector
from repro.predictors import BimodalPredictor, GAsPredictor, GsharePredictor


class TestBimodal:
    def test_learns_bias(self):
        predictor = BimodalPredictor(64)
        vector = make_vector(pc=0x1000)
        for _ in range(3):
            predictor.update(vector, True)
        assert predictor.predict(vector) is True
        # A different branch is unaffected.
        assert predictor.predict(make_vector(pc=0x1004)) is False

    def test_initial_prediction_not_taken(self):
        predictor = BimodalPredictor(64)
        assert predictor.predict(make_vector()) is False

    def test_hysteresis_needs_two_to_flip(self):
        predictor = BimodalPredictor(64)
        vector = make_vector()
        for _ in range(4):
            predictor.update(vector, True)  # strong taken
        predictor.update(vector, False)
        assert predictor.predict(vector) is True  # still taken (weak)
        predictor.update(vector, False)
        assert predictor.predict(vector) is False

    def test_ignores_history(self):
        predictor = BimodalPredictor(64)
        for _ in range(3):
            predictor.update(make_vector(history=0b1010), True)
        assert predictor.predict(make_vector(history=0b0101)) is True

    def test_aliasing_across_size(self):
        predictor = BimodalPredictor(16)
        # PC and PC + 16 instructions alias.
        for _ in range(3):
            predictor.update(make_vector(pc=0x1000), True)
        assert predictor.predict(make_vector(pc=0x1000 + 16 * 4)) is True

    def test_access_equals_predict_then_update(self):
        a = BimodalPredictor(64)
        b = BimodalPredictor(64)
        vector = make_vector()
        for taken in (True, True, False, True, False, False):
            via_access = a.access(vector, taken)
            expected = b.predict(vector)
            b.update(vector, taken)
            assert via_access == expected
        assert a.predict(vector) == b.predict(vector)

    def test_storage(self):
        assert BimodalPredictor(16 * 1024).storage_bits == 32 * 1024
        assert BimodalPredictor(16 * 1024, 8 * 1024).storage_bits == 24 * 1024
        assert BimodalPredictor(1024).storage_kbits == pytest.approx(2.0)


class TestGshare:
    def test_separates_contexts_for_one_branch(self):
        predictor = GsharePredictor(1024, 8)
        taken_ctx = make_vector(history=0b1111_0000)
        not_taken_ctx = make_vector(history=0b0000_1111)
        for _ in range(3):
            predictor.update(taken_ctx, True)
            predictor.update(not_taken_ctx, False)
        assert predictor.predict(taken_ctx) is True
        assert predictor.predict(not_taken_ctx) is False

    def test_validation(self):
        with pytest.raises(ValueError):
            GsharePredictor(1000, 8)
        with pytest.raises(ValueError):
            GsharePredictor(1024, -1)

    def test_zero_history_degenerates_to_bimodal(self):
        predictor = GsharePredictor(1024, 0)
        for _ in range(3):
            predictor.update(make_vector(history=0b101), True)
        assert predictor.predict(make_vector(history=0b010)) is True

    def test_name_default(self):
        assert GsharePredictor(1024 * 1024, 20).name == "gshare-1024K-h20"

    def test_storage(self):
        assert GsharePredictor(1 << 20, 20).storage_bits == 2 << 20


class TestGAs:
    def test_history_concatenated_not_hashed(self):
        predictor = GAsPredictor(1 << 10, 4)
        # Same PC, two histories differing only in high bits beyond the
        # 4-bit window -> same entry.
        a = make_vector(history=0b0001)
        b = make_vector(history=0b11_0001)
        for _ in range(3):
            predictor.update(a, True)
        assert predictor.predict(b) is True

    def test_history_window_separates(self):
        predictor = GAsPredictor(1 << 10, 4)
        a = make_vector(history=0b0001)
        b = make_vector(history=0b0010)
        for _ in range(3):
            predictor.update(a, True)
        assert predictor.predict(b) is False

    def test_history_length_bounded_by_index(self):
        with pytest.raises(ValueError):
            GAsPredictor(1 << 10, 11)

    def test_storage(self):
        assert GAsPredictor(1 << 12, 6).storage_bits == 2 << 12
