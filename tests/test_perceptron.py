"""Tests for the perceptron predictor (the paper's future-work backup)."""

import random

import pytest

from conftest import make_vector
from repro.predictors import PerceptronPredictor


class TestStructure:
    def test_validation(self):
        with pytest.raises(ValueError):
            PerceptronPredictor(100, 8)
        with pytest.raises(ValueError):
            PerceptronPredictor(128, 0)
        with pytest.raises(ValueError):
            PerceptronPredictor(128, 8, weight_bits=1)

    def test_default_threshold_formula(self):
        predictor = PerceptronPredictor(128, 20)
        assert predictor.threshold == int(1.93 * 20 + 14)

    def test_storage(self):
        predictor = PerceptronPredictor(256, 15, weight_bits=8)
        assert predictor.storage_bits == 256 * 16 * 8


class TestLearning:
    def test_learns_bias(self):
        predictor = PerceptronPredictor(64, 8)
        vector = make_vector()
        for _ in range(30):
            predictor.access(vector, True)
        assert predictor.predict(vector) is True

    def test_learns_single_history_bit_correlation(self):
        predictor = PerceptronPredictor(64, 8)
        rng = random.Random(9)
        correct_tail = 0
        for trial in range(400):
            history = rng.getrandbits(8)
            outcome = bool((history >> 3) & 1)
            vector = make_vector(history=history)
            if predictor.access(vector, outcome) == outcome and trial >= 200:
                correct_tail += 1
        assert correct_tail > 190  # near perfect

    def test_learns_parity_of_two_bits_is_hard(self):
        """XOR of history bits is linearly inseparable — the perceptron must
        NOT learn it (a known limitation from Jimenez & Lin)."""
        predictor = PerceptronPredictor(64, 8)
        rng = random.Random(10)
        correct_tail = 0
        for trial in range(600):
            history = rng.getrandbits(8)
            outcome = bool(((history >> 1) ^ (history >> 2)) & 1)
            vector = make_vector(history=history)
            if predictor.access(vector, outcome) == outcome and trial >= 300:
                correct_tail += 1
        assert correct_tail < 220  # ~chance level

    def test_weights_saturate(self):
        # A huge threshold keeps training active so weights must clamp at
        # the representable limit rather than growing without bound.
        predictor = PerceptronPredictor(16, 4, weight_bits=4, threshold=10**6)
        vector = make_vector(history=0b1111)
        for _ in range(200):
            predictor.access(vector, True)
        row = predictor._row(vector)
        limit = predictor.weight_limit
        assert all(-limit - 1 <= weight <= limit for weight in row)
        assert row[0] == limit  # bias saturated high

    def test_training_stops_beyond_threshold(self):
        predictor = PerceptronPredictor(16, 4, threshold=2)
        vector = make_vector(history=0)
        for _ in range(50):
            predictor.access(vector, True)
        bias_after_training = predictor._row(vector)[0]
        predictor.access(vector, True)
        assert predictor._row(vector)[0] == bias_after_training
