"""Cross-predictor functional learning tests: every predictor must capture
the behaviour classes it is designed for, and fail on the ones it cannot
represent.  These are the integration-level sanity checks behind the
experiment shapes."""

import pytest

from conftest import make_vector, simple_loop_trace
from repro.history.providers import BranchGhistProvider
from repro.predictors import (
    AgreePredictor,
    BiModePredictor,
    BimodalPredictor,
    EGskewPredictor,
    GAsPredictor,
    GsharePredictor,
    LocalPredictor,
    PerceptronPredictor,
    TableConfig,
    TournamentPredictor,
    TwoBcGskewPredictor,
    YagsPredictor,
)
from repro.sim.driver import simulate

ALL_GLOBAL_PREDICTORS = [
    ("bimodal", lambda: BimodalPredictor(1 << 12)),
    ("gshare", lambda: GsharePredictor(1 << 12, 8)),
    ("gas", lambda: GAsPredictor(1 << 12, 6)),
    ("egskew", lambda: EGskewPredictor(1 << 12, 8)),
    ("2bc-gskew", lambda: TwoBcGskewPredictor(
        TableConfig(1 << 12, 0), TableConfig(1 << 12, 8),
        TableConfig(1 << 12, 10), TableConfig(1 << 12, 9))),
    ("bimode", lambda: BiModePredictor(1 << 12, 1 << 10, 8)),
    ("yags", lambda: YagsPredictor(1 << 10, 1 << 10, 8)),
    ("agree", lambda: AgreePredictor(1 << 12, 1 << 10, 8)),
    ("local", lambda: LocalPredictor(256, 8, 1 << 12)),
    ("tournament", lambda: TournamentPredictor()),
    ("perceptron", lambda: PerceptronPredictor(256, 12)),
]


@pytest.mark.parametrize("name,factory", ALL_GLOBAL_PREDICTORS)
class TestUniversalProperties:
    def test_learns_always_taken(self, name, factory):
        trace = simple_loop_trace(iterations=400, taken_pattern=[True])
        result = simulate(factory(), trace)
        assert result.misprediction_rate < 0.05, name

    def test_learns_always_not_taken(self, name, factory):
        trace = simple_loop_trace(iterations=400, taken_pattern=[False])
        result = simulate(factory(), trace)
        assert result.misprediction_rate < 0.05, name

    def test_deterministic(self, name, factory):
        trace = simple_loop_trace(iterations=150,
                                  taken_pattern=[True, True, False])
        assert simulate(factory(), trace).mispredictions == \
            simulate(factory(), trace).mispredictions

    def test_storage_positive(self, name, factory):
        assert factory().storage_bits > 0


HISTORY_PREDICTORS = [(name, factory) for name, factory
                      in ALL_GLOBAL_PREDICTORS
                      if name not in ("bimodal", "agree")]


@pytest.mark.parametrize("name,factory", HISTORY_PREDICTORS)
def test_history_predictors_learn_short_pattern(name, factory):
    """A period-3 pattern is beyond a bimodal counter but trivially within
    any history-based scheme's reach."""
    trace = simple_loop_trace(iterations=600,
                              taken_pattern=[True, True, False])
    result = simulate(factory(), trace)
    assert result.misprediction_rate < 0.10, name


def test_bimodal_cannot_learn_alternation():
    trace = simple_loop_trace(iterations=400, taken_pattern=[True, False])
    result = simulate(BimodalPredictor(1 << 12), trace)
    assert result.misprediction_rate > 0.4


def test_gshare_beats_bimodal_on_correlated_workload():
    from repro.workloads.spec95 import spec95_trace
    trace = spec95_trace("m88ksim", 40_000)
    gshare = simulate(GsharePredictor(1 << 16, 10), trace)
    bimodal = simulate(BimodalPredictor(1 << 16), trace)
    assert gshare.mispredictions < bimodal.mispredictions * 0.8


def test_dealiased_beats_gshare_at_equal_budget(gcc_trace):
    """The motivation for the de-aliased schemes (Section 4): at equal
    budget, e-gskew/2Bc-gskew beat plain gshare."""
    budget_gshare = GsharePredictor(1 << 15, 12)        # 64 Kbit
    egskew = EGskewPredictor(1 << 13, 12)               # 48 Kbit (less!)
    g = simulate(budget_gshare, gcc_trace)
    e = simulate(egskew, gcc_trace)
    assert e.mispredictions < g.mispredictions * 1.05


def test_2bc_gskew_beats_its_own_egskew(gcc_trace):
    """Adding the bimodal chooser must not hurt (the hybrid argument of
    Section 4)."""
    two_bc = TwoBcGskewPredictor(
        TableConfig(1 << 14, 0), TableConfig(1 << 14, 10),
        TableConfig(1 << 14, 14), TableConfig(1 << 14, 12))
    egskew = EGskewPredictor(1 << 14, 14, g0_history_length=10)
    hybrid = simulate(two_bc, gcc_trace)
    plain = simulate(egskew, gcc_trace)
    assert hybrid.mispredictions <= plain.mispredictions * 1.05


def test_longer_history_helps_on_deep_correlation():
    """A branch correlated at lag 12 is invisible to 8-bit history."""
    import numpy as np
    from repro.workloads.behaviors import (
        BiasedBehavior, GlobalCorrelatedBehavior, LoopBehavior)
    from repro.workloads.cfg import (
        DispatchNode, Function, IfNode, LoopNode, Sequence, StaticBranch,
        Straight)
    from repro.workloads.cfg import Program

    rng = np.random.default_rng(11)
    # Per iteration: one random branch, nine constant padding branches, then
    # a branch that copies the random outcome (lag 10).  An 8-bit history
    # window sees only constant padding — the copy looks random; a >=10-bit
    # window contains the random bit — the copy becomes deterministic.
    random_branch = IfNode(StaticBranch(0, BiasedBehavior(rng, 0.5)),
                           Straight(1), lead=1)
    padding = [
        IfNode(StaticBranch(i + 1, BiasedBehavior(rng, 1.0)), Straight(1),
               lead=1)
        for i in range(9)]
    copy_branch = IfNode(
        StaticBranch(90, GlobalCorrelatedBehavior(rng, [10])),
        Straight(1), lead=1)
    body = Sequence([random_branch] + padding + [copy_branch])
    loop = LoopNode(StaticBranch(91, LoopBehavior(rng, 1_000_000)), body)
    function = Function("f", loop)
    program = Program("deep", [function],
                      DispatchNode(rng, [function], np.array([[1.0]])),
                      code_base=0x1000)
    trace = program.run(26000)
    short = simulate(GsharePredictor(1 << 16, 8), trace)
    long = simulate(GsharePredictor(1 << 16, 12), trace)
    assert long.mispredictions < short.mispredictions * 0.7
