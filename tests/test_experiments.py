"""Smoke tests for the experiment modules (full-scale runs live in
``benchmarks/``)."""

import json

import pytest

from repro.experiments import common, report, table2, table3
from repro.experiments.common import (
    BEST_HISTORY,
    experiment_traces,
    make_2bc_gskew,
    make_fig5_configs,
    record_results,
)

SMOKE_BRANCHES = 4000


@pytest.fixture(autouse=True)
def isolated_results(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    return tmp_path


class TestCommon:
    def test_experiment_traces(self):
        traces = experiment_traces(SMOKE_BRANCHES, benchmarks=("li", "perl"))
        assert set(traces) == {"li", "perl"}
        assert traces["li"].conditional_count == SMOKE_BRANCHES

    def test_fig5_configs_complete_and_sized(self):
        configs = make_fig5_configs()
        assert list(configs) == [
            "2Bc-gskew-256Kb", "2Bc-gskew-512Kb", "bimode-544Kb",
            "gshare-2Mb", "YAGS-288Kb", "YAGS-576Kb"]
        built = {name: factory() for name, factory in configs.items()}
        assert built["2Bc-gskew-256Kb"].storage_kbits == pytest.approx(256)
        assert built["2Bc-gskew-512Kb"].storage_kbits == pytest.approx(512)
        assert built["bimode-544Kb"].storage_kbits == pytest.approx(544)
        assert built["gshare-2Mb"].storage_kbits == pytest.approx(2048)
        # YAGS budgets include tags+valid: the paper counts 288/576 Kbit for
        # the counter+tag arrays; ours adds the valid bit.
        assert built["YAGS-288Kb"].storage_kbits == pytest.approx(288, rel=0.15)
        assert built["YAGS-576Kb"].storage_kbits == pytest.approx(576, rel=0.15)

    def test_limited_configs_use_log2_history(self):
        configs = make_fig5_configs(limited=True)
        gshare = configs["gshare-2Mb"]()
        assert gshare.history_length == 20  # log2(1M entries)

    def test_best_history_longer_than_log2_for_2bc(self):
        # The paper's Section 5.3 finding, preserved by our calibration:
        # G1's best history length exceeds log2(table entries) for both
        # 2Bc-gskew sizes (21 bits on 15/16-bit indices).
        for key, index_bits in (("2bc_32k", 15), ("2bc_64k", 16)):
            g0, g1, meta = BEST_HISTORY[key]
            assert g1 > index_bits, (key, g1)

    def test_make_2bc_gskew_overrides(self):
        predictor = make_2bc_gskew(1 << 14, 10, 14, 12,
                                   bim_entries=1 << 12,
                                   g0_hysteresis=1 << 13)
        sizes = predictor.table_sizes()
        assert sizes["BIM"] == (4096, 4096)
        assert sizes["G0"] == (16384, 8192)

    def test_record_results(self, isolated_results):
        path = record_results("unit", {"a": 1})
        assert json.loads(path.read_text()) == {"a": 1}
        assert path.parent == isolated_results


class TestReport:
    def test_render_table(self):
        text = report.render_table(
            "T", ["b1", "b2"],
            {"cfgA": {"b1": 1.0, "b2": 3.0}, "cfgB": {"b1": 2.0, "b2": 2.0}})
        assert "cfgA" in text and "amean" in text
        # Mean row correct: cfgA mean 2.0.
        mean_line = text.splitlines()[-1]
        assert "2.000" in mean_line

    def test_render_delta_table(self):
        base = {"c": {"b": 1.0}}
        other = {"c": {"b": 1.5}}
        text = report.render_delta_table("D", ["b"], base, other)
        assert "0.500" in text


class TestTableExperiments:
    def test_table2_runs_and_renders(self):
        result = table2.run(SMOKE_BRANCHES)
        rows = result.rows()
        assert len(rows) == 8
        rendered = table2.render(result)
        assert "compress" in rendered and "paper" in rendered.lower()

    def test_table3_runs_and_renders(self):
        result = table3.run(SMOKE_BRANCHES)
        assert set(result.ratios) == set(table3.PAPER_TABLE3)
        assert all(ratio >= 1.0 for ratio in result.ratios.values())
        assert result.mean() > 1.0
        assert "lghist" in table3.render(result)


class TestFigureExperimentsSmoke:
    """One tiny-trace run per figure module: full-scale shape assertions
    live in benchmarks/."""

    def test_fig7_structure(self):
        from repro.experiments import fig7
        table = fig7.run(SMOKE_BRANCHES)
        assert list(table.config_names) == list(fig7.CONFIG_ORDER)
        assert len(table.benchmark_names) == 8
        assert all(table.misp_per_ki(c, b) > 0
                   for c in table.config_names
                   for b in table.benchmark_names)
        assert "Fig 7" in fig7.render(table)

    def test_fig8_structure(self):
        from repro.experiments import fig8
        table = fig8.run(SMOKE_BRANCHES)
        assert "EV8 size (352Kb)" in table.config_names
        assert "Fig 8" in fig8.render(table)

    @pytest.mark.slow
    def test_fig9_structure(self):
        from repro.experiments import fig9
        table = fig9.run(SMOKE_BRANCHES)
        assert list(table.config_names) == list(fig9.CONFIG_ORDER)
        assert "Fig 9" in fig9.render(table)
