"""Tests for information-word construction and gshare indexing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.indexing.fold import PC_FIELD_BITS, gshare_index, info_word


class TestInfoWord:
    def test_pure_address_hash_when_no_history(self):
        assert info_word(0x1000, 0xFFFF, 0, 16) == info_word(0x1000, 0, 0, 16)

    def test_history_changes_word(self):
        with_history = info_word(0x1000, 0b1011, 4, 16)
        without = info_word(0x1000, 0, 4, 16)
        assert with_history != without

    def test_history_masked_to_length(self):
        a = info_word(0x1000, 0b1111_0011, 4, 16)
        b = info_word(0x1000, 0b0000_0011, 4, 16)
        assert a == b

    def test_path_field(self):
        with_path = info_word(0x1000, 0b1, 1, 16, path=0x3F, path_bits=6)
        without = info_word(0x1000, 0b1, 1, 16)
        assert with_path != without
        # Zero path bits means the path argument is ignored.
        assert info_word(0x1000, 0b1, 1, 16, path=0x3F) == without

    def test_validation(self):
        with pytest.raises(ValueError):
            info_word(0, 0, -1, 16)
        with pytest.raises(ValueError):
            info_word(0, 0, 0, 0)

    @given(st.integers(0, 2**30), st.integers(0, 2**40), st.integers(0, 40),
           st.integers(1, 24))
    def test_fits_width(self, pc, history, history_length, width):
        assert 0 <= info_word(pc, history, history_length, width) < (1 << width)

    def test_pc_bits_beyond_field_ignored(self):
        low = info_word(0x1000, 0, 0, 16)
        high = info_word(0x1000 + (1 << (PC_FIELD_BITS + 2)), 0, 0, 16)
        assert low == high


class TestGshareIndex:
    def test_zero_history_is_pc(self):
        assert gshare_index(0x40, 0b1111, 0, 10) == 0x10

    def test_short_history_aligned_to_msbs(self):
        # history length 2, width 8: history occupies bits 7..6.
        index = gshare_index(0x0, 0b11, 2, 8)
        assert index == 0b1100_0000

    def test_long_history_folded(self):
        index = gshare_index(0x0, (1 << 12) | 1, 16, 8)
        # fold of 0b1_0000_0000_0001 over 8 bits: 0b0001_0000 ^ 0b0000_0001.
        assert index == 0b0001_0001

    def test_full_length_history_xors_pc(self):
        assert gshare_index(0xFF << 2, 0xFF, 8, 8) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            gshare_index(0, 0, 4, 0)

    @given(st.integers(0, 2**30), st.integers(0, 2**40), st.integers(0, 40),
           st.integers(1, 24))
    def test_fits_width(self, pc, history, history_length, width):
        assert 0 <= gshare_index(pc, history, history_length, width) < (1 << width)
