"""Tests for the skewed-indexing function family (Seznec-Bodin)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexing.skew import (
    SKEW_FUNCTION_COUNT,
    h_function,
    h_inverse,
    skew_index,
)

widths = st.integers(min_value=2, max_value=24)


class TestHFunction:
    def test_known_values(self):
        # H on 4 bits: 0b1000 -> shift left (drops to 0b0000) with feedback
        # bit x3^x2 = 1.
        assert h_function(0b1000, 4) == 0b0001
        assert h_function(0b0100, 4) == 0b1001
        assert h_function(0b0001, 4) == 0b0010

    def test_rejects_width_below_two(self):
        with pytest.raises(ValueError):
            h_function(1, 1)
        with pytest.raises(ValueError):
            h_inverse(1, 0)

    @given(widths)
    @settings(max_examples=20, deadline=None)
    def test_bijective_exhaustive_small(self, width):
        width = min(width, 12)
        images = {h_function(x, width) for x in range(1 << width)}
        assert len(images) == 1 << width

    @given(st.integers(0, 2**24 - 1), widths)
    def test_inverse_round_trip(self, value, width):
        value &= (1 << width) - 1
        assert h_inverse(h_function(value, width), width) == value
        assert h_function(h_inverse(value, width), width) == value

    def test_h_is_not_identity(self):
        differing = sum(1 for x in range(256) if h_function(x, 8) != x)
        assert differing > 250


class TestSkewIndex:
    def test_rank_validation(self):
        with pytest.raises(ValueError):
            skew_index(4, 0, 8)
        with pytest.raises(ValueError):
            skew_index(-1, 0, 8)

    @given(st.integers(0, 2**32 - 1), st.integers(2, 16))
    def test_result_in_range(self, info, width):
        for rank in range(SKEW_FUNCTION_COUNT):
            assert 0 <= skew_index(rank, info, width) < (1 << width)

    def test_functions_differ(self):
        # The four functions must disagree on most inputs — that is the
        # whole point of skewing.
        width = 10
        info_values = range(0, 4096, 7)
        for rank_a in range(SKEW_FUNCTION_COUNT):
            for rank_b in range(rank_a + 1, SKEW_FUNCTION_COUNT):
                agreements = sum(
                    1 for info in info_values
                    if skew_index(rank_a, info, width)
                    == skew_index(rank_b, info, width))
                assert agreements < len(list(info_values)) * 0.2

    def test_interbank_dispersion(self):
        """Two information words colliding in one bank should rarely collide
        in another (the property Section 7.2 cites from [17])."""
        width = 8
        pairs_checked = 0
        double_collisions = 0
        words = list(range(0, 1 << 16, 251))
        buckets: dict[int, list[int]] = {}
        for word in words:
            buckets.setdefault(skew_index(0, word, width), []).append(word)
        for bucket in buckets.values():
            for i in range(len(bucket)):
                for j in range(i + 1, len(bucket)):
                    pairs_checked += 1
                    if (skew_index(1, bucket[i], width)
                            == skew_index(1, bucket[j], width)):
                        double_collisions += 1
        assert pairs_checked > 50  # the test is meaningful
        # Random chance of a second collision is 1/256; allow generous slack.
        assert double_collisions <= pairs_checked * 0.05

    def test_single_bit_flip_changes_index(self):
        width = 12
        base = 0b1010_1100_0011_0101_1001_0110
        for rank in range(SKEW_FUNCTION_COUNT):
            reference = skew_index(rank, base, width)
            changed = sum(
                1 for bit in range(2 * width)
                if skew_index(rank, base ^ (1 << bit), width) != reference)
            # Every input bit must influence the index.
            assert changed == 2 * width
