"""Tests for the de-aliased schemes: bi-mode, YAGS, agree."""

import pytest

from conftest import make_vector
from repro.predictors import AgreePredictor, BiModePredictor, YagsPredictor


class TestBiMode:
    def test_validation(self):
        with pytest.raises(ValueError):
            BiModePredictor(1000, 256, 8)
        with pytest.raises(ValueError):
            BiModePredictor(1024, 1000, 8)

    def test_storage_matches_paper_config(self):
        predictor = BiModePredictor(128 * 1024, 16 * 1024, 20)
        assert predictor.storage_kbits == pytest.approx(544.0)

    def test_choice_streams_branches(self):
        predictor = BiModePredictor(1024, 256, 6)
        vector = make_vector(pc=0x1000)
        for _ in range(4):
            predictor.access(vector, True)
        assert predictor.predict(vector) is True

    def test_direction_tables_start_opposite(self):
        predictor = BiModePredictor(1024, 256, 6)
        # The taken table initialises taken; not-taken table not-taken, so a
        # fresh branch follows its choice-table stream immediately.
        taken_vector = make_vector(pc=0x1000)
        predictor.choice.set_counter((0x1000 >> 2) & 255, 3)
        assert predictor.predict(taken_vector) is True

    def test_unselected_table_untouched(self):
        predictor = BiModePredictor(1024, 256, 6)
        vector = make_vector(pc=0x1000, history=0b101)
        # Choice starts not-taken: the not-taken table trains.
        predictor.access(vector, False)
        direction_index = predictor._indices(vector)[1]
        assert predictor.taken_table.counter_value(direction_index) == 2
        # ^ untouched initial weak-taken state

    def test_choice_preserved_when_direction_corrects_it(self):
        predictor = BiModePredictor(1024, 256, 6)
        vector = make_vector(pc=0x1000)
        choice_index = (0x1000 >> 2) & 255
        direction_index = predictor._indices(vector)[1]
        # Choice says not-taken, but the not-taken stream table has learned
        # this context is (exceptionally) taken.
        predictor.not_taken_table.set_counter(direction_index, 3)
        before = predictor.choice.counter_value(choice_index)
        assert predictor.access(vector, True) is True
        # The choice disagreed with the outcome, but the direction table was
        # right -> choice not updated.
        assert predictor.choice.counter_value(choice_index) == before

    def test_opposite_bias_branches_do_not_destroy_each_other(self):
        """The de-aliasing property: a taken-biased and a not-taken-biased
        branch mapping to the same direction-table index interfere less than
        in gshare because they live in different stream tables."""
        predictor = BiModePredictor(256, 1024, 0)
        taken_branch = make_vector(pc=0x1000)
        # Same direction index (history 0, aliasing pcs), different choice
        # entries.
        not_taken_branch = make_vector(pc=0x1000 + 256 * 4)
        for _ in range(6):
            predictor.access(taken_branch, True)
            predictor.access(not_taken_branch, False)
        assert predictor.predict(taken_branch) is True
        assert predictor.predict(not_taken_branch) is False


class TestYags:
    def test_validation(self):
        with pytest.raises(ValueError):
            YagsPredictor(1000, 256, 8)
        with pytest.raises(ValueError):
            YagsPredictor(1024, 256, 8, tag_bits=0)

    def test_storage_matches_paper_config(self):
        # 16K choice (2b) + 2 x 16K caches of (2b counter + 6b tag + valid).
        predictor = YagsPredictor(16 * 1024, 16 * 1024, 23, tag_bits=6)
        expected = (16 * 1024 * 2) + 2 * (16 * 1024 * (2 + 6 + 1))
        assert predictor.storage_bits == expected

    def test_bimodal_used_on_cache_miss(self):
        predictor = YagsPredictor(256, 256, 4)
        vector = make_vector(pc=0x1000)
        predictor.choice.set_counter((0x1000 >> 2) & 255, 3)
        assert predictor.predict(vector) is True  # no exception cached

    def test_exception_allocated_on_choice_misprediction(self):
        predictor = YagsPredictor(256, 256, 4)
        vector = make_vector(pc=0x1000, history=0b1011)
        # Train the bias taken.
        for _ in range(3):
            predictor.access(vector, True)
        # Now this context becomes not-taken: first miss allocates into the
        # not-taken cache...
        predictor.access(vector, False)
        # ...and the prediction for the context flips without destroying
        # the bias for other contexts.
        assert predictor.predict(vector) is False
        other = make_vector(pc=0x1000, history=0b0100)
        assert predictor.predict(other) is True

    def test_tag_mismatch_is_a_miss(self):
        predictor = YagsPredictor(256, 256, 4, tag_bits=6)
        # Engineered collision: both vectors map to cache index 0, but with
        # different 6-bit tags (index = pc_low8 XOR history<<4; tag =
        # pc_low6).
        a = make_vector(pc=0x1000, history=0)       # index 0, tag 0
        b = make_vector(pc=0xC0, history=0b0011)    # index 0, tag 0x30
        for _ in range(3):
            predictor.access(a, True)
        predictor.access(a, False)  # allocate exception for a (tag 0)
        # b misses on tag and falls back to its bimodal bias.
        assert predictor.predict(b) == predictor.choice.predict(
            (b.branch_pc >> 2) & 255)

    def test_choice_preserved_when_cache_corrects_it(self):
        predictor = YagsPredictor(256, 256, 4)
        vector = make_vector(pc=0x1000, history=0b1111)
        for _ in range(3):
            predictor.access(vector, True)   # bias taken
        predictor.access(vector, False)      # allocate exception
        choice_index = (0x1000 >> 2) & 255
        before = predictor.choice.counter_value(choice_index)
        predictor.access(vector, False)      # cache hit, correct
        assert predictor.choice.counter_value(choice_index) == before


class TestAgree:
    def test_validation(self):
        with pytest.raises(ValueError):
            AgreePredictor(1000, 256, 8)

    def test_first_outcome_becomes_bias(self):
        predictor = AgreePredictor(256, 256, 4)
        vector = make_vector(pc=0x1000)
        predictor.access(vector, True)
        assert predictor.predict(vector) is True

    def test_agreement_encoding_dealiases(self):
        """Two opposite-bias branches sharing an agree entry reinforce each
        other as long as both follow their own bias."""
        predictor = AgreePredictor(64, 1024, 0)
        taken_branch = make_vector(pc=0x1000)
        not_taken_branch = make_vector(pc=0x1000 + 64 * 4)  # same agree entry
        predictor.access(taken_branch, True)      # bias: taken
        predictor.access(not_taken_branch, False)  # bias: not-taken
        for _ in range(5):
            predictor.access(taken_branch, True)
            predictor.access(not_taken_branch, False)
        assert predictor.predict(taken_branch) is True
        assert predictor.predict(not_taken_branch) is False

    def test_disagree_learned(self):
        predictor = AgreePredictor(256, 256, 4)
        vector = make_vector(pc=0x1000, history=0b1010)
        predictor.access(vector, True)  # bias taken
        for _ in range(3):
            predictor.access(vector, False)  # this context disagrees
        assert predictor.predict(vector) is False

    def test_storage(self):
        predictor = AgreePredictor(1 << 12, 1 << 10, 8)
        assert predictor.storage_bits == (2 << 12) + 2 * (1 << 10)
