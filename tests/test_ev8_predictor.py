"""Tests for the integrated EV8 predictor."""

import pytest

from conftest import make_vector
from repro.ev8.config import EV8Config
from repro.ev8.predictor import EV8BranchPredictor
from repro.history.providers import ev8_info_provider
from repro.predictors.twobcgskew import TableConfig
from repro.sim.driver import simulate


class TestConstruction:
    def test_default_is_table1(self):
        predictor = EV8BranchPredictor()
        assert predictor.storage_bits == 352 * 1024
        sizes = predictor.table_sizes()
        assert sizes["BIM"] == (16 * 1024, 16 * 1024)
        assert sizes["G0"] == (64 * 1024, 32 * 1024)
        assert sizes["G1"] == (64 * 1024, 64 * 1024)
        assert sizes["Meta"] == (64 * 1024, 32 * 1024)

    def test_invalid_config_rejected(self):
        config = EV8Config(g0=TableConfig(32 * 1024, 13))
        with pytest.raises(ValueError):
            EV8BranchPredictor(config)

    def test_make_provider(self):
        provider = EV8BranchPredictor.make_provider()
        assert provider._lghist.delay_blocks == 3
        assert provider._lghist.include_path is True


class TestPhysicalViews:
    def test_physical_location(self):
        predictor = EV8BranchPredictor()
        vector = make_vector(pc=0x1008, history=0xABC, bank=2,
                             path=(0x40, 0x80, 0xC0))
        bank, offset, line, column = predictor.physical_location(vector, "G1")
        assert bank == 2
        assert 0 <= offset < 8
        assert 0 <= line < 64
        assert 0 <= column < 32
        bim = predictor.physical_location(vector, "BIM")
        assert 0 <= bim[3] < 8  # BIM has 3 column bits

    def test_physical_location_validates_table(self):
        predictor = EV8BranchPredictor()
        with pytest.raises(ValueError):
            predictor.physical_location(make_vector(), "L2")

    def test_predict_block_single_access(self):
        predictor = EV8BranchPredictor()
        base = dict(history=0x123, address=0x2000,
                    path=(0x40, 0x80, 0xC0), bank=1)
        vectors = [make_vector(pc=0x2000 + 4 * slot, **base)
                   for slot in range(8)]
        predictions = predictor.predict_block(vectors)
        assert len(predictions) == 8
        assert predictor.predict_block([]) == []

    def test_predict_block_rejects_mixed_blocks(self):
        predictor = EV8BranchPredictor()
        a = make_vector(pc=0x2000, history=0x123, address=0x2000, bank=1)
        b = make_vector(pc=0x9000, history=0x456, address=0x9000, bank=2)
        with pytest.raises(ValueError, match="single fetch block"):
            predictor.predict_block([a, b])


class TestAccuracy:
    def test_learns_biased_branch(self):
        predictor = EV8BranchPredictor()
        vector = make_vector(pc=0x1000, history=0x1F, bank=1)
        for _ in range(4):
            predictor.access(vector, True)
        assert predictor.predict(vector) is True

    def test_end_to_end_beats_bimodal(self):
        """The full EV8 must beat a same-budget bimodal table on a
        correlation-rich workload once its large tables have warmed (the
        352 Kbit predictor needs a few tens of thousands of branches)."""
        from repro.predictors import BimodalPredictor
        from repro.workloads.spec95 import spec95_trace
        trace = spec95_trace("gcc", 60_000)
        ev8 = simulate(EV8BranchPredictor(), trace, ev8_info_provider())
        bimodal = simulate(BimodalPredictor(128 * 1024), trace)
        assert ev8.mispredictions < bimodal.mispredictions * 0.92

    def test_reasonable_accuracy_on_predictable_workload(self, vortex_trace):
        result = simulate(EV8BranchPredictor(), vortex_trace,
                          ev8_info_provider())
        assert result.misprediction_rate < 0.10

    def test_deterministic(self, compress_trace):
        a = simulate(EV8BranchPredictor(), compress_trace,
                     ev8_info_provider())
        b = simulate(EV8BranchPredictor(), compress_trace,
                     ev8_info_provider())
        assert a.mispredictions == b.mispredictions
