"""Tests for the synthetic program CFG: layout and execution invariants."""

import numpy as np
import pytest

from repro.traces.model import INSTRUCTION_BYTES, TerminatorKind
from repro.workloads.behaviors import BiasedBehavior, LoopBehavior, PatternBehavior
from repro.workloads.cfg import (
    CallNode,
    DispatchNode,
    Function,
    IfNode,
    LoopNode,
    Program,
    Sequence,
    StaticBranch,
    Straight,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def build_program(rng, body_factory, name="prog"):
    """Wrap a body in a single function driven by a self-returning dispatch
    (a bare CallNode as main would break address continuity across run()
    iterations — callees return to the call site, and only DispatchNode
    closes that loop)."""
    function = Function("f0", body_factory())
    dispatch = DispatchNode(rng, [function], np.array([[1.0]]))
    return Program(name, [function], dispatch, code_base=0x1000)


def check_contiguity(trace):
    """Every block must start where the previous block said execution goes."""
    previous = None
    for block in trace.blocks():
        if previous is not None:
            if previous.kind == TerminatorKind.FALLTHROUGH:
                assert block.start == previous.end
            else:
                assert block.start == previous.next_start
        previous = block


class TestLayout:
    def test_straight_layout(self):
        node = Straight(5)
        assert node.layout(0x100) == 0x100 + 5 * INSTRUCTION_BYTES
        assert node.start == 0x100

    def test_straight_rejects_negative(self):
        with pytest.raises(ValueError):
            Straight(-1)

    def test_if_layout_assigns_branch_pc(self, rng):
        branch = StaticBranch(0, BiasedBehavior(rng, 0.0))
        node = IfNode(branch, Straight(2), lead=3)
        end = node.layout(0x1000)
        assert branch.pc == 0x1000 + 3 * INSTRUCTION_BYTES
        assert end == branch.pc + INSTRUCTION_BYTES + 2 * INSTRUCTION_BYTES

    def test_loop_layout_branch_at_bottom(self, rng):
        branch = StaticBranch(0, LoopBehavior(rng, 3))
        node = LoopNode(branch, Straight(4), lead=2)
        end = node.layout(0x2000)
        assert branch.pc == 0x2000 + (4 + 1) * INSTRUCTION_BYTES
        assert end == branch.pc + INSTRUCTION_BYTES

    def test_loop_rejects_zero_lead(self, rng):
        branch = StaticBranch(0, LoopBehavior(rng, 3))
        with pytest.raises(ValueError):
            LoopNode(branch, Straight(1), lead=0)

    def test_program_rejects_misaligned_base(self, rng):
        function = Function("f", Straight(1))
        with pytest.raises(ValueError):
            Program("p", [function], CallNode(function), code_base=0x1002)

    def test_functions_do_not_overlap(self, rng):
        f0 = Function("f0", Straight(10))
        f1 = Function("f1", Straight(3))
        dispatch = DispatchNode(rng, [f0, f1],
                                np.array([[0.5, 0.5], [0.5, 0.5]]))
        program = Program("p", [f0, f1], dispatch, code_base=0x1000)
        assert f1.entry >= f0.entry + 11 * INSTRUCTION_BYTES
        assert program.code_end > f1.entry


class TestExecution:
    def test_if_not_taken_runs_then_body(self, rng):
        branch = StaticBranch(0, BiasedBehavior(rng, 0.0))  # never taken
        program = build_program(
            rng, lambda: Sequence([IfNode(branch, Straight(2), lead=1)]))
        trace = program.run(3)
        check_contiguity(trace)
        kinds = [b.kind for b in trace.blocks()]
        # dispatch jump, cond block, then-body, handler-exit jump, (repeat)
        assert TerminatorKind.FALLTHROUGH in kinds
        assert TerminatorKind.JUMP in kinds
        pcs, outcomes = trace.branches()
        assert not any(outcomes)

    def test_if_taken_skips_then_body(self, rng):
        branch = StaticBranch(0, BiasedBehavior(rng, 1.0))  # always taken
        program = build_program(
            rng, lambda: Sequence([IfNode(branch, Straight(2), lead=1)]))
        trace = program.run(3)
        check_contiguity(trace)
        # The then-body must never execute: no FALLTHROUGH block at its addr.
        then_starts = {b.start for b in trace.blocks()
                       if b.kind == TerminatorKind.FALLTHROUGH}
        assert branch.pc + INSTRUCTION_BYTES not in then_starts

    def test_if_else_emits_jump_over_else(self, rng):
        branch = StaticBranch(0, BiasedBehavior(rng, 0.0))
        node = IfNode(branch, Straight(2), Straight(3), lead=1)
        program = build_program(rng, lambda: Sequence([node]))
        trace = program.run(2)
        check_contiguity(trace)

    def test_loop_iterates_trip_count(self, rng):
        branch = StaticBranch(0, LoopBehavior(rng, 4))
        program = build_program(
            rng, lambda: LoopNode(branch, Straight(2), lead=1))
        trace = program.run(8)
        pcs, outcomes = trace.branches()
        # taken x3 then not-taken, repeating.
        assert outcomes[:4] == [True, True, True, False]
        check_contiguity(trace)

    def test_pattern_behavior_in_if(self, rng):
        branch = StaticBranch(0, PatternBehavior(rng, "10"))
        program = build_program(
            rng, lambda: Sequence([IfNode(branch, Straight(1), lead=1)]))
        trace = program.run(6)
        _, outcomes = trace.branches()
        assert outcomes == [True, False, True, False, True, False]

    def test_nested_call_returns_to_call_site(self, rng):
        inner = Function("inner", Straight(2))
        outer_body = Sequence([Straight(1), CallNode(inner), Straight(1)])
        outer = Function("outer", outer_body)
        # A conditional somewhere so run() terminates on branch count.
        branch = StaticBranch(0, BiasedBehavior(rng, 0.5))
        main_fn = Function("main", Sequence(
            [CallNode(outer), IfNode(branch, Straight(1), lead=1)]))
        dispatch = DispatchNode(rng, [main_fn], np.array([[1.0]]))
        program = Program("p", [inner, outer, main_fn], dispatch,
                          code_base=0x4000)
        trace = program.run(4)
        check_contiguity(trace)

    def test_dispatch_follows_markov_chain(self, rng):
        f0 = Function("f0", Straight(2))
        f1 = Function("f1", Straight(2))
        branch = StaticBranch(0, BiasedBehavior(rng, 0.5))
        f2 = Function("f2", IfNode(branch, Straight(1), lead=1))
        functions = [f0, f1, f2]
        # Deterministic cycle f0 -> f1 -> f2 -> f0.
        transition = np.array([[0, 1, 0], [0, 0, 1], [1, 0, 0]], dtype=float)
        dispatch = DispatchNode(rng, functions, transition)
        program = Program("p", functions, dispatch, code_base=0x8000)
        trace = program.run(3)
        check_contiguity(trace)
        entries = [b.next_start for b in trace.blocks()
                   if b.kind == TerminatorKind.JUMP
                   and b.next_start in {f.entry for f in functions}]
        assert entries[:3] == [f0.entry, f1.entry, f2.entry]

    def test_dispatch_validates_matrix(self, rng):
        f0 = Function("f0", Straight(1))
        with pytest.raises(ValueError):
            DispatchNode(rng, [f0], np.array([[0.5]]))
        with pytest.raises(ValueError):
            DispatchNode(rng, [], np.zeros((0, 0)))

    def test_run_stops_at_branch_budget(self, rng):
        branch = StaticBranch(0, BiasedBehavior(rng, 0.5))
        program = build_program(
            rng, lambda: Sequence([IfNode(branch, Straight(1), lead=1)]))
        trace = program.run(25)
        assert trace.conditional_count == 25

    def test_run_stops_at_block_budget(self, rng):
        program = build_program(rng, lambda: Straight(2))
        # No conditionals at all: only the block cap terminates execution.
        trace = program.run(10, max_blocks=50)
        assert len(trace) == 50

    def test_unresolved_branch_detection(self, rng):
        # A branch that is never laid out must be caught at construction.
        branch = StaticBranch(0, BiasedBehavior(rng, 0.5))

        class Broken(Straight):
            def static_branches(self):
                yield branch

        function = Function("f", Broken(1))
        dispatch = DispatchNode(rng, [function], np.array([[1.0]]))
        with pytest.raises(RuntimeError, match="without addresses"):
            Program("p", [function], dispatch, code_base=0x1000)


class TestHistoryVisibility:
    def test_executor_history_matches_outcome_stream(self, rng):
        from repro.workloads.cfg import Executor

        branch = StaticBranch(0, PatternBehavior(rng, "1101"))
        program = build_program(
            rng, lambda: Sequence([IfNode(branch, Straight(1), lead=1)]))
        trace = program.run(8)
        _, outcomes = trace.branches()
        # Recompute what the architectural history should be.
        expected = 0
        for taken in outcomes:
            expected = (expected << 1) | int(taken)
        # The recorded trace outcomes equal the pattern stream.
        assert outcomes == [True, True, False, True] * 2


class TestCallReturnKinds:
    def test_call_node_emits_call_and_return(self, rng):
        inner = Function("inner", Straight(2))
        main_fn = Function("main", Sequence(
            [CallNode(inner),
             IfNode(StaticBranch(0, BiasedBehavior(rng, 0.5)), Straight(1),
                    lead=1)]))
        dispatch = DispatchNode(rng, [main_fn], np.array([[1.0]]))
        program = Program("p", [inner, main_fn], dispatch, code_base=0x4000)
        trace = program.run(4)
        kinds = [b.kind for b in trace.blocks()]
        # The explicit CallNode produces a CALL and its callee a RETURN;
        # the dispatch itself is threaded (JUMP in, JUMP out).
        assert TerminatorKind.CALL in kinds
        assert TerminatorKind.RETURN in kinds
        assert TerminatorKind.JUMP in kinds

    def test_return_targets_call_fallthrough(self, rng):
        inner = Function("inner", Straight(2))
        call = CallNode(inner)
        main_fn = Function("main", Sequence(
            [call, IfNode(StaticBranch(0, BiasedBehavior(rng, 0.5)),
                          Straight(1), lead=1)]))
        dispatch = DispatchNode(rng, [main_fn], np.array([[1.0]]))
        Program("p", [inner, main_fn], dispatch, code_base=0x4000)
        program = Program("p", [inner, main_fn], dispatch, code_base=0x4000)
        trace = program.run(2)
        returns = [b for b in trace.blocks()
                   if b.kind == TerminatorKind.RETURN]
        assert returns
        from repro.traces.model import INSTRUCTION_BYTES
        assert all(b.next_start == call.start + INSTRUCTION_BYTES
                   for b in returns)
