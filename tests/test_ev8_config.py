"""Tests for the EV8 configuration (Table 1)."""

import pytest

from repro.ev8.config import EV8_CONFIG, TABLE1, EV8Config
from repro.predictors.twobcgskew import TableConfig


class TestTable1:
    def test_budget_totals(self):
        """Table 1 must sum to the paper's stated 208 + 144 = 352 Kbits."""
        assert EV8_CONFIG.prediction_bits == 208 * 1024
        assert EV8_CONFIG.hysteresis_bits == 144 * 1024
        assert EV8_CONFIG.total_bits == 352 * 1024

    def test_table1_entries_match_config(self):
        for label, table in zip(("BIM", "G0", "G1", "Meta"),
                                EV8_CONFIG.tables()):
            assert table.entries == TABLE1[label]["prediction"]
            assert (table.hysteresis_entries or table.entries) == \
                TABLE1[label]["hysteresis"]
            assert table.history_length == TABLE1[label]["history"]

    def test_half_hysteresis_on_g0_and_meta(self):
        """The paper's prose (4.4) and Table 1 disagree; Table 1 (G0 and
        Meta halved) is the arithmetic that reaches 352 Kbit."""
        assert EV8_CONFIG.g0.hysteresis_entries == EV8_CONFIG.g0.entries // 2
        assert EV8_CONFIG.meta.hysteresis_entries == EV8_CONFIG.meta.entries // 2
        assert EV8_CONFIG.g1.hysteresis_entries == EV8_CONFIG.g1.entries
        assert EV8_CONFIG.bim.hysteresis_entries == EV8_CONFIG.bim.entries

    def test_history_lengths(self):
        assert [t.history_length for t in EV8_CONFIG.tables()] == [4, 13, 21, 15]

    def test_structural_parameters(self):
        assert EV8_CONFIG.banks == 4
        assert 1 << EV8_CONFIG.wordline_bits == 64
        assert 1 << EV8_CONFIG.word_bits == 8
        assert EV8_CONFIG.history_delay_blocks == 3
        assert EV8_CONFIG.path_depth == 3


class TestValidation:
    def test_default_validates(self):
        EV8_CONFIG.validate()

    def test_rejects_tiny_tables(self):
        config = EV8Config(bim=TableConfig(64, 4))
        with pytest.raises(ValueError, match="shared"):
            config.validate()

    def test_rejects_unequal_global_tables(self):
        config = EV8Config(g0=TableConfig(32 * 1024, 13))
        with pytest.raises(ValueError, match="equally sized"):
            config.validate()

    def test_rejects_non_four_banks(self):
        config = EV8Config(banks=8)
        with pytest.raises(ValueError, match="4 banks"):
            config.validate()
