"""Integration tests: the plane fabric + work-stealing scheduler under
``sweep_parallel`` (determinism, materialize-once, cleanup)."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.history.providers import ev8_info_provider
from repro.obs import Telemetry, use_telemetry
from repro.sim import planes, scheduler
from repro.sim.sweep import sweep, sweep_parallel
from repro.traces.model import Trace
from repro.workloads.spec95 import spec95_trace

from tests_support_sweep import history_predictor


def fresh_traces(branches: int = 2_500) -> dict[str, Trace]:
    """Distinct trace objects per call, so every test starts with cold
    WeakKey materialization caches and publishes fresh planes."""
    out = {}
    for name in ("gcc", "compress"):
        trace = spec95_trace(name, branches)
        out[name] = Trace(trace.name, trace.starts.copy(),
                          trace.num_instructions.copy(), trace.kinds.copy(),
                          trace.takens.copy(), trace.next_starts.copy())
    return out


@pytest.fixture(autouse=True)
def fabric_teardown():
    yield
    planes.release_attachments()
    planes.release_plane_store()


class TestDeterminism:
    def test_parallel_points_bit_identical_to_serial(self):
        traces = fresh_traces()
        values = [4, 6, 8, 10]
        serial = sweep(history_predictor, values, traces, ev8_info_provider,
                       engine="batched", use_cache=False)
        parallel = sweep_parallel(history_predictor, values, fresh_traces(),
                                  ev8_info_provider, engine="batched",
                                  max_workers=2, use_cache=False)
        assert [p.value for p in parallel] == [p.value for p in serial]
        assert [p.per_benchmark for p in parallel] \
            == [p.per_benchmark for p in serial]
        assert [p.mean_misp_per_ki for p in parallel] \
            == [p.mean_misp_per_ki for p in serial]

    def test_merged_telemetry_counters_identical_to_serial(self):
        values = [4, 7]
        serial_sink, parallel_sink = Telemetry(), Telemetry()
        sweep(history_predictor, values, fresh_traces(), ev8_info_provider,
              engine="batched", use_cache=False, telemetry=serial_sink)
        sweep_parallel(history_predictor, values, fresh_traces(),
                       ev8_info_provider, engine="batched", max_workers=2,
                       use_cache=False, telemetry=parallel_sink)
        assert serial_sink.counters == parallel_sink.counters
        serial_spans = {name: stats["count"]
                        for name, stats in serial_sink.spans.items()}
        parallel_spans = {name: stats["count"]
                          for name, stats in parallel_sink.spans.items()}
        assert serial_spans == parallel_spans

    def test_work_stealing_chunks_preserve_order(self):
        pool = scheduler.SweepScheduler(max_workers=3)
        payloads = list(range(23))
        chunks = pool.chunk_payloads(payloads)
        assert [x for chunk in chunks for x in chunk] == payloads
        assert len(chunks) > 3  # finer than one-chunk-per-worker


class TestMaterializeOnce:
    def test_each_trace_materialized_exactly_once_process_wide(self):
        """The acceptance criterion: a 3-point sweep over fresh traces
        computes each trace's planes once — in the publisher — and every
        worker unit adopts them (zero worker-side recomputes)."""
        traces = fresh_traces()
        sink = Telemetry()
        with use_telemetry(sink):
            sweep_parallel(history_predictor, [4, 6, 8], traces,
                           ev8_info_provider, engine="batched",
                           max_workers=2, use_cache=False, telemetry=sink)
        assert sink.counters["provider.materialize_computed"] == len(traces)
        assert sink.counters["planes.trace_published"] == len(traces)
        assert sink.counters["planes.batch_published"] == len(traces)


class TestFallbacks:
    def test_unpicklable_factory_falls_back_to_serial(self):
        traces = fresh_traces()
        expected = sweep(history_predictor, [4, 6], traces,
                         ev8_info_provider, engine="batched", use_cache=False)
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            actual = sweep_parallel(lambda h: history_predictor(h), [4, 6],
                                    traces, ev8_info_provider,
                                    engine="batched", max_workers=2,
                                    use_cache=False)
        assert [p.per_benchmark for p in actual] \
            == [p.per_benchmark for p in expected]

    def test_single_worker_short_circuits_to_serial(self):
        traces = fresh_traces()
        points = sweep_parallel(history_predictor, [5], traces,
                                ev8_info_provider, engine="batched",
                                max_workers=1, use_cache=False)
        assert len(points) == 1 and set(points[0].per_benchmark) == set(traces)


class TestPersistentScheduler:
    def test_pool_survives_across_sweeps(self):
        scheduler.shutdown_schedulers()  # force a cold pool for the count
        sink = Telemetry()
        with use_telemetry(sink):
            for _ in range(2):
                sweep_parallel(history_predictor, [4, 6], fresh_traces(),
                               ev8_info_provider, engine="batched",
                               max_workers=2, use_cache=False)
        assert sink.counters["scheduler.runs"] == 2
        assert sink.counters["scheduler.pools_started"] == 1

    def test_get_scheduler_memoizes_per_key(self):
        try:
            a = scheduler.get_scheduler(2)
            b = scheduler.get_scheduler(2)
            c = scheduler.get_scheduler(3)
            assert a is b and a is not c
        finally:
            scheduler.shutdown_schedulers()

    def test_shutdown_allows_restart(self):
        pool = scheduler.SweepScheduler(max_workers=2)
        try:
            assert pool.run(abs, [-1, -2]) == [1, 2]
            pool.shutdown()
            assert pool.run(abs, [-3]) == [3]
        finally:
            pool.shutdown()

    def test_default_start_method_is_platform_explicit(self):
        method = scheduler.default_start_method()
        if sys.platform in ("win32", "darwin"):
            assert method == "spawn"
        else:
            assert method == "fork"


_SIGINT_SCRIPT = """
import signal, sys, time
sys.path.insert(0, {src!r})
sys.path.insert(0, {tests!r})
from repro.history.providers import ev8_info_provider
from repro.sim.sweep import sweep_parallel
from repro.workloads.spec95 import spec95_trace
from tests_support_sweep import history_predictor

traces = {{n: spec95_trace(n, 60_000) for n in ("gcc", "compress", "go")}}
print("READY", flush=True)
sweep_parallel(history_predictor, list(range(2, 26)), traces,
               ev8_info_provider, engine="batched", max_workers=2,
               use_cache=False)
print("DONE", flush=True)
"""


@pytest.mark.slow
class TestSignalCleanup:
    def test_sigint_mid_sweep_leaves_no_segments(self, tmp_path):
        """Interrupting a sweep must not leak /dev/shm segments: the
        chained SIGINT handler (and the atexit fallback) release the plane
        store before the process dies."""
        shm = Path("/dev/shm")
        if not shm.is_dir():
            pytest.skip("no /dev/shm on this platform")
        repo = Path(__file__).resolve().parent.parent
        script = _SIGINT_SCRIPT.format(src=str(repo / "src"),
                                       tests=str(repo / "tests"))
        process = subprocess.Popen([sys.executable, "-c", script],
                                   stdout=subprocess.PIPE,
                                   stderr=subprocess.DEVNULL, text=True,
                                   cwd=tmp_path)
        try:
            assert process.stdout.readline().strip() == "READY"
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                mine = [p for p in shm.iterdir()
                        if p.name.startswith(
                            f"{planes.SEGMENT_PREFIX}-{process.pid}-")]
                if mine:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("sweep never published a plane segment")
            process.send_signal(signal.SIGINT)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        assert process.returncode != 0  # it really was interrupted
        leaked = [p.name for p in shm.iterdir()
                  if p.name.startswith(
                      f"{planes.SEGMENT_PREFIX}-{process.pid}-")]
        assert not leaked, f"leaked shared-memory segments: {leaked}"
