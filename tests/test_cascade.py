"""Tests for the cascaded predictor hierarchy (the conclusion's proposal)."""

import pytest

from conftest import make_vector, simple_loop_trace
from repro.predictors import (
    BimodalPredictor,
    CascadePredictor,
    GsharePredictor,
    LocalPredictor,
    PerceptronPredictor,
)
from repro.sim.driver import simulate


def make_cascade(**kwargs):
    return CascadePredictor(BimodalPredictor(256),
                            GsharePredictor(1024, 6), **kwargs)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_cascade(chooser_entries=100)
        with pytest.raises(ValueError):
            make_cascade(primary_delay=5, backup_delay=3)
        with pytest.raises(ValueError):
            make_cascade(backup_delay=20, misprediction_penalty=14)

    def test_storage_is_sum_plus_chooser(self):
        cascade = make_cascade(chooser_entries=512)
        assert cascade.storage_bits == (BimodalPredictor(256).storage_bits
                                        + GsharePredictor(1024, 6).storage_bits
                                        + 1024)

    def test_name(self):
        assert "cascade" in make_cascade().name


class TestOverrideBehaviour:
    def test_no_override_until_backup_earns_trust(self):
        cascade = make_cascade()
        vector = make_vector(history=0b1)
        # Chooser starts weakly not-taken = distrust the backup.
        primary = cascade.primary.predict(vector)
        assert cascade.predict(vector) == primary

    def test_backup_earns_override_on_alternating_branch(self):
        """A pattern the bimodal primary cannot learn but the gshare backup
        can: after training, the cascade must follow the backup."""
        trace = simple_loop_trace(iterations=600, taken_pattern=[True, False])
        cascade = make_cascade()
        result = simulate(cascade, trace)
        stats = cascade.statistics
        assert stats.final_mispredictions < stats.primary_mispredictions * 0.5
        assert stats.good_overrides > stats.bad_overrides
        assert result.mispredictions == stats.final_mispredictions

    def test_no_overrides_on_trivial_branch(self):
        trace = simple_loop_trace(iterations=300, taken_pattern=[True])
        cascade = make_cascade()
        simulate(cascade, trace)
        # Primary handles it; overrides should be (nearly) absent.
        assert cascade.statistics.overrides <= 2

    def test_override_precision(self):
        trace = simple_loop_trace(iterations=600, taken_pattern=[True, False])
        cascade = make_cascade()
        simulate(cascade, trace)
        assert cascade.statistics.override_precision > 0.8


class TestPipelineCost:
    def test_zero_cost_before_use(self):
        assert make_cascade().pipeline_cost() == 0.0

    def test_backup_reduces_pipeline_cost_when_it_helps(self):
        """The conclusion's trade-off: paying backup_delay redirects to
        avoid full penalties must pay off on a backup-friendly workload."""
        trace = simple_loop_trace(iterations=800, taken_pattern=[True, False])
        with_backup = make_cascade(backup_delay=4, misprediction_penalty=14)
        simulate(with_backup, trace)
        solo = BimodalPredictor(256)
        solo_result = simulate(solo, trace)
        solo_cost = solo_result.mispredictions * 14 / solo_result.branches
        assert with_backup.pipeline_cost() < solo_cost

    def test_realistic_hierarchy_on_workload(self, compress_trace):
        """EV8-style primary + perceptron backup on a real stand-in trace:
        the cascade must never be worse than its primary in accuracy."""
        cascade = CascadePredictor(
            GsharePredictor(1 << 14, 10),
            PerceptronPredictor(512, 20),
            backup_delay=5)
        simulate(cascade, compress_trace)
        stats = cascade.statistics
        assert stats.final_mispredictions <= stats.primary_mispredictions


class TestWithLocalBackup:
    def test_local_backup_catches_local_patterns(self):
        """A local-history backup catches self-correlated branches a global
        primary misses — the 'different information vector types' the
        conclusion suggests."""
        trace = simple_loop_trace(
            iterations=900, taken_pattern=[True, True, True, False, False])
        cascade = CascadePredictor(BimodalPredictor(64),
                                   LocalPredictor(64, 8, 1024))
        simulate(cascade, trace)
        stats = cascade.statistics
        assert stats.final_mispredictions < stats.primary_mispredictions
