"""Tests for the conflict-free bank number computation (Section 6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ev8.banks import BankNumberGenerator, bank_number
from repro.traces.fetch import fetch_blocks_for
from repro.workloads.spec95 import spec95_trace

addresses = st.integers(min_value=0, max_value=2**32 - 1).map(lambda a: a & ~3)


class TestBankNumber:
    def test_uses_address_bits_6_5(self):
        # (y6, y5) = 0b10 and no collision -> bank 2.
        assert bank_number(0b100_0000, previous_bank=0) == 2
        # (y6, y5) = 0b01 -> bank 1.
        assert bank_number(0b010_0000, previous_bank=0) == 1

    def test_collision_flips_low_bit(self):
        assert bank_number(0b100_0000, previous_bank=2) == 3
        assert bank_number(0b110_0000, previous_bank=3) == 2
        assert bank_number(0, previous_bank=0) == 1

    def test_rejects_invalid_bank(self):
        with pytest.raises(ValueError):
            bank_number(0, previous_bank=4)

    @given(addresses, st.integers(0, 3))
    def test_result_always_differs_from_previous(self, address, previous):
        assert bank_number(address, previous) != previous

    @given(addresses, st.integers(0, 3))
    def test_result_in_range(self, address, previous):
        assert 0 <= bank_number(address, previous) < 4

    @given(addresses, addresses, st.integers(0, 3))
    def test_depends_only_on_bits_6_5(self, address, other, previous):
        """The hardware only wires y6 and y5 into the computation."""
        merged = (other & ~0b1100000) | (address & 0b1100000)
        assert bank_number(address, previous) == bank_number(merged, previous)


class TestGenerator:
    def test_successive_banks_always_distinct(self):
        generator = BankNumberGenerator()
        previous = None
        for i in range(1000):
            bank = generator.next_bank((i * 52) & ~3)
            if previous is not None:
                assert bank != previous
            previous = bank

    def test_two_block_ahead_semantics(self):
        """The bank for block N must be computable from the address of block
        N-2 and the bank of block N-1 alone (the Fig 3 timing argument)."""
        generator = BankNumberGenerator()
        stream = [(i * 36) & ~3 for i in range(100)]
        banks = [generator.next_bank(address) for address in stream]
        for n in range(2, len(stream)):
            assert banks[n] == bank_number(stream[n - 2], banks[n - 1])

    def test_bank_ignores_own_address(self):
        """Changing block N's address must not change block N's bank
        (it only affects N+2's)."""
        stream = [(i * 44) & ~3 for i in range(10)]
        reference = BankNumberGenerator()
        banks = [reference.next_bank(a) for a in stream]
        changed = BankNumberGenerator()
        altered = list(stream)
        altered[5] ^= 0b1100000  # flip the seed bits of block 5
        banks_altered = [changed.next_bank(a) for a in altered]
        assert banks_altered[5] == banks[5]
        assert banks_altered[:5] == banks[:5]

    def test_reset(self):
        generator = BankNumberGenerator()
        first_run = [generator.next_bank(a) for a in (0x40, 0x80, 0xC0)]
        generator.reset()
        second_run = [generator.next_bank(a) for a in (0x40, 0x80, 0xC0)]
        assert first_run == second_run

    def test_on_real_fetch_stream(self):
        """The Section 6 guarantee over an actual workload's fetch-block
        stream: zero conflicts between dynamically successive blocks."""
        trace = spec95_trace("perl", 8000)
        generator = BankNumberGenerator()
        previous = None
        conflicts = 0
        usage = [0, 0, 0, 0]
        for block in fetch_blocks_for(trace):
            bank = generator.next_bank(block.start)
            usage[bank] += 1
            if previous is not None and bank == previous:
                conflicts += 1
            previous = bank
        assert conflicts == 0
        # All four banks must actually be used.
        assert all(count > 0 for count in usage)
