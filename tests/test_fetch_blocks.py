"""Tests for EV8 fetch-block construction (Section 2 semantics)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.fetch import (
    FETCH_BLOCK_BYTES,
    FETCH_BLOCK_INSTRUCTIONS,
    build_fetch_blocks,
    fetch_blocks_for,
)
from repro.traces.model import TerminatorKind, TraceBuilder
from repro.workloads.spec95 import spec95_trace


def trace_of(*blocks):
    builder = TraceBuilder("test")
    for block in blocks:
        builder.add(*block)
    return builder.build()


class TestBasicChunking:
    def test_taken_branch_ends_block(self):
        trace = trace_of((0x1000, 3, TerminatorKind.CONDITIONAL, True, 0x2000),
                         (0x2000, 1, TerminatorKind.JUMP, True, 0x1000))
        blocks = build_fetch_blocks(trace)
        assert [b.start for b in blocks] == [0x1000, 0x2000]
        assert blocks[0].num_instructions == 3
        assert blocks[0].ended_taken
        assert blocks[0].branch_pcs == [0x1008]

    def test_not_taken_branch_does_not_end_block(self):
        # Two conditional not-taken branches within one aligned 32B window
        # must share a fetch block (the "up to 16 predictions" mechanism).
        trace = trace_of(
            (0x1000, 2, TerminatorKind.CONDITIONAL, False, 0x1008),
            (0x1008, 2, TerminatorKind.CONDITIONAL, False, 0x1010),
            (0x1010, 4, TerminatorKind.JUMP, True, 0x1000))
        blocks = build_fetch_blocks(trace)
        assert len(blocks) == 1
        assert blocks[0].branch_pcs == [0x1004, 0x100C]
        assert blocks[0].branch_outcomes == [False, False]
        assert blocks[0].num_instructions == 8

    def test_aligned_boundary_ends_block(self):
        # 12 straight instructions from 0x1000: blocks at 0x1000 (8 instr)
        # and 0x1020 (4 instr).
        trace = trace_of((0x1000, 12, TerminatorKind.JUMP, True, 0x1000))
        blocks = build_fetch_blocks(trace)
        assert [(b.start, b.num_instructions) for b in blocks] == [
            (0x1000, 8), (0x1020, 4)]
        assert not blocks[0].ended_taken
        assert blocks[1].ended_taken

    def test_unaligned_start_after_taken_branch(self):
        # A taken branch landing mid-window: the next block runs only to the
        # next 32-byte boundary.
        trace = trace_of((0x1000, 1, TerminatorKind.JUMP, True, 0x2014),
                         (0x2014, 6, TerminatorKind.JUMP, True, 0x1000))
        blocks = build_fetch_blocks(trace)
        assert blocks[1].start == 0x2014
        assert blocks[1].num_instructions == 3  # 0x2014,18,1C then boundary
        assert blocks[2].start == 0x2020

    def test_trailing_partial_block_flushed(self):
        trace = trace_of((0x1000, 2, TerminatorKind.FALLTHROUGH, False, 0x1008))
        blocks = build_fetch_blocks(trace)
        assert len(blocks) == 1
        assert blocks[0].num_instructions == 2
        assert not blocks[0].ended_taken

    def test_lghist_properties(self):
        trace = trace_of(
            (0x1000, 2, TerminatorKind.CONDITIONAL, False, 0x1008),
            (0x1008, 2, TerminatorKind.CONDITIONAL, True, 0x3000),
            (0x3000, 1, TerminatorKind.JUMP, True, 0x1000))
        block = build_fetch_blocks(trace)[0]
        assert block.has_conditional
        assert block.last_branch_pc == 0x100C
        assert block.last_branch_outcome is True
        jump_block = build_fetch_blocks(trace)[1]
        assert not jump_block.has_conditional

    def test_memoised(self, gcc_trace):
        assert fetch_blocks_for(gcc_trace) is fetch_blocks_for(gcc_trace)


# A generated stream of basic blocks that is address-consistent: fall-through
# blocks are contiguous, taken terminators go wherever.
@st.composite
def consistent_traces(draw):
    builder = TraceBuilder("prop")
    position = draw(st.integers(0, 1 << 20)) * 4
    for _ in range(draw(st.integers(1, 60))):
        n = draw(st.integers(1, 12))
        kind = draw(st.sampled_from([TerminatorKind.CONDITIONAL,
                                     TerminatorKind.JUMP,
                                     TerminatorKind.FALLTHROUGH]))
        if kind == TerminatorKind.CONDITIONAL:
            taken = draw(st.booleans())
        else:
            taken = kind == TerminatorKind.JUMP
        end = position + n * 4
        if taken:
            target = draw(st.integers(0, 1 << 20)) * 4
        else:
            target = end
        builder.add(position, n, kind, taken, target)
        position = target
    return builder.build()


class TestInvariants:
    @given(consistent_traces())
    @settings(max_examples=60, deadline=None)
    def test_structural_invariants(self, trace):
        blocks = build_fetch_blocks(trace)
        total_instructions = 0
        total_branches = 0
        for block in blocks:
            # Size limits.
            assert 1 <= block.num_instructions <= FETCH_BLOCK_INSTRUCTIONS
            # Never crosses an aligned 32-byte boundary.
            assert (block.start // FETCH_BLOCK_BYTES
                    == (block.end - 4) // FETCH_BLOCK_BYTES)
            # At most 8 conditional branches, all within the block.
            assert len(block.branch_pcs) <= FETCH_BLOCK_INSTRUCTIONS
            for pc, _ in zip(block.branch_pcs, block.branch_outcomes):
                assert block.start <= pc < block.end
            # All branches except possibly the last are not-taken (a taken
            # conditional ends the block).
            for outcome in block.branch_outcomes[:-1]:
                assert outcome is False or outcome == 0
            if block.ended_taken and block.branch_outcomes:
                # If the block ended on its last conditional, it was taken
                # and sits at the very end.
                if block.branch_pcs[-1] == block.end - 4:
                    assert block.branch_outcomes[-1]
            total_instructions += block.num_instructions
            total_branches += len(block.branch_pcs)
        # Conservation: every instruction and branch appears exactly once.
        assert total_instructions == trace.instruction_count
        assert total_branches == trace.conditional_count

    @given(consistent_traces())
    @settings(max_examples=30, deadline=None)
    def test_branch_order_preserved(self, trace):
        blocks = build_fetch_blocks(trace)
        flat = [(pc, outcome) for block in blocks
                for pc, outcome in zip(block.branch_pcs,
                                       block.branch_outcomes)]
        pcs, outcomes = trace.branches()
        assert flat == list(zip(pcs, outcomes))


class TestOnRealWorkload:
    def test_spec_trace_block_budget(self):
        trace = spec95_trace("vortex", 5000)
        blocks = build_fetch_blocks(trace)
        assert blocks, "workload produced no fetch blocks"
        sizes = [b.num_instructions for b in blocks]
        assert max(sizes) <= 8
        branches = sum(len(b.branch_pcs) for b in blocks)
        assert branches == trace.conditional_count
