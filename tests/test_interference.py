"""Tests for the aliasing/interference analysis tool."""

import pytest

from conftest import simple_loop_trace
from repro.history.providers import BranchGhistProvider
from repro.indexing.fold import gshare_index
from repro.sim.interference import measure_interference
from repro.traces.model import TerminatorKind, TraceBuilder


def pc_index(entries):
    return lambda vector: (vector.branch_pc >> 2) % entries


class TestClassification:
    def test_single_branch_is_never_aliased(self):
        trace = simple_loop_trace(iterations=100, taken_pattern=[True])
        report = measure_interference(pc_index(64), 64, trace,
                                      BranchGhistProvider(), history_mask=0)
        assert report.cold == 1
        assert report.non_aliased == 99
        assert report.neutral == 0
        assert report.destructive == 0
        assert report.accesses == 100
        assert report.entries_touched == 1

    def test_agreeing_aliases_are_neutral(self):
        builder = TraceBuilder("agree")
        for _ in range(50):
            # Two branches, same direction, aliasing to entry 0 of a 1-entry
            # table.
            builder.add(0x1000, 1, TerminatorKind.CONDITIONAL, True, 0x2000)
            builder.add(0x2000, 1, TerminatorKind.CONDITIONAL, True, 0x1000)
        report = measure_interference(pc_index(1), 1, builder.build(),
                                      BranchGhistProvider(), history_mask=0)
        assert report.destructive == 0
        assert report.neutral == report.accesses - 1

    def test_disagreeing_aliases_are_destructive(self):
        builder = TraceBuilder("fight")
        for _ in range(50):
            builder.add(0x1000, 1, TerminatorKind.CONDITIONAL, True, 0x2000)
            builder.add(0x2000, 1, TerminatorKind.CONDITIONAL, False, 0x2004)
            builder.add(0x2004, 1, TerminatorKind.JUMP, True, 0x1000)
        report = measure_interference(pc_index(1), 1, builder.build(),
                                      BranchGhistProvider(), history_mask=0)
        assert report.destructive == report.accesses - 1
        assert report.destructive_fraction > 0.95

    def test_big_table_separates_streams(self):
        builder = TraceBuilder("apart")
        for _ in range(50):
            builder.add(0x1000, 1, TerminatorKind.CONDITIONAL, True, 0x2000)
            builder.add(0x2000, 1, TerminatorKind.CONDITIONAL, False, 0x2004)
            builder.add(0x2004, 1, TerminatorKind.JUMP, True, 0x1000)
        # 4096 entries: pc>>2 = 0x400 and 0x800 map to distinct entries.
        report = measure_interference(pc_index(4096), 4096, builder.build(),
                                      BranchGhistProvider(), history_mask=0)
        assert report.destructive == 0
        assert report.entries_touched == 2
        assert report.utilization == pytest.approx(2 / 4096)

    def test_validation(self):
        trace = simple_loop_trace(iterations=5)
        with pytest.raises(ValueError):
            measure_interference(pc_index(1), 0, trace,
                                 BranchGhistProvider())


class TestOnWorkloads:
    def test_smaller_tables_more_destructive(self, gcc_trace):
        def run(entries):
            return measure_interference(
                lambda vector: gshare_index(vector.branch_pc, vector.history,
                                            10, entries.bit_length() - 1),
                entries, gcc_trace, BranchGhistProvider())
        small = run(1 << 8)
        large = run(1 << 16)
        assert small.destructive_fraction > large.destructive_fraction
        assert small.utilization > large.utilization

    def test_report_string(self, compress_trace):
        report = measure_interference(pc_index(256), 256, compress_trace,
                                      BranchGhistProvider(), history_mask=0)
        text = str(report)
        assert "destructive" in text and "utilization" in text
