"""Telemetry subsystem: sink unit tests plus cross-layer invariants.

The invariants pin down the telemetry *semantics*, not just its plumbing:

* per-bank read counts equal branch count × banks consulted (partial update
  never skips a fetch-time read — suppression is about writes);
* Meta arbitration outcomes partition the conditional branch stream;
* the partial-update event counters partition the branch stream, and
  partial update demonstrably suppresses hysteresis writes vs total update;
* spans nest (keys are slash-joined paths, a parent's time covers its
  children's);
* serial and parallel sweeps merge per-point sinks into identical counters.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (NULL_TELEMETRY, NullTelemetry, Telemetry,
                       get_telemetry, render_summary, set_telemetry,
                       use_telemetry)
from repro.predictors.twobcgskew import TableConfig, TwoBcGskewPredictor
from repro.sim.engine import BatchedEngine, ScalarEngine
from repro.sim.sweep import sweep, sweep_parallel
from repro.workloads.spec95 import spec95_trace

from conftest import TEST_TRACE_BRANCHES


def small_2bcgskew(update_policy: str = "partial") -> TwoBcGskewPredictor:
    return TwoBcGskewPredictor(
        TableConfig(1024, 0), TableConfig(2048, 9, 1024),
        TableConfig(2048, 13), TableConfig(2048, 11, 1024),
        update_policy=update_policy)


# -- sink unit tests ----------------------------------------------------------

class TestNullTelemetry:
    def test_disabled_and_inert(self):
        sink = NullTelemetry()
        assert not sink.enabled
        sink.count("x")
        sink.observe("y", 1.5)
        with sink.span("z"):
            pass
        assert sink.snapshot() == {"counters": {}, "histograms": {},
                                   "spans": {}}

    def test_shared_instance_is_the_default(self):
        assert isinstance(NULL_TELEMETRY, NullTelemetry)
        assert not NULL_TELEMETRY.enabled


class TestTelemetrySink:
    def test_counters_accumulate(self):
        sink = Telemetry()
        sink.count("a")
        sink.count("a", 4)
        sink.count("b", 0)
        assert sink.counters == {"a": 5, "b": 0}

    def test_histograms_reduce(self):
        sink = Telemetry()
        for value in (2.0, 8.0, 5.0):
            sink.observe("latency", value)
        stats = sink.histograms["latency"]
        assert stats == {"count": 3, "total": 15.0, "min": 2.0, "max": 8.0}

    def test_spans_nest(self):
        sink = Telemetry()
        with sink.span("outer"):
            assert sink.span_depth == 1
            with sink.span("inner"):
                assert sink.span_depth == 2
        assert sink.span_depth == 0
        assert set(sink.spans) == {"outer", "outer/inner"}
        assert sink.spans["outer"]["seconds"] >= \
            sink.spans["outer/inner"]["seconds"]

    def test_span_names_reject_separator(self):
        sink = Telemetry()
        with pytest.raises(ValueError, match="span names"):
            with sink.span("a/b"):
                pass

    def test_span_reentry_accumulates(self):
        sink = Telemetry()
        for _ in range(3):
            with sink.span("loop"):
                pass
        assert sink.spans["loop"]["count"] == 3

    def test_merge_snapshot_adds_and_widens(self):
        left, right = Telemetry(), Telemetry()
        left.count("n", 2)
        right.count("n", 3)
        right.count("only_right")
        left.observe("h", 1.0)
        right.observe("h", 9.0)
        with right.span("s"):
            pass
        left.merge_snapshot(right.snapshot())
        assert left.counters == {"n": 5, "only_right": 1}
        assert left.histograms["h"] == {"count": 2, "total": 10.0,
                                        "min": 1.0, "max": 9.0}
        assert left.spans["s"]["count"] == 1

    def test_json_round_trip(self, tmp_path):
        sink = Telemetry()
        sink.count("c", 7)
        sink.observe("h", 0.5)
        path = tmp_path / "telemetry.json"
        text = sink.to_json(path)
        assert json.loads(text) == sink.snapshot()
        assert json.loads(path.read_text()) == sink.snapshot()

    def test_csv_rows(self, tmp_path):
        sink = Telemetry()
        sink.count("c", 7)
        sink.observe("h", 0.5)
        with sink.span("s"):
            pass
        path = tmp_path / "telemetry.csv"
        text = sink.to_csv(path)
        lines = text.strip().splitlines()
        assert lines[0] == "kind,name,field,value"
        assert "counter,c,value,7" in lines
        assert any(line.startswith("histogram,h,count,") for line in lines)
        assert any(line.startswith("span,s,seconds,") for line in lines)
        assert path.read_text() == text

    def test_write_picks_format_by_extension(self, tmp_path):
        sink = Telemetry()
        sink.count("c")
        sink.write(tmp_path / "t.csv")
        sink.write(tmp_path / "t.json")
        assert (tmp_path / "t.csv").read_text().startswith("kind,name")
        assert json.loads((tmp_path / "t.json").read_text())


class TestActiveSinkPlumbing:
    def test_default_is_null(self):
        assert get_telemetry() is NULL_TELEMETRY

    def test_explicit_sink_passes_through(self):
        sink = Telemetry()
        assert get_telemetry(sink) is sink

    def test_set_and_restore(self):
        sink = Telemetry()
        previous = set_telemetry(sink)
        try:
            assert get_telemetry() is sink
        finally:
            set_telemetry(previous)
        assert get_telemetry() is previous

    def test_use_telemetry_scopes(self):
        sink = Telemetry()
        with use_telemetry(sink) as active:
            assert active is sink
            assert get_telemetry() is sink
        assert get_telemetry() is NULL_TELEMETRY

    def test_use_telemetry_none_is_null(self):
        with use_telemetry(None) as active:
            assert active is NULL_TELEMETRY


class TestRenderSummary:
    def test_sections(self):
        sink = Telemetry()
        sink.count("bank.g0.reads", 100)
        sink.count("bank.g0.hysteresis_writes", 10)
        sink.count("arbitration.bim_chosen", 60)
        sink.observe("result_cache.hit_seconds", 0.001)
        with sink.span("run"):
            pass
        text = render_summary(sink.snapshot())
        assert "Per-bank counter traffic" in text
        assert "g0" in text
        assert "arbitration.bim_chosen" in text
        assert "result_cache.hit_seconds" in text
        assert "run" in text

    def test_empty_snapshot(self):
        assert render_summary(Telemetry().snapshot()) \
            == "(no telemetry recorded)"


# -- cross-layer invariants ---------------------------------------------------

@pytest.fixture(scope="module")
def instrumented_run(gcc_trace):
    """One scalar run of the small 2Bc-gskew under a recording sink."""
    sink = Telemetry()
    predictor = small_2bcgskew()
    result = ScalarEngine().run(predictor, gcc_trace, telemetry=sink)
    return result, sink.snapshot(), predictor


# The module-scope fixture needs a module-scope trace; reuse the session
# fixture values through a tiny indirection.
@pytest.fixture(scope="module")
def gcc_trace():
    return spec95_trace("gcc", TEST_TRACE_BRANCHES)


class TestEngineInvariants:
    def test_reads_equal_branches_times_banks_consulted(self,
                                                        instrumented_run):
        result, snapshot, _ = instrumented_run
        counters = snapshot["counters"]
        # 2Bc-gskew consults all four banks on every prediction; partial
        # update suppresses *writes*, never fetch-time reads.
        for bank in ("bim", "g0", "g1", "meta"):
            assert counters[f"bank.{bank}.reads"] == result.branches

    def test_arbitration_partitions_branches(self, instrumented_run):
        result, snapshot, _ = instrumented_run
        counters = snapshot["counters"]
        assert (counters["arbitration.bim_chosen"]
                + counters["arbitration.majority_chosen"]) == result.branches
        assert counters["arbitration.chosen_correct"] \
            == result.branches - result.mispredictions

    def test_update_events_partition_branches(self, instrumented_run):
        result, snapshot, _ = instrumented_run
        counters = snapshot["counters"]
        events = sum(counters.get(f"update.{kind}", 0)
                     for kind in ("suppressed", "strengthened",
                                  "chooser_fixed", "full"))
        assert events == result.branches
        assert counters["update.suppressed_writes"] \
            == 3 * counters["update.suppressed"]

    def test_result_carries_snapshot(self, instrumented_run):
        result, snapshot, _ = instrumented_run
        assert result.telemetry == snapshot

    def test_engine_detaches_sink_after_run(self, instrumented_run):
        _, _, predictor = instrumented_run
        assert predictor._telemetry is NULL_TELEMETRY
        assert predictor.bim._telemetry is NULL_TELEMETRY

    def test_uninstrumented_run_stamps_none(self, gcc_trace):
        result = ScalarEngine().run(small_2bcgskew(), gcc_trace)
        assert result.telemetry is None

    def test_batched_spans_nest_run_phases(self, gcc_trace):
        sink = Telemetry()
        BatchedEngine(strict=True).run(small_2bcgskew(), gcc_trace,
                                       telemetry=sink)
        assert "batched_run" in sink.spans
        for child in ("batched_run/materialize", "batched_run/replay"):
            assert child in sink.spans
            assert sink.spans["batched_run"]["seconds"] \
                >= sink.spans[child]["seconds"]
        assert sink.span_depth == 0

    def test_batched_replay_residue_accounting(self, gcc_trace):
        sink = Telemetry()
        result = BatchedEngine(strict=True).run(small_2bcgskew(), gcc_trace,
                                                telemetry=sink)
        counters = sink.counters
        assert counters["replay.positions"] == result.branches
        assert 0 <= counters["replay.coupled"] <= counters["replay.positions"]

    def test_partial_update_suppresses_hysteresis_writes(self, gcc_trace):
        """The Section 4.2 claim, measured: the partial policy issues
        strictly less strength-bit traffic than total update."""
        def hysteresis_writes(policy):
            sink = Telemetry()
            ScalarEngine().run(small_2bcgskew(policy), gcc_trace,
                               telemetry=sink)
            return sum(value for name, value in sink.counters.items()
                       if name.endswith(".hysteresis_writes"))
        assert hysteresis_writes("partial") < hysteresis_writes("total")


# -- sweep merging ------------------------------------------------------------

def _sweep_predictor(history: int) -> TwoBcGskewPredictor:
    return TwoBcGskewPredictor(
        TableConfig(256, 0), TableConfig(512, history),
        TableConfig(512, history + 2), TableConfig(512, history + 1))


class TestSweepTelemetryMerging:
    def test_serial_and_parallel_merge_identically(self):
        traces = {"gcc": spec95_trace("gcc", 4000),
                  "compress": spec95_trace("compress", 4000)}
        values = [4, 7, 10]
        serial, parallel = Telemetry(), Telemetry()
        points_serial = sweep(_sweep_predictor, values, traces,
                              engine="batched", telemetry=serial)
        points_parallel = sweep_parallel(_sweep_predictor, values, traces,
                                         engine="batched", max_workers=2,
                                         telemetry=parallel)
        assert [p.value for p in points_serial] \
            == [p.value for p in points_parallel] == values
        assert [p.mean_misp_per_ki for p in points_serial] \
            == [p.mean_misp_per_ki for p in points_parallel]
        assert serial.counters == parallel.counters
        assert serial.counters  # non-trivial: the sweep recorded something
        # Span *counts* are deterministic too; wall seconds of course differ.
        assert {path: record["count"]
                for path, record in serial.spans.items()} \
            == {path: record["count"]
                for path, record in parallel.spans.items()}

    def test_disabled_sink_records_nothing(self):
        traces = {"gcc": spec95_trace("gcc", 1000)}
        points = sweep(_sweep_predictor, [4], traces, engine="batched")
        assert len(points) == 1
        assert get_telemetry() is NULL_TELEMETRY


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-v"]))
