"""Property tests for the pluggable index schemes (SkewedIndexScheme and
EV8IndexScheme) over randomised information vectors."""

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_vector
from repro.ev8.config import EV8_CONFIG
from repro.ev8.indexfuncs import EV8IndexScheme
from repro.predictors.twobcgskew import SkewedIndexScheme, TableConfig

CONFIGS = (TableConfig(16 * 1024, 0), TableConfig(64 * 1024, 13),
           TableConfig(64 * 1024, 21), TableConfig(64 * 1024, 15))

vectors = st.builds(
    make_vector,
    pc=st.integers(0, 2**30 - 1).map(lambda v: v & ~3),
    history=st.integers(0, 2**40 - 1),
    path=st.tuples(st.integers(0, 2**20), st.integers(0, 2**20),
                   st.integers(0, 2**20)),
    bank=st.integers(0, 3),
)


class TestSkewedScheme:
    @given(vectors)
    @settings(max_examples=150, deadline=None)
    def test_indices_in_range(self, vector):
        for use_path in (False, True):
            scheme = SkewedIndexScheme(use_path_addresses=use_path)
            indices = scheme.compute(vector, CONFIGS)
            for index, config in zip(indices, CONFIGS):
                assert 0 <= index < config.entries

    @given(vectors)
    @settings(max_examples=80, deadline=None)
    def test_path_only_matters_when_enabled(self, vector):
        plain = SkewedIndexScheme(use_path_addresses=False)
        no_path = make_vector(pc=vector.branch_pc, history=vector.history,
                              address=vector.address, path=(0, 0, 0),
                              bank=vector.bank)
        assert plain.compute(vector, CONFIGS) == plain.compute(no_path,
                                                               CONFIGS)

    def test_path_changes_indices_when_enabled(self):
        scheme = SkewedIndexScheme(use_path_addresses=True)
        a = make_vector(history=0x123, path=(0x40, 0x80, 0xC0))
        b = make_vector(history=0x123, path=(0x44, 0x80, 0xC0))
        assert scheme.compute(a, CONFIGS) != scheme.compute(b, CONFIGS)

    def test_banks_differ_per_table(self):
        """The skewing property: the three global tables disagree on where
        a vector goes for almost all vectors."""
        scheme = SkewedIndexScheme()
        disagreements = 0
        for seed in range(200):
            vector = make_vector(pc=seed * 52, history=seed * 977)
            _, g0, g1, meta = scheme.compute(vector, CONFIGS)
            if len({g0, g1, meta}) == 3:
                disagreements += 1
        assert disagreements > 180


class TestEV8Scheme:
    @given(vectors)
    @settings(max_examples=150, deadline=None)
    def test_indices_in_range(self, vector):
        for mode in ("history", "address"):
            for use_bank in (True, False):
                scheme = EV8IndexScheme(wordline_mode=mode,
                                        use_block_bank=use_bank)
                indices = scheme.compute(vector, EV8_CONFIG.tables())
                for index, config in zip(indices, EV8_CONFIG.tables()):
                    assert 0 <= index < config.entries

    @given(vectors)
    @settings(max_examples=80, deadline=None)
    def test_block_cohesion_for_random_blocks(self, vector):
        """All 8 slots of any aligned block land in one word of each table
        — required for the single-read-per-block hardware."""
        from repro.ev8.indexfuncs import decompose_index
        scheme = EV8IndexScheme()
        block_base = vector.branch_pc & ~31
        per_table_words = [set() for _ in range(4)]
        for slot in range(8):
            slot_vector = make_vector(
                pc=block_base + slot * 4, history=vector.history,
                address=vector.address, path=vector.path, bank=vector.bank)
            for table, index in enumerate(
                    scheme.compute(slot_vector, EV8_CONFIG.tables())):
                bank, _, line, column = decompose_index(
                    index, 3 if table == 0 else 5)
                per_table_words[table].add((bank, line, column))
        assert all(len(words) == 1 for words in per_table_words)

    @given(vectors, vectors)
    @settings(max_examples=80, deadline=None)
    def test_deterministic(self, a, b):
        scheme = EV8IndexScheme()
        assert scheme.compute(a, EV8_CONFIG.tables()) == \
            scheme.compute(a, EV8_CONFIG.tables())
