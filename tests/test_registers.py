"""Tests for history registers."""

import pytest

from repro.history.registers import (
    GlobalHistoryRegister,
    LocalHistoryTable,
    PathRegister,
)


class TestGlobalHistory:
    def test_push_order(self):
        register = GlobalHistoryRegister()
        for taken in (True, False, True, True):
            register.push(taken)
        # bit0 = most recent.
        assert register.value() == 0b1011

    def test_capacity_truncation(self):
        register = GlobalHistoryRegister(capacity=3)
        for _ in range(10):
            register.push(True)
        register.push(False)
        assert register.value() == 0b110

    def test_partial_read(self):
        register = GlobalHistoryRegister()
        for taken in (True, True, False):
            register.push(taken)
        assert register.value(2) == 0b10
        assert register.value(0) == 0

    def test_read_beyond_capacity_rejected(self):
        register = GlobalHistoryRegister(capacity=8)
        with pytest.raises(ValueError):
            register.value(9)

    def test_reset(self):
        register = GlobalHistoryRegister()
        register.push(True)
        register.reset()
        assert register.value() == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            GlobalHistoryRegister(0)


class TestPathRegister:
    def test_entry_ordering(self):
        path = PathRegister(depth=3)
        path.push(0x100)
        path.push(0x200)
        path.push(0x300)
        assert path.entry(0) == 0x300  # Z, the most recent
        assert path.entry(1) == 0x200  # Y
        assert path.entry(2) == 0x100  # X
        assert path.as_tuple() == (0x300, 0x200, 0x100)

    def test_oldest_falls_off(self):
        path = PathRegister(depth=2)
        for address in (1, 2, 3):
            path.push(address)
        assert path.as_tuple() == (3, 2)

    def test_initial_state_zero(self):
        path = PathRegister(depth=3)
        assert path.as_tuple() == (0, 0, 0)

    def test_reset(self):
        path = PathRegister(depth=2)
        path.push(7)
        path.reset()
        assert path.as_tuple() == (0, 0)

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            PathRegister(0)


class TestLocalHistoryTable:
    def test_per_branch_isolation(self):
        table = LocalHistoryTable(entries=16, width=4)
        table.push(0x1000, True)
        table.push(0x1004, False)
        table.push(0x1000, True)
        assert table.read(0x1000) == 0b11
        assert table.read(0x1004) == 0b0

    def test_width_truncation(self):
        table = LocalHistoryTable(entries=4, width=2)
        for _ in range(5):
            table.push(0x0, True)
        assert table.read(0x0) == 0b11

    def test_aliasing_across_table_size(self):
        table = LocalHistoryTable(entries=4, width=4)
        # PCs 0x0 and 0x40 (instruction index 0 and 16) alias mod 4 entries.
        table.push(0x0, True)
        assert table.read(0x40) == 1

    def test_storage(self):
        assert LocalHistoryTable(1024, 10).storage_bits == 10240

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            LocalHistoryTable(10, 4)
        with pytest.raises(ValueError):
            LocalHistoryTable(16, 0)
