"""Unit tests for the shared-memory plane fabric (repro.sim.planes)."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.history.providers import (BranchGhistProvider, ev8_info_provider,
                                     seed_plane_cache)
from repro.obs import Telemetry, use_telemetry
from repro.sim import planes
from repro.traces.model import Trace
from repro.workloads.spec95 import spec95_trace


@pytest.fixture()
def store():
    """A fresh process-wide store, torn down (and its attachments released)
    after the test so no segment outlives the test that published it."""
    planes.release_plane_store()
    planes.release_attachments()
    store = planes.get_plane_store()
    if not store.available:
        pytest.skip("shared memory unavailable on this platform")
    yield store
    planes.release_attachments()
    planes.release_plane_store()


def small_trace(name: str = "gcc", branches: int = 2_000) -> Trace:
    trace = spec95_trace(name, branches)
    # Fresh arrays → fresh Trace object, so WeakKey-cached manifests and
    # materialization entries from other tests never alias this one.
    return Trace(trace.name, trace.starts.copy(),
                 trace.num_instructions.copy(), trace.kinds.copy(),
                 trace.takens.copy(), trace.next_starts.copy())


class TestPublishAttachRoundtrip:
    def test_trace_roundtrip_is_bit_identical(self, store):
        trace = small_trace()
        manifest = store.publish_trace(trace)
        assert manifest is not None and manifest.kind == "trace"
        attached = planes.attach_trace(manifest)
        assert attached.name == trace.name
        for column in ("starts", "num_instructions", "kinds", "takens",
                       "next_starts"):
            np.testing.assert_array_equal(getattr(attached, column),
                                          getattr(trace, column))

    def test_attached_planes_are_read_only(self, store):
        manifest = store.publish_trace(small_trace())
        arrays = planes.attach(manifest)
        with pytest.raises(ValueError):
            arrays["starts"][0] = 0
        planes.detach(manifest.segment)

    def test_batch_roundtrip_matches_local_materialize(self, store):
        trace = small_trace()
        provider = ev8_info_provider()
        manifest = store.publish_batch(trace, provider)
        assert manifest is not None and manifest.kind == "batch"
        assert manifest.provider_key == provider.plane_key()
        attached = planes.attach_batch(manifest)
        local = ev8_info_provider().materialize(trace)
        for column in ("history", "address", "branch_pc", "path", "takens",
                       "bank"):
            expected = getattr(local, column)
            actual = getattr(attached, column)
            if expected is None:
                assert actual is None
            else:
                np.testing.assert_array_equal(actual, expected)

    def test_publish_is_idempotent_per_trace(self, store):
        trace = small_trace()
        assert store.publish_trace(trace) is store.publish_trace(trace)
        provider = ev8_info_provider()
        assert (store.publish_batch(trace, provider)
                is store.publish_batch(trace, ev8_info_provider()))
        # one trace segment + one batch segment, not four
        assert len(store.segments) == 2

    def test_unkeyable_provider_publishes_nothing(self, store):
        trace = small_trace()
        provider = BranchGhistProvider(capacity=65)  # > 64-bit envelope
        assert provider.plane_key() is None
        assert store.publish_batch(trace, provider) is None


class TestRefcounting:
    def test_attach_detach_refcount(self, store):
        manifest = store.publish_trace(small_trace())
        first = planes.attach(manifest)
        second = planes.attach(manifest)
        assert first is second  # one mapping, refcounted
        planes.detach(manifest.segment)
        assert manifest.segment in planes._ATTACHMENTS
        planes.detach(manifest.segment)
        assert manifest.segment not in planes._ATTACHMENTS
        planes.detach(manifest.segment)  # over-detach is a no-op

    def test_attach_trace_is_cached_per_segment(self, store):
        manifest = store.publish_trace(small_trace())
        assert planes.attach_trace(manifest) is planes.attach_trace(manifest)


class TestManifestVerification:
    def test_digest_mismatch_rejected(self, store):
        manifest = store.publish_trace(small_trace())
        bad_plane = dataclasses.replace(manifest.planes[0],
                                        digest="0" * 32)
        bad = dataclasses.replace(manifest,
                                  planes=(bad_plane,) + manifest.planes[1:])
        with pytest.raises(planes.PlaneError, match="manifest digest"):
            planes.attach(bad)
        assert bad.segment not in planes._ATTACHMENTS  # nothing half-mapped

    def test_missing_segment_rejected(self, store):
        manifest = store.publish_trace(small_trace())
        gone = dataclasses.replace(manifest,
                                   segment=f"{planes.SEGMENT_PREFIX}-0-999")
        with pytest.raises(planes.PlaneError, match="cannot attach"):
            planes.attach(gone)

    def test_truncated_segment_rejected(self, store):
        manifest = store.publish_trace(small_trace())
        lying = dataclasses.replace(manifest, nbytes=manifest.nbytes * 100)
        with pytest.raises(planes.PlaneError, match="bytes"):
            planes.attach(lying)


class TestLifecycle:
    def test_release_unlinks_everything(self, store):
        manifest = store.publish_trace(small_trace())
        store.release()
        assert store.segments == ()
        with pytest.raises(planes.PlaneError):
            planes.attach(manifest)

    def test_release_plane_store_resets_singleton(self, store):
        store.publish_trace(small_trace())
        planes.release_plane_store()
        fresh = planes.get_plane_store()
        assert fresh is not store
        assert fresh.segments == ()

    def test_unavailable_store_returns_none(self, store):
        store._unavailable_reason = "simulated platform failure"
        assert store.publish_trace(small_trace()) is None
        assert not store.available


class TestSeedPlaneCache:
    def test_adoption_prevents_recompute(self, store):
        trace = small_trace()
        provider = ev8_info_provider()
        batch = provider.materialize(trace)
        fresh = small_trace()  # same content, distinct object → cold caches
        sink = Telemetry()
        with use_telemetry(sink):
            assert seed_plane_cache(provider.plane_key(), fresh, batch)
            adopted = ev8_info_provider().materialize(fresh)
        assert adopted is batch  # cache hit, not a recompute
        assert "provider.materialize_computed" not in sink.counters

    def test_second_seed_is_a_noop(self, store):
        trace = small_trace()
        provider = ev8_info_provider()
        batch = provider.materialize(trace)
        assert not seed_plane_cache(provider.plane_key(), trace, batch)

    def test_unknown_key_is_rejected(self):
        assert not seed_plane_cache(None, None, None)
        assert not seed_plane_cache(("mystery", 1), None, None)


class TestFallbackEquivalence:
    def test_sweep_parallel_without_shared_memory(self, store, monkeypatch):
        """With the fabric unavailable the sweep pickles traces into the
        pool and workers materialize locally — same points either way."""
        from tests_support_sweep import history_predictor
        from repro.sim.sweep import sweep, sweep_parallel

        traces = {"gcc": small_trace("gcc"), "li": small_trace("li")}
        values = [5, 8]
        expected = sweep(history_predictor, values, traces,
                         ev8_info_provider, engine="batched", use_cache=False)
        store._unavailable_reason = "simulated platform failure"
        actual = sweep_parallel(history_predictor, values, traces,
                                ev8_info_provider, engine="batched",
                                max_workers=2, use_cache=False)
        assert [p.per_benchmark for p in actual] \
            == [p.per_benchmark for p in expected]
        assert [p.mean_misp_per_ki for p in actual] \
            == [p.mean_misp_per_ki for p in expected]
