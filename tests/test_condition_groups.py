"""Tests for condition groups and the predicate pool — the correlation
substrate of the synthetic workloads."""

import numpy as np
import pytest

from repro.workloads.behaviors import (
    ConditionCell,
    ConditionFollowerBehavior,
    ConditionLeaderBehavior,
    PredicateBehavior,
    PredicatePool,
)


class FakeContext:
    def __init__(self):
        self.global_history = 0
        self.time = 0
        self.counts = {}

    def occurrence(self, branch_id):
        return self.counts.get(branch_id, 0)


@pytest.fixture
def rng():
    return np.random.default_rng(21)


@pytest.fixture
def ctx():
    return FakeContext()


class TestConditionGroups:
    def test_leader_publishes_to_cell(self, rng, ctx):
        cell = ConditionCell()
        leader = ConditionLeaderBehavior(rng, cell, p_taken=1.0)
        assert leader.next(0, ctx) is True
        assert cell.value is True

    def test_follower_copies_cell(self, rng, ctx):
        cell = ConditionCell()
        leader = ConditionLeaderBehavior(rng, cell, p_taken=0.5)
        follower = ConditionFollowerBehavior(rng, cell, invert=False)
        for _ in range(50):
            outcome = leader.next(0, ctx)
            assert follower.next(1, ctx) == outcome
            assert follower.next(1, ctx) == outcome  # stable until redraw

    def test_inverted_follower(self, rng, ctx):
        cell = ConditionCell()
        leader = ConditionLeaderBehavior(rng, cell, p_taken=0.5)
        follower = ConditionFollowerBehavior(rng, cell, invert=True)
        for _ in range(20):
            outcome = leader.next(0, ctx)
            assert follower.next(1, ctx) == (not outcome)

    def test_leader_draw_rate(self, rng, ctx):
        cell = ConditionCell()
        leader = ConditionLeaderBehavior(rng, cell, p_taken=0.2)
        rate = sum(leader.next(0, ctx) for _ in range(5000)) / 5000
        assert rate == pytest.approx(0.2, abs=0.03)

    def test_leader_validates_probability(self, rng):
        with pytest.raises(ValueError):
            ConditionLeaderBehavior(rng, ConditionCell(), p_taken=1.5)

    def test_follower_random_inversion_is_deterministic_per_seed(self, ctx):
        cell = ConditionCell()
        a = ConditionFollowerBehavior(np.random.default_rng(5), cell)
        b = ConditionFollowerBehavior(np.random.default_rng(5), cell)
        assert a.invert == b.invert


class TestPredicatePool:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            PredicatePool(rng, 0, [])
        with pytest.raises(ValueError):
            PredicatePool(rng, 2, [0.1])
        with pytest.raises(ValueError):
            PredicatePool(rng, 1, [0.0])

    def test_values_stable_within_persistence(self, rng):
        pool = PredicatePool(rng, 4, [1e-9] * 4)  # effectively never flips
        initial = [pool.value(i, 0) for i in range(4)]
        assert [pool.value(i, 10_000) for i in range(4)] == initial

    def test_values_flip_over_time(self, rng):
        pool = PredicatePool(rng, 1, [0.5])
        observed = {pool.value(0, t) for t in range(0, 100)}
        assert observed == {True, False}

    def test_time_monotonic_consistency(self, rng):
        """Reading at the same time twice gives the same value; advancing
        never rewinds."""
        pool = PredicatePool(rng, 2, [0.1, 0.2])
        at_50 = pool.value(0, 50)
        assert pool.value(0, 50) == at_50
        pool.value(1, 80)
        assert pool.value(0, 80) in (True, False)

    def test_mean_persistence(self, rng):
        pool = PredicatePool(rng, 1, [0.01])
        assert pool.mean_persistence(0) == pytest.approx(100.0)

    def test_flip_frequency_tracks_probability(self, rng):
        pool = PredicatePool(rng, 1, [0.05])
        flips = 0
        previous = pool.value(0, 0)
        for t in range(1, 4000):
            current = pool.value(0, t)
            if current != previous:
                flips += 1
            previous = current
        assert flips == pytest.approx(4000 * 0.05, rel=0.3)


class TestPredicateBehavior:
    def test_single_predicate_reflection(self, rng, ctx):
        pool = PredicatePool(rng, 2, [1e-9, 1e-9])
        behavior = PredicateBehavior(rng, pool, [0])
        expected = pool.value(0, 0) ^ behavior.invert
        assert behavior.next(0, ctx) == expected

    def test_multi_predicate_deterministic(self, rng, ctx):
        pool = PredicatePool(rng, 3, [1e-9] * 3)
        behavior = PredicateBehavior(rng, pool, [0, 2])
        first = behavior.next(0, ctx)
        assert all(behavior.next(0, ctx) == first for _ in range(10))

    def test_validation(self, rng):
        pool = PredicatePool(rng, 2, [0.1, 0.1])
        with pytest.raises(ValueError):
            PredicateBehavior(rng, pool, [])
        with pytest.raises(ValueError):
            PredicateBehavior(rng, pool, [5])
        with pytest.raises(ValueError):
            PredicateBehavior(rng, pool, list(range(9)))


class TestGroupsInPrograms:
    def test_followers_capturable_by_history_not_counters(self, rng):
        """The design property: a balanced-leader group's followers defeat a
        bimodal counter but fall to a history predictor."""
        from repro.predictors import BimodalPredictor, GsharePredictor
        from repro.sim.driver import simulate
        from repro.workloads.cfg import (
            DispatchNode, Function, IfNode, LoopNode, Program, Sequence,
            StaticBranch, Straight)
        from repro.workloads.behaviors import LoopBehavior

        cell = ConditionCell()
        leader = IfNode(StaticBranch(0, ConditionLeaderBehavior(
            rng, cell, 0.5)), Straight(2), lead=1)
        followers = [IfNode(StaticBranch(i + 1, ConditionFollowerBehavior(
            rng, cell)), Straight(2), lead=2) for i in range(3)]
        body = Sequence([leader] + followers)
        loop = LoopNode(StaticBranch(9, LoopBehavior(rng, 1_000_000)), body)
        function = Function("f", loop)
        program = Program("groups", [function],
                          DispatchNode(rng, [function], np.array([[1.0]])),
                          code_base=0x2000)
        trace = program.run(30_000)
        bimodal = simulate(BimodalPredictor(1 << 12), trace)
        gshare = simulate(GsharePredictor(1 << 12, 8), trace)
        # 4 of 5 branches per iteration relate to the condition; the
        # followers are free accuracy for the history predictor only.
        assert gshare.mispredictions < bimodal.mispredictions * 0.55
