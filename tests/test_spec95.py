"""Tests for the SPECINT95 stand-in profiles."""

import pytest

from repro.traces.stats import compute_statistics
from repro.workloads.spec95 import (
    SPEC95_BENCHMARKS,
    TABLE2_STATIC_BRANCHES,
    default_trace_branches,
    profile_for,
    spec95_profiles,
    spec95_trace,
)


class TestProfiles:
    def test_all_eight_benchmarks_present(self):
        profiles = spec95_profiles()
        assert set(profiles) == set(SPEC95_BENCHMARKS)
        assert len(SPEC95_BENCHMARKS) == 8

    def test_static_budgets_match_table2(self):
        for name in SPEC95_BENCHMARKS:
            assert profile_for(name).static_branches == \
                TABLE2_STATIC_BRANCHES[name]

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            profile_for("mcf")  # a SPEC2000 benchmark, not SPECINT95

    def test_profiles_are_distinct(self):
        bases = {profile_for(name).code_base for name in SPEC95_BENCHMARKS}
        assert len(bases) == 8  # distinct address spaces


class TestTraces:
    def test_trace_is_cached_in_memory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        import repro.workloads.spec95 as spec95
        monkeypatch.setattr(spec95, "_shared_cache", None)
        first = spec95.spec95_trace("compress", 2000)
        second = spec95.spec95_trace("compress", 2000)
        assert first is second

    def test_requested_length_honoured(self):
        trace = spec95_trace("li", 3000)
        assert trace.conditional_count == 3000

    def test_default_length_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_BRANCHES", "123456")
        assert default_trace_branches() == 123456

    def test_default_length_env_rejects_tiny(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_BRANCHES", "10")
        with pytest.raises(ValueError):
            default_trace_branches()


class TestCharacteristics:
    """The stand-ins must land in the calibrated ranges that the experiment
    shapes rely on."""

    def test_compress_has_tiny_footprint(self, compress_trace):
        stats = compute_statistics(compress_trace)
        assert stats.static_conditional <= TABLE2_STATIC_BRANCHES["compress"]
        assert stats.static_conditional >= 20

    def test_gcc_has_large_footprint(self, gcc_trace):
        stats = compute_statistics(gcc_trace)
        assert stats.static_conditional > 150

    def test_footprint_ordering_matches_table2(self, gcc_trace,
                                               compress_trace):
        # gcc exercises far more static branches than compress at any
        # trace length.
        assert (compute_statistics(gcc_trace).static_conditional
                > 3 * compute_statistics(compress_trace).static_conditional)

    def test_lghist_ratio_above_one(self, gcc_trace, vortex_trace):
        for trace in (gcc_trace, vortex_trace):
            assert compute_statistics(trace).lghist_to_ghist_ratio > 1.0

    def test_taken_rates_plausible(self, gcc_trace, vortex_trace,
                                   compress_trace):
        for trace in (gcc_trace, vortex_trace, compress_trace):
            rate = compute_statistics(trace).taken_rate
            assert 0.2 < rate < 0.8
