"""Module-level (picklable) factories shared by the sweep/fabric tests.

``sweep_parallel`` ships factories across process boundaries, so the test
factories must live in an importable module rather than as test-local
closures.
"""

from __future__ import annotations

from repro.predictors.twobcgskew import TableConfig, TwoBcGskewPredictor


def history_predictor(history: int) -> TwoBcGskewPredictor:
    """A small Table-1-shaped 2Bc-gskew with ``history`` as the swept G0
    length (half-size hysteresis on G0/Meta, like the EV8 configuration)."""
    return TwoBcGskewPredictor(
        TableConfig(256, 4), TableConfig(512, history, 256),
        TableConfig(512, history + 4), TableConfig(512, history + 2, 256))
