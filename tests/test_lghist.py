"""Tests for lghist: block compression, path bit, fetch-block-age delay
(Section 5.1 of the paper)."""

import pytest

from repro.history.lghist import LghistRegister, lghist_bit
from repro.traces.fetch import FetchBlock


def block(start=0x1000, branch_pcs=(), branch_outcomes=(), ended_taken=False,
          n=4):
    return FetchBlock(start, n, list(branch_pcs), list(branch_outcomes),
                      ended_taken)


class TestLghistBit:
    def test_no_conditional_no_bit(self):
        assert lghist_bit(block()) is None

    def test_outcome_only_without_path(self):
        taken_block = block(branch_pcs=[0x1008], branch_outcomes=[True])
        assert lghist_bit(taken_block, include_path=False) == 1
        not_taken = block(branch_pcs=[0x1008], branch_outcomes=[False])
        assert lghist_bit(not_taken, include_path=False) == 0

    def test_path_bit_is_pc_bit_4(self):
        # PC 0x1008: bit 4 = 0 -> bit equals the outcome.
        assert lghist_bit(block(branch_pcs=[0x1008],
                                branch_outcomes=[True])) == 1
        # PC 0x1010: bit 4 = 1 -> bit is the outcome inverted.
        assert lghist_bit(block(branch_pcs=[0x1010],
                                branch_outcomes=[True])) == 0
        assert lghist_bit(block(branch_pcs=[0x1010],
                                branch_outcomes=[False])) == 1

    def test_last_branch_selected(self):
        multi = block(branch_pcs=[0x1000, 0x1008], branch_outcomes=[True, False])
        assert lghist_bit(multi, include_path=False) == 0


class TestRegisterNoDelay:
    def test_shift_order(self):
        register = LghistRegister(include_path=False)
        register.push_block(block(branch_pcs=[0x0], branch_outcomes=[True]))
        register.push_block(block(branch_pcs=[0x0], branch_outcomes=[False]))
        register.push_block(block(branch_pcs=[0x0], branch_outcomes=[True]))
        assert register.value() == 0b101

    def test_blocks_without_branches_insert_nothing(self):
        register = LghistRegister(include_path=False)
        register.push_block(block(branch_pcs=[0x0], branch_outcomes=[True]))
        register.push_block(block())  # no conditional
        register.push_block(block())
        assert register.value() == 0b1

    def test_capacity(self):
        register = LghistRegister(include_path=False, capacity=2)
        for outcome in (True, True, True, False):
            register.push_block(block(branch_pcs=[0x0],
                                      branch_outcomes=[outcome]))
        assert register.value() == 0b10

    def test_value_length_mask(self):
        register = LghistRegister(include_path=False)
        for outcome in (True, True, True):
            register.push_block(block(branch_pcs=[0x0],
                                      branch_outcomes=[outcome]))
        assert register.value(2) == 0b11
        with pytest.raises(ValueError):
            register.value(100)


class TestDelay:
    """The delay is measured in fetch *blocks*, not history bits: blocks
    without conditional branches advance the pipeline too."""

    def test_bits_invisible_for_delay_blocks(self):
        register = LghistRegister(include_path=False, delay_blocks=3)
        register.push_block(block(branch_pcs=[0x0], branch_outcomes=[True]))
        assert register.value() == 0  # still in flight
        register.push_block(block(branch_pcs=[0x0], branch_outcomes=[False]))
        register.push_block(block(branch_pcs=[0x0], branch_outcomes=[False]))
        assert register.value() == 0  # three blocks pending
        register.push_block(block(branch_pcs=[0x0], branch_outcomes=[False]))
        assert register.value() == 0b1  # the first bit just landed

    def test_branchless_blocks_advance_the_pipeline(self):
        register = LghistRegister(include_path=False, delay_blocks=3)
        register.push_block(block(branch_pcs=[0x0], branch_outcomes=[True]))
        for _ in range(3):
            register.push_block(block())  # no branches
        assert register.value() == 0b1

    def test_delay_zero_equals_immediate(self):
        immediate = LghistRegister(include_path=False, delay_blocks=0)
        delayed = LghistRegister(include_path=False, delay_blocks=2)
        stream = [block(branch_pcs=[0x0], branch_outcomes=[i % 3 == 0])
                  for i in range(20)]
        for b in stream:
            immediate.push_block(b)
            delayed.push_block(b)
        # After the same stream, the delayed register equals the immediate
        # register as it was 2 blocks (= 2 bits here) earlier.
        assert delayed.value() == immediate.value() >> 2

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            LghistRegister(delay_blocks=-1)

    def test_reset_clears_pending(self):
        register = LghistRegister(include_path=False, delay_blocks=2)
        register.push_block(block(branch_pcs=[0x0], branch_outcomes=[True]))
        register.reset()
        for _ in range(3):
            register.push_block(block())
        assert register.value() == 0
