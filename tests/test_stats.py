"""Tests for trace statistics (Tables 2 and 3 machinery)."""

import pytest

from repro.traces.model import TerminatorKind, TraceBuilder
from repro.traces.stats import compute_statistics


def chain_trace():
    """Two not-taken branches in one fetch block, then a taken branch in its
    own block: 3 branches over 2 lghist bits."""
    builder = TraceBuilder("chain")
    builder.add(0x1000, 2, TerminatorKind.CONDITIONAL, False, 0x1008)
    builder.add(0x1008, 2, TerminatorKind.CONDITIONAL, False, 0x1010)
    builder.add(0x1010, 4, TerminatorKind.JUMP, True, 0x2000)
    builder.add(0x2000, 2, TerminatorKind.CONDITIONAL, True, 0x1000)
    return builder.build()


class TestStatistics:
    def test_counts(self):
        stats = compute_statistics(chain_trace())
        assert stats.dynamic_conditional == 3
        assert stats.static_conditional == 3
        assert stats.instruction_count == 10
        assert stats.fetch_block_count == 2
        assert stats.lghist_bits == 2

    def test_ratio(self):
        stats = compute_statistics(chain_trace())
        assert stats.lghist_to_ghist_ratio == pytest.approx(1.5)

    def test_density(self):
        stats = compute_statistics(chain_trace())
        assert stats.branches_per_kilo_instruction == pytest.approx(300.0)
        assert stats.instructions_per_branch == pytest.approx(10 / 3)

    def test_taken_rate(self):
        stats = compute_statistics(chain_trace())
        assert stats.taken_rate == pytest.approx(1 / 3)

    def test_thousands(self):
        stats = compute_statistics(chain_trace())
        assert stats.dynamic_conditional_thousands == pytest.approx(0.003)

    def test_scaling(self):
        stats = compute_statistics(chain_trace())
        scaled = stats.scaled_to_instructions(100_000_000)
        assert scaled.instruction_count == 100_000_000
        assert scaled.dynamic_conditional == 30_000_000
        assert scaled.static_conditional == stats.static_conditional
        # Ratios are scale-invariant.
        assert scaled.lghist_to_ghist_ratio == pytest.approx(
            stats.lghist_to_ghist_ratio)

    def test_no_branches(self):
        builder = TraceBuilder("jumps")
        builder.add(0x0, 4, TerminatorKind.JUMP, True, 0x0)
        stats = compute_statistics(builder.build())
        assert stats.lghist_to_ghist_ratio == 0.0
        assert stats.branches_per_kilo_instruction == 0.0
        assert stats.instructions_per_branch == 4.0


class TestOnWorkloads:
    def test_real_profile_statistics_sane(self, gcc_trace):
        stats = compute_statistics(gcc_trace)
        assert stats.dynamic_conditional == gcc_trace.conditional_count
        # lghist always compresses at least 1:1.
        assert stats.lghist_to_ghist_ratio >= 1.0
        # Densities within plausible integer-code range.
        assert 50 < stats.branches_per_kilo_instruction < 350
        assert 0.2 < stats.taken_rate < 0.8
