"""Tests for trace serialisation and caching."""

import numpy as np
import pytest

from repro.traces.io import TraceCache, load_trace, save_trace
from repro.traces.model import TerminatorKind, TraceBuilder


def demo_trace(name="io-demo"):
    builder = TraceBuilder(name)
    builder.add(0x1000, 3, TerminatorKind.CONDITIONAL, True, 0x2000)
    builder.add(0x2000, 1, TerminatorKind.JUMP, True, 0x1000)
    builder.add(0x1000, 3, TerminatorKind.CONDITIONAL, False, 0x100C)
    return builder.build()


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        trace = demo_trace()
        path = tmp_path / "demo.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert len(loaded) == len(trace)
        np.testing.assert_array_equal(loaded.starts, trace.starts)
        np.testing.assert_array_equal(loaded.takens, trace.takens)
        np.testing.assert_array_equal(loaded.kinds, trace.kinds)
        assert loaded.branches() == trace.branches()

    def test_save_creates_directories(self, tmp_path):
        save_trace(demo_trace(), tmp_path / "a" / "b" / "demo.npz")
        assert (tmp_path / "a" / "b" / "demo.npz").exists()

    def test_bad_version_rejected(self, tmp_path):
        trace = demo_trace()
        path = tmp_path / "demo.npz"
        np.savez_compressed(path, format_version=np.array([999]),
                            name=np.array(["x"]), starts=trace.starts,
                            num_instructions=trace.num_instructions,
                            kinds=trace.kinds, takens=trace.takens,
                            next_starts=trace.next_starts)
        with pytest.raises(ValueError, match="version"):
            load_trace(path)


class TestCache:
    def test_generates_once(self, tmp_path):
        cache = TraceCache(tmp_path)
        calls = []

        def generate():
            calls.append(1)
            return demo_trace()

        first = cache.get_or_generate("demo", {"n": 3}, generate)
        second = cache.get_or_generate("demo", {"n": 3}, generate)
        assert len(calls) == 1
        assert first is second  # in-memory layer

    def test_disk_persistence_across_instances(self, tmp_path):
        calls = []

        def generate():
            calls.append(1)
            return demo_trace()

        TraceCache(tmp_path).get_or_generate("demo", {"n": 3}, generate)
        reloaded = TraceCache(tmp_path).get_or_generate("demo", {"n": 3},
                                                        generate)
        assert len(calls) == 1
        assert reloaded.conditional_count == 2

    def test_different_parameters_different_entries(self, tmp_path):
        cache = TraceCache(tmp_path)
        calls = []

        def generate():
            calls.append(1)
            return demo_trace()

        cache.get_or_generate("demo", {"n": 3}, generate)
        cache.get_or_generate("demo", {"n": 4}, generate)
        assert len(calls) == 2

    def test_corrupt_entry_regenerated(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.get_or_generate("demo", {"n": 3}, demo_trace)
        cache.clear_memory()
        for file in tmp_path.glob("*.npz"):
            file.write_bytes(b"garbage")
        regenerated = cache.get_or_generate("demo", {"n": 3}, demo_trace)
        assert regenerated.conditional_count == 2

    def test_garbage_npz_regenerated_and_overwritten(self, tmp_path):
        # A corrupt archive is not a zip file at all, so np.load raises
        # zipfile.BadZipFile rather than a numpy error; the cache must treat
        # it like any other corrupt entry: regenerate and rewrite the file.
        cache = TraceCache(tmp_path)
        cache.get_or_generate("demo", {"n": 3}, demo_trace)
        cache.clear_memory()
        (entry,) = tmp_path.glob("*.npz")
        entry.write_bytes(b"not a zip archive")

        calls = []

        def generate():
            calls.append(1)
            return demo_trace()

        regenerated = cache.get_or_generate("demo", {"n": 3}, generate)
        assert calls == [1]
        assert regenerated.conditional_count == 2
        # The on-disk entry was overwritten with a valid archive: a fresh
        # cache instance loads it without regenerating.
        reloaded = TraceCache(tmp_path).get_or_generate("demo", {"n": 3},
                                                        generate)
        assert calls == [1]
        assert reloaded.conditional_count == 2

    def test_clear_memory_keeps_disk(self, tmp_path):
        cache = TraceCache(tmp_path)
        calls = []

        def generate():
            calls.append(1)
            return demo_trace()

        cache.get_or_generate("demo", {"n": 3}, generate)
        cache.clear_memory()
        cache.get_or_generate("demo", {"n": 3}, generate)
        assert len(calls) == 1  # reloaded from disk, not regenerated
