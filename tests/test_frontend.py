"""Tests for the EV8 front-end model (Section 2 / Fig 3)."""

import pytest

from repro.ev8.frontend import FrontEnd, LinePredictor
from repro.traces.model import TerminatorKind, TraceBuilder
from repro.workloads.spec95 import spec95_trace


class TestLinePredictor:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinePredictor(1000)

    def test_learns_stable_successor(self):
        predictor = LinePredictor(256)
        predictor.train(0x1000, 0x2000)
        assert predictor.predict(0x1000) == 0x2000

    def test_unknown_block_predicts_zero(self):
        assert LinePredictor(256).predict(0x1234) == 0

    def test_aliasing_causes_mispredictions(self):
        """The line predictor's limited hashing aliases distinct blocks —
        the source of its 'relatively low' accuracy."""
        predictor = LinePredictor(16)
        # Find two different addresses mapping to the same entry.
        collisions = {}
        pair = None
        for address in range(0, 1 << 14, 32):
            index = predictor._index(address)
            if index in collisions and collisions[index] != address:
                pair = (collisions[index], address)
                break
            collisions[index] = address
        assert pair is not None
        a, b = pair
        predictor.train(a, 0xAAA0)
        predictor.train(b, 0xBBB0)
        assert predictor.predict(a) == 0xBBB0  # clobbered


class TestFrontEnd:
    def test_bank_conflicts_zero_on_workload(self):
        trace = spec95_trace("m88ksim", 6000)
        stats = FrontEnd().run(trace)
        assert stats.bank_conflicts == 0
        assert stats.blocks > 0
        assert stats.cycles == (stats.blocks + 1) // 2

    def test_line_accuracy_in_plausible_band(self):
        trace = spec95_trace("m88ksim", 6000)
        stats = FrontEnd().run(trace)
        # "Relatively low": well below a real conditional predictor, but far
        # better than chance.
        assert 0.5 < stats.line_accuracy < 0.99

    def test_prediction_bandwidth_histogram(self):
        trace = spec95_trace("gcc", 6000)
        stats = FrontEnd().run(trace)
        assert sum(stats.predictions_per_cycle.values()) == stats.cycles
        total = sum(count * cycles for count, cycles
                    in stats.predictions_per_cycle.items())
        assert total == stats.conditional_branches
        # The architectural cap: never more than 16 per cycle.
        assert stats.max_predictions_in_a_cycle <= 16

    def test_perfectly_periodic_stream_line_predicts_well(self):
        builder = TraceBuilder("periodic")
        for _ in range(500):
            builder.add(0x1000, 4, TerminatorKind.JUMP, True, 0x2000)
            builder.add(0x2000, 4, TerminatorKind.JUMP, True, 0x1000)
        stats = FrontEnd().run(builder.build())
        assert stats.line_accuracy > 0.95

    def test_empty_statistics_defaults(self):
        from repro.ev8.frontend import FrontEndStatistics
        stats = FrontEndStatistics()
        assert stats.line_accuracy == 0.0
        assert stats.max_predictions_in_a_cycle == 0
