"""Tests for index-distribution quality metrics."""

import numpy as np
import pytest

from repro.indexing.analysis import (
    assess_indices,
    coefficient_of_variation,
    hot_fraction,
    index_counts,
    normalized_entropy,
)


class TestCounts:
    def test_histogram(self):
        counts = index_counts([0, 1, 1, 3], 4)
        assert list(counts) == [1, 2, 0, 1]

    def test_wraps_modulo_size(self):
        counts = index_counts([5], 4)
        assert counts[1] == 1

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            index_counts([0], 0)


class TestEntropy:
    def test_uniform_is_one(self):
        counts = np.full(16, 5)
        assert normalized_entropy(counts) == pytest.approx(1.0)

    def test_single_hot_entry_is_zero(self):
        counts = np.zeros(16, dtype=int)
        counts[3] = 100
        assert normalized_entropy(counts) == pytest.approx(0.0)

    def test_empty_is_zero(self):
        assert normalized_entropy(np.zeros(8, dtype=int)) == 0.0

    def test_partial_use(self):
        counts = np.zeros(4, dtype=int)
        counts[0] = counts[1] = 10
        assert normalized_entropy(counts) == pytest.approx(0.5)


class TestCv:
    def test_uniform_is_zero(self):
        assert coefficient_of_variation(np.full(8, 3)) == 0.0

    def test_empty_is_zero(self):
        assert coefficient_of_variation(np.zeros(8)) == 0.0

    def test_skewed_positive(self):
        counts = np.array([100, 0, 0, 0])
        assert coefficient_of_variation(counts) > 1.0


class TestHotFraction:
    def test_uniform(self):
        counts = np.full(100, 2)
        assert hot_fraction(counts, 0.1) == pytest.approx(0.1)

    def test_fully_concentrated(self):
        counts = np.zeros(100, dtype=int)
        counts[7] = 50
        assert hot_fraction(counts, 0.1) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            hot_fraction(np.ones(4), 0.0)


class TestAssess:
    def test_bundle(self):
        quality = assess_indices(range(64), 64)
        assert quality.entropy == pytest.approx(1.0)
        assert quality.used_fraction == 1.0
        assert quality.cv == pytest.approx(0.0)
        assert "IndexQuality" in repr(quality)

    def test_discriminates_good_from_bad(self):
        """The metric must rank a hashed distribution above a clustered one
        — this is the property Fig 9 turns on."""
        clustered = assess_indices([i % 8 for i in range(1000)], 64)
        spread = assess_indices([(i * 2654435761) % 64 for i in range(1000)],
                                64)
        assert spread.entropy > clustered.entropy
        assert spread.used_fraction > clustered.used_fraction
        assert spread.hot10 < clustered.hot10
