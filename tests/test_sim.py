"""Tests for the simulation layer: driver, metrics, comparisons, sweeps."""

import pytest

from conftest import simple_loop_trace
from repro.history.providers import BlockLghistProvider, BranchGhistProvider
from repro.predictors import BimodalPredictor, GsharePredictor
from repro.sim.compare import run_comparison
from repro.sim.driver import simulate
from repro.sim.metrics import (
    SimulationResult,
    aggregate_misp_per_ki,
    misp_per_ki,
)
from repro.sim.sweep import best_history_length, sweep


class TestMetrics:
    def test_misp_per_ki(self):
        assert misp_per_ki(5, 1000) == 5.0
        assert misp_per_ki(0, 100) == 0.0

    def test_misp_per_ki_validation(self):
        with pytest.raises(ValueError):
            misp_per_ki(1, 0)

    def test_result_properties(self):
        result = SimulationResult("p", "t", branches=200, mispredictions=20,
                                  instructions=2000)
        assert result.misp_per_ki == 10.0
        assert result.misprediction_rate == 0.1
        assert result.accuracy == 0.9
        assert "p on t" in str(result)

    def test_zero_branches(self):
        result = SimulationResult("p", "t", 0, 0, 100)
        assert result.misprediction_rate == 0.0

    def test_aggregate(self):
        results = [SimulationResult("p", "a", 10, 1, 1000),
                   SimulationResult("p", "b", 10, 3, 1000)]
        assert aggregate_misp_per_ki(results) == 2.0
        with pytest.raises(ValueError):
            aggregate_misp_per_ki([])


class TestDriver:
    def test_counts_add_up(self):
        trace = simple_loop_trace(iterations=100)
        result = simulate(BimodalPredictor(64), trace)
        assert result.branches == 100
        assert result.instructions == trace.instruction_count
        assert 0 <= result.mispredictions <= result.branches

    def test_bimodal_on_loop_converges(self):
        # Always-taken loop branch: only cold-start mispredictions.
        trace = simple_loop_trace(iterations=500,
                                  taken_pattern=[True])
        result = simulate(BimodalPredictor(64), trace)
        assert result.mispredictions <= 2

    def test_default_provider_is_per_branch_ghist(self):
        trace = simple_loop_trace(iterations=300,
                                  taken_pattern=[True, False])
        # gshare with history 1 nails the alternating pattern.
        result = simulate(GsharePredictor(256, 1), trace)
        assert result.misprediction_rate < 0.05

    def test_block_provider_supported(self):
        trace = simple_loop_trace(iterations=300, taken_pattern=[True])
        result = simulate(GsharePredictor(256, 4), trace,
                          BlockLghistProvider())
        assert result.misprediction_rate < 0.05

    def test_warmup_excluded(self):
        trace = simple_loop_trace(iterations=100, taken_pattern=[True])
        result = simulate(BimodalPredictor(64), trace, warmup_branches=50)
        assert result.branches == 50
        assert result.mispredictions == 0  # the cold misses fell in warmup

    def test_deterministic(self, compress_trace):
        a = simulate(GsharePredictor(1 << 14, 10), compress_trace)
        b = simulate(GsharePredictor(1 << 14, 10), compress_trace)
        assert a.mispredictions == b.mispredictions


class TestComparison:
    def test_grid_and_rendering(self, compress_trace, vortex_trace):
        configs = {
            "bimodal": lambda: BimodalPredictor(1 << 14),
            "gshare": lambda: GsharePredictor(1 << 14, 8),
        }
        traces = {"compress": compress_trace, "vortex": vortex_trace}
        table = run_comparison(configs, traces,
                               provider_factory=BranchGhistProvider)
        assert table.config_names == ["bimodal", "gshare"]
        assert table.benchmark_names == ["compress", "vortex"]
        assert table.misp_per_ki("gshare", "compress") > 0
        series = table.series("bimodal")
        assert len(series) == 2
        assert table.mean("bimodal") == pytest.approx(sum(series) / 2)
        rendered = table.render("title")
        assert "title" in rendered
        assert "compress" in rendered and "amean" in rendered
        dumped = table.to_dict()
        assert dumped["misp_per_ki"]["gshare"]["vortex"] == pytest.approx(
            table.misp_per_ki("gshare", "vortex"))

    def test_per_config_providers(self, compress_trace):
        configs = {
            "ghist": lambda: GsharePredictor(1 << 12, 8),
            "lghist": lambda: GsharePredictor(1 << 12, 8),
        }
        providers = {
            "ghist": BranchGhistProvider,
            "lghist": BlockLghistProvider,
        }
        table = run_comparison(configs, {"compress": compress_trace},
                               provider_factories=providers)
        # Different information vectors must give different (but close)
        # results on a nontrivial trace.
        assert table.misp_per_ki("ghist", "compress") != \
            table.misp_per_ki("lghist", "compress")


class TestSweep:
    def test_sweep_points(self, compress_trace):
        points = sweep(lambda h: GsharePredictor(1 << 12, h), [0, 4, 8],
                       {"compress": compress_trace})
        assert [point.value for point in points] == [0, 4, 8]
        assert all(point.mean_misp_per_ki > 0 for point in points)
        assert all("compress" in point.per_benchmark for point in points)

    def test_best_history_length(self, compress_trace):
        best = best_history_length(lambda h: GsharePredictor(1 << 12, h),
                                   [0, 4, 8], {"compress": compress_trace})
        assert best.value in (0, 4, 8)
        # History must help on this workload.
        zero = sweep(lambda h: GsharePredictor(1 << 12, h), [0],
                     {"compress": compress_trace})[0]
        assert best.mean_misp_per_ki <= zero.mean_misp_per_ki

    def test_empty_sweep_rejected(self, compress_trace):
        with pytest.raises(ValueError):
            best_history_length(lambda h: GsharePredictor(64, h), [],
                                {"compress": compress_trace})
