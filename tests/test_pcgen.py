"""Tests for the PC-address generator (jump predictor, RAS, final
selection — Section 2)."""

import pytest

from repro.ev8.pcgen import (
    JumpPredictor,
    PCAddressGenerator,
    PCGenStatistics,
    ReturnAddressStack,
)
from repro.history.providers import BranchGhistProvider
from repro.predictors import GsharePredictor
from repro.traces.model import TerminatorKind, TraceBuilder
from repro.workloads.spec95 import spec95_trace


class TestJumpPredictor:
    def test_validation(self):
        with pytest.raises(ValueError):
            JumpPredictor(1000)

    def test_miss_then_hit(self):
        jumps = JumpPredictor(256)
        assert jumps.predict(0x1000) is None
        jumps.train(0x1000, 0x2000)
        assert jumps.predict(0x1000) == 0x2000

    def test_tag_prevents_false_hits(self):
        jumps = JumpPredictor(16)
        jumps.train(0x1000, 0x2000)
        # A different pc mapping to the same entry must miss, not alias.
        collided = None
        for pc in range(0x2000, 0x80000, 4):
            if jumps._index(pc) == jumps._index(0x1000) and pc != 0x1000:
                collided = pc
                break
        assert collided is not None
        assert jumps.predict(collided) is None

    def test_retarget(self):
        jumps = JumpPredictor(256)
        jumps.train(0x1000, 0x2000)
        jumps.train(0x1000, 0x3000)
        assert jumps.predict(0x1000) == 0x3000


class TestReturnAddressStack:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)

    def test_lifo(self):
        ras = ReturnAddressStack(8)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100
        assert ras.pop() is None

    def test_wraparound_overwrites_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(0x100)
        ras.push(0x200)
        ras.push(0x300)  # overwrites 0x100
        assert ras.pop() == 0x300
        assert ras.pop() == 0x200
        assert ras.pop() is None

    def test_len(self):
        ras = ReturnAddressStack(4)
        assert len(ras) == 0
        ras.push(1)
        assert len(ras) == 1


class TestGenerator:
    def _call_return_trace(self, iterations=300):
        """caller loop: CALL f at 0x1000; f at 0x2000 returns; a conditional
        closes the loop."""
        builder = TraceBuilder("callret")
        for i in range(iterations):
            builder.add(0x1000, 1, TerminatorKind.CALL, True, 0x2000)
            builder.add(0x2000, 2, TerminatorKind.RETURN, True, 0x1004)
            builder.add(0x1004, 2, TerminatorKind.CONDITIONAL,
                        i < iterations - 1, 0x1000)
        return builder.build()

    def test_ras_predicts_returns(self):
        trace = self._call_return_trace()
        generator = PCAddressGenerator(GsharePredictor(1024, 4),
                                       BranchGhistProvider())
        stats = generator.run(trace)
        assert stats.ras_pops > 200
        assert stats.ras_accuracy > 0.95

    def test_pcgen_beats_cold_line_predictor_on_periodic_stream(self):
        trace = self._call_return_trace()
        generator = PCAddressGenerator(GsharePredictor(1024, 4),
                                       BranchGhistProvider())
        stats = generator.run(trace)
        # After warmup everything is predictable; both should be high and
        # the generator near-perfect.
        assert stats.pcgen_accuracy > 0.95
        assert stats.blocks > 0

    def test_statistics_defaults(self):
        stats = PCGenStatistics()
        assert stats.line_accuracy == 0.0
        assert stats.pcgen_accuracy == 0.0
        assert stats.ras_accuracy == 0.0

    def test_on_workload(self):
        from repro.ev8 import EV8BranchPredictor
        from repro.history.providers import ev8_info_provider
        trace = spec95_trace("m88ksim", 12000)
        generator = PCAddressGenerator(EV8BranchPredictor(),
                                       ev8_info_provider())
        stats = generator.run(trace)
        # Both mechanisms work; the generator corrects the line predictor
        # somewhere (the Fig 1 redirects), and accuracy is in a plausible
        # band.
        assert 0.5 < stats.line_accuracy < 1.0
        assert 0.5 < stats.pcgen_accuracy <= 1.0
        assert stats.redirects > 0
