"""Tests for random program generation from workload profiles."""

import pytest

from repro.workloads.generator import (
    BehaviorMix,
    WorkloadProfile,
    generate_program,
    generate_trace,
)


def small_profile(**overrides) -> WorkloadProfile:
    defaults = dict(name="unit", static_branches=40, num_functions=4)
    defaults.update(overrides)
    return WorkloadProfile(**defaults)


class TestBehaviorMix:
    def test_weights_normalised(self):
        names, weights = BehaviorMix().as_items()
        assert len(names) == 6
        assert sum(weights) == pytest.approx(1.0)

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            BehaviorMix(biased_easy=-1.0).as_items()

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            BehaviorMix(biased_easy=0, biased_hard=0, global_shallow=0,
                        global_deep=0, local_pattern=0, markov=0).as_items()


class TestGeneration:
    def test_static_branch_budget_exact(self):
        program = generate_program(small_profile())
        assert len(program.static_branches()) == 40

    def test_budget_exact_for_various_sizes(self):
        for count in (1, 2, 7, 100, 333):
            program = generate_program(
                small_profile(static_branches=count,
                              num_functions=min(6, count)))
            assert len(program.static_branches()) == count

    def test_deterministic(self):
        a = generate_trace(small_profile(), 2000)
        b = generate_trace(small_profile(), 2000)
        assert a.branches() == b.branches()
        assert list(a.starts) == list(b.starts)

    def test_different_seed_different_trace(self):
        a = generate_trace(small_profile(), 2000)
        b = generate_trace(small_profile(root_seed=999), 2000)
        assert a.branches() != b.branches()

    def test_different_name_different_program(self):
        a = generate_trace(small_profile(name="one"), 1000)
        b = generate_trace(small_profile(name="two"), 1000)
        assert a.branches() != b.branches()

    def test_trace_length(self):
        trace = generate_trace(small_profile(), 5000)
        assert trace.conditional_count == 5000

    def test_rejects_zero_branches(self):
        with pytest.raises(ValueError):
            generate_trace(small_profile(), 0)

    def test_all_branch_ids_unique(self):
        program = generate_program(small_profile(static_branches=200,
                                                 num_functions=8))
        ids = [branch.branch_id for branch in program.static_branches()]
        assert len(ids) == len(set(ids))

    def test_all_branches_have_addresses(self):
        program = generate_program(small_profile())
        assert all(branch.pc >= program.code_base
                   for branch in program.static_branches())

    def test_exercised_static_subset_of_program(self):
        profile = small_profile(static_branches=150, num_functions=6)
        program = generate_program(profile)
        trace = program.run(3000)
        program_pcs = {branch.pc for branch in program.static_branches()}
        assert trace.static_conditional_pcs() <= program_pcs

    def test_lead_instruction_knob_changes_density(self):
        sparse = generate_trace(small_profile(mean_lead_instructions=10.0),
                                4000)
        dense = generate_trace(small_profile(mean_lead_instructions=1.5),
                               4000)
        sparse_density = sparse.instruction_count / sparse.conditional_count
        dense_density = dense.instruction_count / dense.conditional_count
        assert sparse_density > dense_density * 1.3

    def test_contiguous_address_stream(self):
        from repro.traces.model import TerminatorKind
        trace = generate_trace(small_profile(static_branches=120,
                                             num_functions=6), 5000)
        previous = None
        for block in trace.blocks():
            if previous is not None:
                expected = (previous.end
                            if previous.kind == TerminatorKind.FALLTHROUGH
                            else previous.next_start)
                assert block.start == expected
            previous = block


class TestProfileHelpers:
    def test_cache_parameters_stable_and_complete(self):
        profile = small_profile()
        params = profile.cache_parameters()
        assert params == small_profile().cache_parameters()
        assert params["name"] == "unit"
        assert isinstance(params["mix"], dict)
        assert "biased_easy" in params["mix"]

    def test_with_seed(self):
        profile = small_profile()
        reseeded = profile.with_seed(123)
        assert reseeded.root_seed == 123
        assert reseeded.name == profile.name
