"""Shared test fixtures and helpers."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.history.providers import InfoVector
from repro.traces.model import TerminatorKind, Trace, TraceBuilder
from repro.workloads.spec95 import spec95_trace

# Hypothesis profiles, selected via HYPOTHESIS_PROFILE (default "dev").
# Both keep the library's per-test example counts; "ci" additionally
# tolerates slow shared runners.  The differential fuzzer
# (test_differential.py) layers its own example budget on top via
# REPRO_DIFF_FUZZ_EXAMPLES, which is how the dedicated CI step caps its
# wall time.
settings.register_profile("dev", deadline=None)
settings.register_profile(
    "ci", deadline=None, derandomize=True, print_blob=True,
    suppress_health_check=[HealthCheck.too_slow])
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

TEST_TRACE_BRANCHES = 15_000
"""Trace length for integration-level tests: long enough for predictors to
train, short enough to keep the suite fast."""


def make_vector(pc: int = 0x1000, history: int = 0, address: int | None = None,
                path: tuple[int, ...] = (0, 0, 0), bank: int = 0) -> InfoVector:
    """A hand-built information vector for unit tests."""
    return InfoVector(history=history,
                      address=pc if address is None else address,
                      branch_pc=pc, path=path, bank=bank)


def simple_loop_trace(iterations: int = 200, name: str = "loop",
                      taken_pattern=None) -> Trace:
    """A trace of one conditional branch at 0x1008, executed ``iterations``
    times with the given outcome pattern (default: always taken except the
    final exit)."""
    builder = TraceBuilder(name)
    for i in range(iterations):
        taken = (taken_pattern[i % len(taken_pattern)] if taken_pattern
                 else i < iterations - 1)
        builder.add(0x1000, 3, TerminatorKind.CONDITIONAL, taken,
                    0x1000 if taken else 0x100C)
    return builder.build()


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def gcc_trace() -> Trace:
    """A small gcc stand-in trace, shared session-wide."""
    return spec95_trace("gcc", TEST_TRACE_BRANCHES)


@pytest.fixture(scope="session")
def vortex_trace() -> Trace:
    """A small vortex stand-in trace (the most predictable benchmark)."""
    return spec95_trace("vortex", TEST_TRACE_BRANCHES)


@pytest.fixture(scope="session")
def compress_trace() -> Trace:
    return spec95_trace("compress", TEST_TRACE_BRANCHES)
