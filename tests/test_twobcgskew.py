"""Tests for the 2Bc-gskew predictor, in particular the EV8 partial update
policy (Section 4.2 of the paper, Rationales 1 and 2)."""

import pytest

from conftest import make_vector
from repro.predictors import TableConfig, TwoBcGskewPredictor


def small_predictor(update_policy="partial", **table_overrides):
    tables = dict(bim=TableConfig(256, 0), g0=TableConfig(256, 6),
                  g1=TableConfig(256, 10), meta=TableConfig(256, 8))
    tables.update(table_overrides)
    return TwoBcGskewPredictor(update_policy=update_policy, **tables)


def force_state(predictor, vector, bim, g0, g1, meta):
    """Set the four counters feeding ``vector`` to given 2-bit values."""
    bim_i, g0_i, g1_i, meta_i = predictor.indices(vector)
    predictor.bim.set_counter(bim_i, bim)
    predictor.g0.set_counter(g0_i, g0)
    predictor.g1.set_counter(g1_i, g1)
    predictor.meta.set_counter(meta_i, meta)


def read_state(predictor, vector):
    bim_i, g0_i, g1_i, meta_i = predictor.indices(vector)
    return (predictor.bim.counter_value(bim_i),
            predictor.g0.counter_value(g0_i),
            predictor.g1.counter_value(g1_i),
            predictor.meta.counter_value(meta_i))


class TestStructure:
    def test_validation(self):
        with pytest.raises(ValueError):
            small_predictor(update_policy="sometimes")
        with pytest.raises(ValueError):
            TableConfig(100, 0)
        with pytest.raises(ValueError):
            TableConfig(128, -1)

    def test_storage_accounting(self):
        predictor = TwoBcGskewPredictor(
            bim=TableConfig(16 * 1024, 4),
            g0=TableConfig(64 * 1024, 13, 32 * 1024),
            g1=TableConfig(64 * 1024, 21),
            meta=TableConfig(64 * 1024, 15, 32 * 1024))
        assert predictor.storage_bits == 352 * 1024  # the EV8 budget

    def test_table_sizes_report(self):
        predictor = small_predictor()
        sizes = predictor.table_sizes()
        assert sizes["BIM"] == (256, 256)
        assert set(sizes) == {"BIM", "G0", "G1", "Meta"}


class TestPredictionSelection:
    def test_meta_not_taken_selects_bim(self):
        predictor = small_predictor()
        vector = make_vector()
        # BIM says taken, G0/G1 say not-taken, meta weak not-taken (BIM).
        force_state(predictor, vector, bim=3, g0=0, g1=0, meta=1)
        assert predictor.predict(vector) is True  # BIM wins

    def test_meta_taken_selects_majority(self):
        predictor = small_predictor()
        vector = make_vector()
        force_state(predictor, vector, bim=3, g0=0, g1=0, meta=2)
        assert predictor.predict(vector) is False  # majority (G0,G1) wins

    def test_majority_arithmetic(self):
        predictor = small_predictor()
        vector = make_vector()
        force_state(predictor, vector, bim=0, g0=3, g1=3, meta=3)
        assert predictor.predict(vector) is True
        force_state(predictor, vector, bim=0, g0=0, g1=3, meta=3)
        assert predictor.predict(vector) is False


class TestPartialUpdateCorrectPrediction:
    def test_all_agree_no_update(self):
        """Rationale 1: when BIM, G0 and G1 all agree and the prediction is
        correct, nothing is written — the counters stay stealable."""
        predictor = small_predictor()
        vector = make_vector()
        force_state(predictor, vector, bim=2, g0=2, g1=2, meta=1)
        before = read_state(predictor, vector)
        assert predictor.access(vector, True) is True
        assert read_state(predictor, vector) == before

    def test_correct_bim_choice_strengthens_bim_and_meta(self):
        predictor = small_predictor()
        vector = make_vector()
        # BIM taken (correct), majority not-taken, meta chose BIM.
        force_state(predictor, vector, bim=2, g0=1, g1=1, meta=1)
        assert predictor.access(vector, True) is True
        bim, g0, g1, meta = read_state(predictor, vector)
        assert bim == 3        # strengthened
        assert (g0, g1) == (1, 1)  # untouched
        assert meta == 0       # strengthened towards BIM (not-taken side)

    def test_correct_majority_strengthens_agreeing_banks(self):
        predictor = small_predictor()
        vector = make_vector()
        # Majority not-taken via G0/G1; BIM wrong; meta chose majority.
        force_state(predictor, vector, bim=2, g0=1, g1=1, meta=2)
        assert predictor.access(vector, False) is False
        bim, g0, g1, meta = read_state(predictor, vector)
        assert g0 == 0 and g1 == 0    # strengthened not-taken
        assert bim == 2               # wrong bank untouched
        assert meta == 3              # chooser reinforced towards majority

    def test_meta_not_strengthened_when_components_agree(self):
        predictor = small_predictor()
        vector = make_vector()
        # BIM and majority both taken (but G0 disagrees): prediction correct,
        # the two *predictions* are equal, so Meta must not move.
        force_state(predictor, vector, bim=2, g0=1, g1=2, meta=1)
        assert predictor.access(vector, True) is True
        _, g0, _, meta = read_state(predictor, vector)
        assert meta == 1  # untouched
        assert g0 == 1    # wrong bank untouched (BIM used)


class TestPartialUpdateMisprediction:
    def test_chooser_updated_first_and_saves_the_day(self):
        """Rationale 2: when flipping the chooser alone fixes the
        misprediction, the banks are only strengthened, not rewritten."""
        predictor = small_predictor()
        vector = make_vector()
        # meta weakly chose BIM (wrong); the majority was right.
        force_state(predictor, vector, bim=2, g0=1, g1=1, meta=1)
        assert predictor.access(vector, False) is True  # mispredicts
        bim, g0, g1, meta = read_state(predictor, vector)
        assert meta == 2              # chooser flipped to majority
        assert (g0, g1) == (0, 0)     # correct banks strengthened
        assert bim == 2               # BIM direction NOT rewritten

    def test_strong_chooser_resists_then_banks_update(self):
        predictor = small_predictor()
        vector = make_vector()
        # meta strongly on BIM: one update cannot flip it; after the chooser
        # update the prediction is still wrong, so all banks train.
        force_state(predictor, vector, bim=2, g0=1, g1=1, meta=0)
        assert predictor.access(vector, False) is True
        bim, g0, g1, meta = read_state(predictor, vector)
        assert meta == 1              # weakened but still BIM
        assert bim == 1               # all banks updated towards not-taken
        assert (g0, g1) == (0, 0)

    def test_both_wrong_updates_all_banks(self):
        predictor = small_predictor()
        vector = make_vector()
        # BIM and majority agree on taken; outcome not-taken.
        force_state(predictor, vector, bim=3, g0=3, g1=3, meta=1)
        assert predictor.access(vector, False) is True
        bim, g0, g1, meta = read_state(predictor, vector)
        assert (bim, g0, g1) == (2, 2, 2)  # all weakened
        assert meta == 1                    # chooser untouched (they agreed)


class TestTotalUpdate:
    def test_total_updates_every_bank(self):
        predictor = small_predictor(update_policy="total")
        vector = make_vector()
        force_state(predictor, vector, bim=2, g0=2, g1=2, meta=1)
        predictor.access(vector, True)  # correct, all agree
        bim, g0, g1, _ = read_state(predictor, vector)
        assert (bim, g0, g1) == (3, 3, 3)  # total policy strengthens anyway

    def test_partial_beats_total_under_aliasing(self):
        """The paper's motivation for partial update: fewer writes mean
        less destructive aliasing, so stable branches keep their entries.
        The effect is strongest on predictable workloads under capacity
        pressure (m88ksim here); the full regime comparison lives in
        benchmarks/bench_ablation_update.py."""
        from repro.sim.driver import simulate
        from repro.workloads.spec95 import spec95_trace
        trace = spec95_trace("perl", 20000)
        small = dict(bim=TableConfig(512, 0), g0=TableConfig(512, 6),
                     g1=TableConfig(512, 9), meta=TableConfig(512, 7))
        partial = simulate(TwoBcGskewPredictor(
            update_policy="partial", **small), trace)
        total = simulate(TwoBcGskewPredictor(
            update_policy="total", **small), trace)
        assert partial.mispredictions < total.mispredictions


class TestHysteresisSharing:
    def test_shared_hysteresis_configuration(self):
        predictor = small_predictor(
            g0=TableConfig(256, 6, hysteresis_entries=128))
        assert predictor.g0.hysteresis_size == 128
        assert predictor.storage_bits == 256 * 8 - 128
