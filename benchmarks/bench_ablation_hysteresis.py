"""Ablation: hysteresis sharing ratios (Section 4.4).

The EV8 halves the hysteresis arrays of G0 and Meta.  This ablation pushes
further — quarter-size and even eighth-size hysteresis everywhere — to map
out how much of the 2-bit counters' strength bits can actually be shared
before accuracy collapses.  The paper only ships the 2:1 point; the sweep
shows why that is a safe choice (the curve is nearly flat at 2:1) and where
it stops being safe.
"""

from conftest import emit, run_once
from repro.experiments.common import experiment_traces, record_results
from repro.predictors import TableConfig, TwoBcGskewPredictor
from repro.sim.compare import run_comparison


def _make(ratio):
    entries = 64 * 1024
    hysteresis = entries // ratio

    def factory():
        return TwoBcGskewPredictor(
            bim=TableConfig(16 * 1024, 0, 16 * 1024 // ratio),
            g0=TableConfig(entries, 13, hysteresis),
            g1=TableConfig(entries, 21, hysteresis),
            meta=TableConfig(entries, 15, hysteresis),
            name=f"hyst-1:{ratio}")
    return factory


def run():
    traces = experiment_traces()
    configs = {f"hysteresis 1:{ratio}": _make(ratio)
               for ratio in (1, 2, 4, 8)}
    table = run_comparison(configs, traces)
    record_results("ablation_hysteresis", table)
    return table


def test_hysteresis_sharing(benchmark):
    table = run_once(benchmark, run)
    emit(table.render(
        "Ablation: shared hysteresis ratios (Section 4.4 extended)"),
        "ablation_hysteresis")

    full = table.mean("hysteresis 1:1")
    half = table.mean("hysteresis 1:2")
    quarter = table.mean("hysteresis 1:4")
    eighth = table.mean("hysteresis 1:8")

    # The paper's design point: halving is barely noticeable.
    assert abs(half - full) < 0.08 * full, (
        f"1:2 sharing moved the mean from {full:.3f} to {half:.3f}")
    # Degradation is monotone-ish and stays bounded even at 1:8 (partial
    # update keeps hysteresis writes rare).
    assert quarter < full * 1.15
    assert eighth < full * 1.30
    # But sharing is not free forever: 1:8 must be measurably worse than
    # full hysteresis on at least one footprint-heavy benchmark.
    degraded = [bench for bench in table.benchmark_names
                if table.misp_per_ki("hysteresis 1:8", bench)
                > table.misp_per_ki("hysteresis 1:1", bench) * 1.01]
    assert degraded, "1:8 hysteresis sharing showed no cost anywhere"
