"""Table 1: the EV8 predictor configuration.

Validates the reproduced configuration bit-for-bit against the paper's
Table 1 and times full predictor construction (the 352 Kbit arrays).
"""

from conftest import emit, run_once
from repro.ev8.config import EV8_CONFIG, TABLE1
from repro.ev8.predictor import EV8BranchPredictor


def test_table1(benchmark):
    predictor = run_once(benchmark, EV8BranchPredictor)

    lines = ["Table 1: characteristics of the Alpha EV8 branch predictor",
             f"{'table':<6}{'prediction':>12}{'hysteresis':>12}{'history':>9}"]
    lines.append("-" * len(lines[1]))
    for name, spec in TABLE1.items():
        lines.append(f"{name:<6}{spec['prediction'] // 1024:>11}K"
                     f"{spec['hysteresis'] // 1024:>11}K"
                     f"{spec['history']:>9}")
    lines.append("-" * len(lines[1]))
    lines.append(f"total prediction {EV8_CONFIG.prediction_bits // 1024} Kbits, "
                 f"hysteresis {EV8_CONFIG.hysteresis_bits // 1024} Kbits, "
                 f"overall {EV8_CONFIG.total_bits // 1024} Kbits")
    emit("\n".join(lines), "table1")

    # The paper's stated budget, exactly.
    assert EV8_CONFIG.total_bits == 352 * 1024
    assert EV8_CONFIG.prediction_bits == 208 * 1024
    assert EV8_CONFIG.hysteresis_bits == 144 * 1024
    assert predictor.storage_bits == EV8_CONFIG.total_bits
    # Per-table sizes and history lengths, exactly.
    for name, table in zip(("BIM", "G0", "G1", "Meta"), EV8_CONFIG.tables()):
        assert table.entries == TABLE1[name]["prediction"]
        assert (table.hysteresis_entries or table.entries) == \
            TABLE1[name]["hysteresis"]
        assert table.history_length == TABLE1[name]["history"]
