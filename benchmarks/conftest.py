"""Shared bench infrastructure.

Every bench reproduces one table or figure of the paper at full scale
(trace length controlled by ``REPRO_TRACE_BRANCHES``, default 400K branches
per benchmark), prints the paper-style result table, records it under
``results/``, and asserts the paper's qualitative findings — who wins, by
roughly what factor, where the crossovers fall.  Absolute misp/KI values
differ from the paper's (different traces), and the assertions are written
with tolerances that reflect that.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

__all__ = ["emit", "emit_json", "current_commit", "run_once"]


def emit(text: str, name: str) -> None:
    """Print a result table and persist it under results/."""
    print()
    print(text)
    try:
        from repro.experiments.common import results_dir
        (results_dir() / f"{name}.txt").write_text(text + "\n")
    except OSError:
        pass


def current_commit() -> str:
    """The current git commit hash, or ``"unknown"`` outside a checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, cwd=Path(__file__).resolve().parent,
            check=True).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def emit_json(payload: dict, name: str) -> None:
    """Persist a machine-readable benchmark record under results/.

    Each record is stamped with the producing commit so successive runs
    form a perf trajectory that tooling can diff across revisions.
    """
    record = {"commit": current_commit(), **payload}
    print()
    print(f"{name}: {json.dumps(record, sort_keys=True)}")
    try:
        from repro.experiments.common import results_dir
        (results_dir() / f"{name}.json").write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n")
    except OSError:
        pass


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are minutes-long simulations; one timed round is the
    honest measurement (pytest-benchmark's default calibration would re-run
    them dozens of times).
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
