"""Ablation: partial vs total update policy (Section 4.2).

The paper: "Partial update policy was shown to result in higher prediction
accuracy than total update policy for e-gskew. Applying partial update
policy on 2Bc-gskew also results in better prediction accuracy."

**Reproduction note (deviation):** on the synthetic workloads the two
policies are within a few percent of each other, with total update slightly
ahead on most benchmarks and partial ahead on others (vortex-like,
stable-bias-heavy ones).  The partial policy's documented advantage comes
from preserving stable entries against aliasing steals; our condition-group
branches flip more often than SPECINT95's, which rewards total update's
faster retraining.  The bench therefore asserts the honest, weaker claim —
the policies are competitive (so partial's hardware benefit of Section 4.3,
needing only a hysteresis write on correct predictions, comes at no real
accuracy cost) — and records the full grid in EXPERIMENTS.md.
"""

from conftest import emit, run_once
from repro.experiments.common import experiment_traces, record_results
from repro.predictors import TableConfig, TwoBcGskewPredictor
from repro.sim.compare import run_comparison


def _make(entries, policy):
    return lambda: TwoBcGskewPredictor(
        bim=TableConfig(entries, 0),
        g0=TableConfig(entries, 7),
        g1=TableConfig(entries, 11),
        meta=TableConfig(entries, 9),
        update_policy=policy,
        name=f"2bc-{entries}-{policy}")


def run():
    traces = experiment_traces()
    configs = {
        "partial 4x2K": _make(2048, "partial"),
        "total 4x2K": _make(2048, "total"),
        "partial 4x64K": _make(65536, "partial"),
        "total 4x64K": _make(65536, "total"),
    }
    table = run_comparison(configs, traces)
    record_results("ablation_update", table)
    return table


def test_update_policy(benchmark):
    table = run_once(benchmark, run)
    emit(table.render("Ablation: partial vs total update (Section 4.2)"),
         "ablation_update")

    pressured_partial = table.mean("partial 4x2K")
    pressured_total = table.mean("total 4x2K")
    large_partial = table.mean("partial 4x64K")
    large_total = table.mean("total 4x64K")

    # The policies are competitive at both sizes: partial's write savings
    # (one hysteresis write on a correct prediction, Section 4.3) cost at
    # most a few percent of accuracy on these traces.
    assert pressured_partial < pressured_total * 1.06
    assert large_partial < large_total * 1.08

    # And the partial policy's entry-preservation does win somewhere: at
    # least one benchmark prefers it under capacity pressure.
    partial_wins = [bench for bench in table.benchmark_names
                    if table.misp_per_ki("partial 4x2K", bench)
                    < table.misp_per_ki("total 4x2K", bench)]
    assert partial_wins, "partial update won on no benchmark at 4x2K"
