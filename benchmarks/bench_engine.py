"""Engine throughput: batched versus scalar on the Fig 5 gshare sweep.

The sweep workload the engine layer exists for: one 1M-entry gshare
predictor re-simulated across history lengths on the same trace.  Asserted:

* the batched engine is bit-identical to the scalar reference at every
  sweep point (the engine contract), and
* the batched sweep is at least 3x faster in aggregate wall-clock.
"""

from __future__ import annotations

import time

from conftest import emit, run_once
from repro.predictors import GsharePredictor
from repro.sim.sweep import sweep
from repro.traces.fetch import fetch_blocks_for
from repro.workloads.spec95 import spec95_trace

GSHARE_ENTRIES = 1 << 20  # the paper's 2 Mbit gshare configuration
HISTORY_LENGTHS = (12, 16, 20, 24, 28, 32)


def _make_gshare(history_length: int) -> GsharePredictor:
    return GsharePredictor(GSHARE_ENTRIES, history_length)


def test_engine_speedup(benchmark):
    trace = spec95_trace("gcc")
    traces = {"gcc": trace}
    fetch_blocks_for(trace)  # warm the shared block cache for both engines

    def run():
        started = time.perf_counter()
        scalar = sweep(_make_gshare, HISTORY_LENGTHS, traces, engine="scalar")
        scalar_seconds = time.perf_counter() - started
        started = time.perf_counter()
        batched = sweep(_make_gshare, HISTORY_LENGTHS, traces,
                        engine="batched")
        batched_seconds = time.perf_counter() - started
        return scalar, scalar_seconds, batched, batched_seconds

    scalar, scalar_seconds, batched, batched_seconds = run_once(benchmark, run)
    speedup = scalar_seconds / batched_seconds

    lines = [f"Engine speedup: 1M-entry gshare sweep on gcc "
             f"({len(trace):,} trace records)",
             f"{'history':>8}{'scalar misp/KI':>16}{'batched misp/KI':>17}",
             "-" * 41]
    for scalar_point, batched_point in zip(scalar, batched):
        lines.append(f"{scalar_point.value:>8}"
                     f"{scalar_point.mean_misp_per_ki:>16.3f}"
                     f"{batched_point.mean_misp_per_ki:>17.3f}")
    lines.append("-" * 41)
    lines.append(f"scalar {scalar_seconds:.2f} s, batched "
                 f"{batched_seconds:.2f} s -> {speedup:.1f}x")
    emit("\n".join(lines), "bench_engine")

    for scalar_point, batched_point in zip(scalar, batched):
        assert batched_point.per_benchmark == scalar_point.per_benchmark, (
            f"engines disagree at history length {scalar_point.value}")
    assert speedup >= 3.0, (
        f"batched sweep only {speedup:.2f}x faster "
        f"({scalar_seconds:.2f}s vs {batched_seconds:.2f}s)")
