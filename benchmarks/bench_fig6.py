"""Fig 6: additional mispredictions when history length is clamped to
log2(table size).

Paper finding asserted: for large predictors, best history length exceeds
log2(table entries) — clamping costs mispredictions.  The effect is
strongest for the de-aliased schemes whose tables tolerate long history
(2Bc-gskew per-table lengths up to 27 on 16-bit indices, YAGS 23/25 on
14/15-bit indices).
"""

from conftest import emit, run_once
from repro.experiments import fig6


def test_fig6(benchmark):
    result = run_once(benchmark, fig6.run)
    emit(fig6.render(result), "fig6")

    additional = {config: result.mean_additional(config)
                  for config in result.best.config_names}
    print("mean additional misp/KI:", {k: round(v, 3)
                                       for k, v in additional.items()})

    # Clamping must cost mispredictions where our calibration found the
    # best history beyond log2(size): the 2Bc-gskew configurations (G1's
    # best length is 21 bits on a 16-bit index) and gshare (best 12 vs
    # clamp at 20).  For YAGS/bi-mode our traces' optimum coincides with
    # log2(size) — those rows are ~0 by construction (noted in
    # EXPERIMENTS.md as a deviation from the paper, whose traces rewarded
    # 23-25 bits).
    for config in ("2Bc-gskew-256Kb", "2Bc-gskew-512Kb", "gshare-2Mb"):
        assert additional[config] > 0, (
            f"{config}: clamped history should lose, got "
            f"{additional[config]:+.3f} misp/KI")

    # No configuration should *gain* materially from clamping.
    for config, delta in additional.items():
        assert delta > -0.3, f"{config} gained {-delta:.3f} from clamping"

    # The cost is not a rounding error: the worst-hit configuration loses a
    # visible fraction of its accuracy.
    worst_config = max(additional, key=additional.get)
    relative = additional[worst_config] / result.best.mean(worst_config)
    assert relative > 0.02, (
        f"largest clamping penalty only {relative:.1%} of "
        f"{worst_config}'s misp/KI")
