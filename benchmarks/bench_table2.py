"""Table 2: benchmark characteristics of the synthetic SPECINT95 stand-ins.

Shape checks: the per-benchmark static footprints preserve the paper's
ordering (gcc >> go > vortex > ijpeg > m88ksim ~ perl ~ li > compress) and
the dynamic branch densities sit near the paper's."""

from conftest import emit, run_once
from repro.experiments import table2
from repro.workloads.spec95 import TABLE2_DYNAMIC_PER_KI


def test_table2(benchmark):
    result = run_once(benchmark, table2.run)
    emit(table2.render(result), "table2")
    stats = result.statistics

    # Footprint ordering follows the paper's Table 2.
    static = {name: stats[name].static_conditional for name in stats}
    assert static["gcc"] == max(static.values())
    assert static["compress"] == min(static.values())
    assert static["gcc"] > static["go"] > static["ijpeg"]
    assert static["vortex"] > static["m88ksim"]

    # compress's footprint is reproduced almost exactly (46 static).
    assert 30 <= static["compress"] <= 46

    # Dynamic density within 2x of the paper's per-benchmark value (most
    # benchmarks land within 15%; li and m88ksim drift further after the
    # final correlation-model calibration — recorded in EXPERIMENTS.md).
    for name, paper_density in TABLE2_DYNAMIC_PER_KI.items():
        measured = stats[name].branches_per_kilo_instruction
        assert 0.4 * paper_density < measured < 1.6 * paper_density, name
    # And the benchmark-set mean density is within 25% of the paper's.
    measured_mean = sum(stats[name].branches_per_kilo_instruction
                        for name in stats) / len(stats)
    paper_mean = sum(TABLE2_DYNAMIC_PER_KI.values()) / len(
        TABLE2_DYNAMIC_PER_KI)
    assert 0.75 * paper_mean < measured_mean < 1.25 * paper_mean
