"""Fig 10: the limits of global-history prediction.

Paper finding asserted: a 4x1M-entry 2Bc-gskew (8 Mbit, 23x the EV8
budget) "would have limited return except for applications with a very
large number of branches" — the mean gain over the 512 Kbit predictor is
small, and what gain exists concentrates on the large-footprint benchmarks
(gcc, go, vortex) rather than the small-footprint ones.
"""

from conftest import emit, run_once
from repro.experiments import fig10
from repro.workloads.spec95 import TABLE2_STATIC_BRANCHES


def test_fig10(benchmark):
    table = run_once(benchmark, fig10.run)
    emit(fig10.render(table), "fig10")

    reference = table.mean("2Bc-gskew 4x64K (512Kb)")
    giant = table.mean("2Bc-gskew 4x1M (8Mb)")
    ev8 = table.mean("EV8 (352Kb)")

    # Limited return: 16x the storage moves the mean by less than 15%.
    assert abs(giant - reference) < 0.15 * reference, (
        f"giant predictor moved the mean from {reference:.3f} to "
        f"{giant:.3f} — more than 'limited return'")

    # The EV8 (352 Kbit, constrained) stays in range of the 512 Kbit
    # unconstrained reference.
    assert ev8 < 1.35 * reference

    # Per-benchmark: nobody gains more than 10% from 16x the storage.
    # (Reproduction note: the paper sees small gains concentrated on the
    # large-footprint benchmarks; at our trace lengths the 4M-counter
    # tables barely warm up, so even those gains vanish — an amplified
    # version of the same "brute force has limited return" conclusion,
    # recorded as a deviation in EXPERIMENTS.md.)
    for bench in table.benchmark_names:
        reference_bench = table.misp_per_ki("2Bc-gskew 4x64K (512Kb)", bench)
        giant_bench = table.misp_per_ki("2Bc-gskew 4x1M (8Mb)", bench)
        gain = (reference_bench - giant_bench) / reference_bench
        assert gain < 0.10, (bench, gain)
    # TABLE2_STATIC_BRANCHES kept imported for the recorded footprint
    # context in results/.
    assert TABLE2_STATIC_BRANCHES["gcc"] > TABLE2_STATIC_BRANCHES["compress"]
