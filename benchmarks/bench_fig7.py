"""Fig 7: impact of the information vector (ghist -> lghist -> 3-old ->
EV8 vector) on a fixed 4x64K 2Bc-gskew.

Paper findings asserted:

* lghist performs in the same range as conventional per-branch history
  ("quite surprisingly, lghist has same performance as conventional branch
  history") — the compression is nearly free because inter-branch
  correlation is redundant;
* embedding path information in lghist is generally beneficial;
* using three-fetch-blocks-old history "slightly degrades the accuracy of
  the predictor, but the impact is limited";
* the full EV8 information vector achieves "approximately the same levels
  of accuracy as without any constraints".
"""

from conftest import emit, run_once
from repro.experiments import fig7


def test_fig7(benchmark):
    table = run_once(benchmark, fig7.run)
    emit(fig7.render(table), "fig7")

    means = {config: table.mean(config) for config in table.config_names}
    ghist = means["ghist"]

    # lghist is in the same range as ghist: within 25% on the mean.
    assert means["lghist + path"] < 1.25 * ghist
    assert means["lghist, no path"] < 1.30 * ghist

    # Path information in lghist is (on the mean) beneficial.
    assert means["lghist + path"] <= means["lghist, no path"] * 1.03

    # Three-blocks-old history degrades only slightly.
    assert means["3-old lghist"] < means["lghist + path"] * 1.15

    # The complete EV8 vector lands near the 3-old point or better, and
    # stays within 30% of the unconstrained ghist reference.
    assert means["EV8 info vector"] < means["3-old lghist"] * 1.10
    assert means["EV8 info vector"] < 1.30 * ghist
