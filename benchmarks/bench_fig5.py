"""Fig 5: global-history predictor schemes at EV8-class budgets.

Paper findings asserted:

* "at equivalent memorization budget 2Bc-gskew outperforms the other global
  history branch predictors except YAGS" — in particular gshare (even at
  2 Mbit, 4-8x the 2Bc-gskew budgets) loses clearly to every de-aliased
  scheme;
* "There is no clear winner between the YAGS predictor and 2Bc-gskew".
"""

from conftest import emit, run_once
from repro.experiments import fig5


def test_fig5(benchmark):
    table = run_once(benchmark, fig5.run)
    emit(fig5.render(table), "fig5")

    means = {config: table.mean(config) for config in table.config_names}

    # gshare is the aliased baseline: strictly worst on the mean, despite
    # having by far the largest budget.
    gshare = means["gshare-2Mb"]
    for config, mean in means.items():
        if config != "gshare-2Mb":
            assert mean < gshare, (
                f"{config} ({mean:.3f}) should beat gshare ({gshare:.3f})")
    # ... and by a visible margin for the 2Bc-gskew configurations (the
    # paper's gap; our traces narrow it but preserve the ordering).
    assert means["2Bc-gskew-256Kb"] < 0.97 * gshare
    assert means["2Bc-gskew-512Kb"] < 0.97 * gshare

    # No clear winner between YAGS and 2Bc-gskew: the better of each pair
    # wins by less than 15% on the mean.
    for two_bc, yags in (("2Bc-gskew-256Kb", "YAGS-288Kb"),
                         ("2Bc-gskew-512Kb", "YAGS-576Kb")):
        ratio = means[two_bc] / means[yags]
        assert 0.85 < ratio < 1.18, (
            f"{two_bc} vs {yags}: mean ratio {ratio:.3f}")

    # Per-benchmark difficulty ordering survives end-to-end: go is the
    # hardest benchmark and the most predictable benchmark is at least 3x
    # easier, for every predictor.
    for config in table.config_names:
        series = dict(zip(table.benchmark_names, table.series(config)))
        assert series["go"] == max(series.values()), config
        assert min(series.values()) < series["go"] / 3, config
