"""Section 6: conflict-free bank interleaving, at full trace scale.

Not a figure in the paper, but its central structural guarantee: "bank
conflicts never occur" between dynamically successive fetch blocks, with
bank numbers computed two blocks ahead.  Verified here over the full
fetch-block streams of all eight benchmarks, along with bank-usage balance
and the front-end bandwidth/line-predictor statistics of Section 2.
"""

from collections import Counter

from conftest import emit, run_once
from repro.ev8.banks import BankNumberGenerator, bank_number
from repro.ev8.frontend import FrontEnd
from repro.traces.fetch import fetch_blocks_for
from repro.workloads.spec95 import SPEC95_BENCHMARKS, spec95_trace


def run_all():
    rows = []
    for name in SPEC95_BENCHMARKS:
        trace = spec95_trace(name, 100_000)
        generator = BankNumberGenerator()
        usage = Counter()
        conflicts = 0
        previous = None
        blocks = fetch_blocks_for(trace)
        banks = []
        for block in blocks:
            bank = generator.next_bank(block.start)
            usage[bank] += 1
            if previous is not None and bank == previous:
                conflicts += 1
            previous = bank
            banks.append(bank)
        # Re-derivable from (Y address, previous bank) alone — the two-block
        # ahead property, full stream.
        for n in range(2, len(blocks)):
            assert banks[n] == bank_number(blocks[n - 2].start, banks[n - 1])
        front = FrontEnd().run(trace)
        rows.append((name, len(blocks), conflicts, usage, front))
    return rows


def test_banking(benchmark):
    rows = run_once(benchmark, run_all)

    lines = ["Section 6: conflict-free bank interleaving",
             f"{'benchmark':<10}{'blocks':>9}{'conflicts':>10}"
             f"{'bank usage %':>28}{'line acc':>10}{'max p/cyc':>10}"]
    lines.append("-" * len(lines[1]))
    for name, blocks, conflicts, usage, front in rows:
        shares = "/".join(f"{100 * usage[b] / blocks:.0f}" for b in range(4))
        lines.append(f"{name:<10}{blocks:>9}{conflicts:>10}"
                     f"{shares:>28}{front.line_accuracy:>10.3f}"
                     f"{front.max_predictions_in_a_cycle:>10}")
    emit("\n".join(lines), "banking")

    for name, blocks, conflicts, usage, front in rows:
        # The structural guarantee, with zero tolerance.
        assert conflicts == 0, name
        assert front.bank_conflicts == 0, name
        # All four banks carry meaningful load (the uniformity Section 7.2
        # aims for): no bank below 10% or above 45%.
        for bank in range(4):
            share = usage[bank] / blocks
            assert 0.10 < share < 0.45, (name, bank, share)
        # The line predictor is useful but clearly weaker than the branch
        # predictor — the reason the PC-address generator backs it up.
        assert 0.5 < front.line_accuracy < 0.995, name
        # Bandwidth: some cycle predicts more than 2 branches (the whole
        # point of block prediction), never more than the 16 cap.
        assert front.max_predictions_in_a_cycle > 2, name
        assert front.max_predictions_in_a_cycle <= 16, name
