"""Fig 8: shrinking the 512 Kbit predictor into the EV8's 352 Kbit budget.

Paper findings asserted:

* "Reducing the size of the BIM table has no impact at all on our benchmark
  set" — the bimodal table is touched once per static branch and 16K
  entries dwarf every footprint;
* "Except for go, the effect of using half size hysteresis tables for G0
  and Meta is barely noticeable" — so the 352 Kbit EV8-size configuration
  performs like the full 512 Kbit one.
"""

from conftest import emit, run_once
from repro.experiments import fig8


def test_fig8(benchmark):
    table = run_once(benchmark, fig8.run)
    emit(fig8.render(table), "fig8")

    base = table.mean("4x64K (512Kb)")
    small_bim = table.mean("small BIM (416Kb)")
    ev8_size = table.mean("EV8 size (352Kb)")

    # Small BIM: no impact (sub-2% on the mean).
    assert abs(small_bim - base) < 0.02 * base, (
        f"small BIM moved the mean from {base:.3f} to {small_bim:.3f}")
    # Per-benchmark too: every benchmark within 5%.
    for bench in table.benchmark_names:
        full = table.misp_per_ki("4x64K (512Kb)", bench)
        small = table.misp_per_ki("small BIM (416Kb)", bench)
        assert abs(small - full) < 0.05 * max(full, 0.5), bench

    # Half hysteresis: barely noticeable (within 8% on the mean).
    assert abs(ev8_size - small_bim) < 0.08 * small_bim, (
        f"half hysteresis moved the mean from {small_bim:.3f} to "
        f"{ev8_size:.3f}")
    # The 352 Kbit configuration stays within 10% of the 512 Kbit one.
    assert ev8_size < 1.10 * base
