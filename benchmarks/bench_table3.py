"""Table 3: the lghist/ghist compression ratio.

Shape checks: every benchmark's ratio exceeds 1 (one lghist bit summarises
more than one branch), the band matches the paper's (roughly 1.1-1.6), and
go — the paper's lowest ratio at 1.12 — stays near the bottom of ours."""

from conftest import emit, run_once
from repro.experiments import table3


def test_table3(benchmark):
    result = run_once(benchmark, table3.run)
    emit(table3.render(result), "table3")
    ratios = result.ratios

    assert all(ratio > 1.0 for ratio in ratios.values())
    assert all(ratio < 2.0 for ratio in ratios.values())
    # The cross-benchmark mean lands in the paper's band.
    assert 1.05 < result.mean() < 1.7
    # go has the lowest compression win in the paper (1.12); it must sit in
    # the bottom half of ours.
    assert ratios["go"] <= sorted(ratios.values())[len(ratios) // 2]
