"""Ablation: per-table history lengths (Section 4.5).

"Using different history lengths for the two tables allows slightly better
behavior" — G0 takes a medium history, G1 a long one, Meta in between.
Compared here against the best single shared length, at the 4x64K size.
"""

from conftest import emit, run_once
from repro.experiments.common import (
    BEST_HISTORY,
    experiment_traces,
    make_2bc_gskew,
    record_results,
)
from repro.sim.compare import run_comparison


def run():
    traces = experiment_traces()
    g0, g1, meta = BEST_HISTORY["2bc_64k"]
    configs = {
        f"per-table ({g0},{g1},{meta})": lambda: make_2bc_gskew(
            64 * 1024, g0, g1, meta, name="per-table"),
        "equal 13": lambda: make_2bc_gskew(64 * 1024, 13, 13, 13,
                                           name="equal-13"),
        "equal 16": lambda: make_2bc_gskew(64 * 1024, 16, 16, 16,
                                           name="equal-16"),
        "equal 21": lambda: make_2bc_gskew(64 * 1024, 21, 21, 21,
                                           name="equal-21"),
    }
    table = run_comparison(configs, traces)
    record_results("ablation_histlen", table)
    return table


def test_per_table_history(benchmark):
    table = run_once(benchmark, run)
    emit(table.render(
        "Ablation: per-table vs equal history lengths (Section 4.5)"),
        "ablation_histlen")

    per_table_config = next(config for config in table.config_names
                            if config.startswith("per-table"))
    per_table = table.mean(per_table_config)
    equal_means = [table.mean(config) for config in table.config_names
                   if config.startswith("equal")]

    # Mixed lengths beat (or match within 2%) the best equal length...
    assert per_table <= min(equal_means) * 1.02
    # ...and clearly beat the worst choice of a single length, showing the
    # single-length design is sensitive where the mixed one is robust.
    assert per_table < max(equal_means) * 0.97
