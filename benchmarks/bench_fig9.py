"""Fig 9: the wordline-index choice under the Section 7 hardware
constraints.

Paper findings asserted:

* a purely address-based shared index distributes accesses poorly: the EV8
  choice (4 lghist bits + 2 address bits, path bit in lghist) beats the
  "address only" variants;
* the constrained EV8 functions stand the comparison with complete hashing
  of all information bits;
* the final EV8 predictor lands in the range of the unconstrained 512 Kbit
  ghist reference ("the 352 Kbits Alpha EV8 branch predictor stands the
  comparison against a 512 Kbits 2Bc-gskew predictor using conventional
  branch history").
"""

from conftest import emit, run_once
from repro.experiments import fig9


def test_fig9(benchmark):
    table = run_once(benchmark, fig9.run)
    emit(fig9.render(table), "fig9")

    means = {config: table.mean(config) for config in table.config_names}

    # The EV8 wordline choice beats both address-only variants.
    assert means["EV8"] < means["address only, no path"]
    assert means["EV8"] < means["address only, path"]

    # The constrained functions stand the comparison with complete hashing.
    assert means["EV8"] < means["complete hash"] * 1.15

    # ... and with the unconstrained 512 Kbit ghist reference (the paper's
    # concluding claim), within a generous band.
    assert means["EV8"] < means["4x64K ghist"] * 1.35

    # Index-distribution mechanism: the history wordline uses the table
    # rows far more uniformly than the address wordline (measured directly
    # on gcc's access stream).
    from repro.ev8.indexfuncs import EV8IndexScheme, decompose_index
    from repro.ev8.config import EV8_CONFIG
    from repro.history.providers import BlockLghistProvider
    from repro.indexing.analysis import assess_indices
    from repro.traces.fetch import fetch_blocks_for
    from repro.workloads.spec95 import spec95_trace

    trace = spec95_trace("gcc", 40_000)

    def wordline_entropy(mode):
        scheme = EV8IndexScheme(wordline_mode=mode)
        provider = BlockLghistProvider(include_path=True, delay_blocks=3)
        lines = []
        for block in fetch_blocks_for(trace):
            for vector in provider.begin_block(block):
                lines.append(decompose_index(
                    scheme.compute(vector, EV8_CONFIG.tables())[1])[2])
            provider.end_block(block)
        return assess_indices(lines, 64).entropy

    assert wordline_entropy("history") > wordline_entropy("address")
