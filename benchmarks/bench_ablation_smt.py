"""Ablation: SMT and history management (Section 3).

The EV8 keeps one global history register per thread; its tables are
shared.  Asserted:

* per-thread history registers beat a single shared register on a
  multiprogrammed workload (the shared register interleaves unrelated
  outcome streams),
* a local-history predictor degrades when two threads of the *same binary*
  run together (both its history table and its counters are polluted —
  the paper's argument against a local component on an SMT core),
* the global EV8-style predictor degrades far less in the same experiment.
"""

from conftest import emit, run_once
from repro.experiments.common import record_results
from repro.history.providers import BranchGhistProvider
from repro.predictors import GsharePredictor, LocalPredictor, TableConfig, TwoBcGskewPredictor
from repro.workloads.generator import generate_trace
from repro.workloads.smt import simulate_smt
from repro.workloads.spec95 import profile_for, spec95_trace


def _two_bc():
    return TwoBcGskewPredictor(
        TableConfig(16 * 1024, 0), TableConfig(64 * 1024, 13),
        TableConfig(64 * 1024, 21), TableConfig(64 * 1024, 15),
        name="2bc-gskew")


def run():
    branches = 120_000
    mixed = [spec95_trace("perl", branches), spec95_trace("li", branches)]
    base = profile_for("gcc")
    same_binary = [generate_trace(base, branches),
                   generate_trace(base.with_seed(4242), branches)]

    per_thread = simulate_smt(GsharePredictor(256 * 1024, 12), mixed,
                              BranchGhistProvider, per_thread_history=True)
    shared = simulate_smt(GsharePredictor(256 * 1024, 12), mixed,
                          BranchGhistProvider, per_thread_history=False)

    def rate_solo_and_smt(make):
        solo = sum(simulate_smt(make(), [trace], BranchGhistProvider)
                   .total_mispredictions for trace in same_binary)
        together = simulate_smt(make(), same_binary,
                                BranchGhistProvider).total_mispredictions
        return solo, together

    local_solo, local_smt = rate_solo_and_smt(
        lambda: LocalPredictor(1024, 10, 64 * 1024))
    global_solo, global_smt = rate_solo_and_smt(_two_bc)
    return {
        "per_thread_rate": per_thread.misprediction_rate,
        "shared_rate": shared.misprediction_rate,
        "local_growth": local_smt / max(1, local_solo),
        "global_growth": global_smt / max(1, global_solo),
    }


def test_smt(benchmark):
    results = run_once(benchmark, run)
    record_results("ablation_smt", results)
    emit("\n".join([
        "Ablation: SMT history management (Section 3)",
        f"gshare, 2 threads: per-thread history "
        f"{results['per_thread_rate']:.4f} vs shared "
        f"{results['shared_rate']:.4f} misprediction rate",
        f"same-binary 2-thread growth: local predictor "
        f"x{results['local_growth']:.3f}, global 2Bc-gskew "
        f"x{results['global_growth']:.3f}",
    ]), "ablation_smt")

    # One history register per thread (the EV8 design) wins clearly.
    assert results["per_thread_rate"] < results["shared_rate"] * 0.9
    # Same-binary SMT hurts the local scheme more than the global one.
    assert results["local_growth"] > 1.0
    assert results["global_growth"] < results["local_growth"]
