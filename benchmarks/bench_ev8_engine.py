"""Engine throughput on the full EV8 predictor (the Table 1 configuration).

The closed batched envelope, end to end: block-compressed aged lghist with
path bits (materialized trace-side), the EV8 bank-interleaved index
functions, shared G0/Meta hysteresis, and the partial update policy — all
replayed by ``BatchedEngine(strict=True)``, so any regression that would
silently fall back to the scalar path fails loudly instead.  Asserted:

* the batched run is bit-identical to the scalar reference (mispredictions
  and branch counts), and
* it is at least 3x faster on a >= 1M-branch trace.
"""

from __future__ import annotations

from conftest import emit, run_once
from repro.ev8.predictor import EV8BranchPredictor
from repro.sim.engine import BatchedEngine, ScalarEngine
from repro.traces.fetch import fetch_blocks_for
from repro.workloads.spec95 import default_trace_branches, spec95_trace

MIN_BRANCHES = 1_000_000  # the ISSUE's floor for an honest speedup number


def test_ev8_engine_speedup(benchmark):
    branches = max(MIN_BRANCHES, default_trace_branches())
    trace = spec95_trace("gcc", branches)
    fetch_blocks_for(trace)  # warm the shared block cache for both engines

    def run():
        scalar = ScalarEngine().run(
            EV8BranchPredictor(), trace,
            provider=EV8BranchPredictor.make_provider())
        batched = BatchedEngine(strict=True).run(
            EV8BranchPredictor(), trace,
            provider=EV8BranchPredictor.make_provider())
        return scalar, batched

    scalar, batched = run_once(benchmark, run)
    speedup = scalar.wall_seconds / batched.wall_seconds

    lines = [f"EV8 engine speedup: Table 1 configuration on gcc "
             f"({scalar.branches:,} conditional branches)",
             f"{'engine':>8}{'misp/KI':>10}{'seconds':>10}{'branches/s':>14}",
             "-" * 42,
             f"{'scalar':>8}{scalar.misp_per_ki:>10.3f}"
             f"{scalar.wall_seconds:>10.2f}"
             f"{scalar.branches_per_second:>14,.0f}",
             f"{'batched':>8}{batched.misp_per_ki:>10.3f}"
             f"{batched.wall_seconds:>10.2f}"
             f"{batched.branches_per_second:>14,.0f}",
             "-" * 42,
             f"speedup {speedup:.1f}x"]
    emit("\n".join(lines), "bench_ev8_engine")

    assert batched.engine == "batched"
    assert (batched.mispredictions, batched.branches) == \
        (scalar.mispredictions, scalar.branches), "engines disagree"
    assert speedup >= 3.0, (
        f"batched EV8 only {speedup:.2f}x faster "
        f"({scalar.wall_seconds:.2f}s vs {batched.wall_seconds:.2f}s)")
