"""Engine throughput on the full EV8 predictor (the Table 1 configuration).

The closed batched envelope, end to end: block-compressed aged lghist with
path bits (materialized trace-side), the EV8 bank-interleaved index
functions, shared G0/Meta hysteresis, and the partial update policy — all
replayed by ``BatchedEngine(strict=True)``, so any regression that would
silently fall back to the scalar path fails loudly instead.  Asserted:

* the batched run is bit-identical to the scalar reference (mispredictions
  and branch counts), and
* it is at least 3x faster on a >= 1M-branch trace.

Two telemetry gates ride along:

* with the default ``NullTelemetry`` sink, the instrumented hot path must
  stay within 3% of an identical baseline run (the instrumentation is
  opt-in — the null path is a single attribute check per event site);
* with an enabled ``Telemetry`` sink, the Table 1 partial-update policy
  demonstrably suppresses per-bank write traffic relative to total update
  (the Section 4.2 claim, measured rather than asserted from code reading).
"""

from __future__ import annotations

import time

from conftest import emit, emit_json, run_once
from repro.ev8.predictor import EV8BranchPredictor
from repro.obs import NullTelemetry, Telemetry
from repro.sim.engine import BatchedEngine, ScalarEngine
from repro.traces.fetch import fetch_blocks_for
from repro.workloads.spec95 import default_trace_branches, spec95_trace

MIN_BRANCHES = 1_000_000  # the ISSUE's floor for an honest speedup number


def test_ev8_engine_speedup(benchmark):
    branches = max(MIN_BRANCHES, default_trace_branches())
    trace = spec95_trace("gcc", branches)
    fetch_blocks_for(trace)  # warm the shared block cache for both engines

    def run():
        scalar = ScalarEngine().run(
            EV8BranchPredictor(), trace,
            provider=EV8BranchPredictor.make_provider())
        batched = BatchedEngine(strict=True).run(
            EV8BranchPredictor(), trace,
            provider=EV8BranchPredictor.make_provider())
        return scalar, batched

    scalar, batched = run_once(benchmark, run)
    speedup = scalar.wall_seconds / batched.wall_seconds

    lines = [f"EV8 engine speedup: Table 1 configuration on gcc "
             f"({scalar.branches:,} conditional branches)",
             f"{'engine':>8}{'misp/KI':>10}{'seconds':>10}{'branches/s':>14}",
             "-" * 42,
             f"{'scalar':>8}{scalar.misp_per_ki:>10.3f}"
             f"{scalar.wall_seconds:>10.2f}"
             f"{scalar.branches_per_second:>14,.0f}",
             f"{'batched':>8}{batched.misp_per_ki:>10.3f}"
             f"{batched.wall_seconds:>10.2f}"
             f"{batched.branches_per_second:>14,.0f}",
             "-" * 42,
             f"speedup {speedup:.1f}x"]
    emit("\n".join(lines), "bench_ev8_engine")
    emit_json({
        "wall_s": {"scalar": scalar.wall_seconds,
                   "batched": batched.wall_seconds},
        "speedup": speedup,
        "branches": scalar.branches,
        "branches_per_second": {
            "scalar": scalar.branches_per_second,
            "batched": batched.branches_per_second},
    }, "BENCH_ev8_engine")

    assert batched.engine == "batched"
    assert (batched.mispredictions, batched.branches) == \
        (scalar.mispredictions, scalar.branches), "engines disagree"
    assert speedup >= 3.0, (
        f"batched EV8 only {speedup:.2f}x faster "
        f"({scalar.wall_seconds:.2f}s vs {batched.wall_seconds:.2f}s)")


def test_null_telemetry_overhead(benchmark):
    """The observability tax when nobody is observing: < 3%.

    Baseline (no sink argument) and explicit ``NullTelemetry()`` runs are
    interleaved and each variant keeps its best-of-N wall time, so the gate
    measures the code path, not scheduler noise.  It fails if the null sink
    ever starts doing real work (e.g. the ``enabled`` fast-gate is dropped
    from a hot accounting site).
    """
    branches = max(400_000, default_trace_branches())
    trace = spec95_trace("gcc", branches)
    fetch_blocks_for(trace)
    rounds = 3

    def timed(sink):
        started = time.perf_counter()
        result = BatchedEngine(strict=True).run(
            EV8BranchPredictor(), trace,
            provider=EV8BranchPredictor.make_provider(), telemetry=sink)
        elapsed = time.perf_counter() - started
        assert result.engine == "batched"
        return elapsed

    def run():
        baseline, null_sink = [], []
        for _ in range(rounds):
            baseline.append(timed(None))
            null_sink.append(timed(NullTelemetry()))
        return min(baseline), min(null_sink)

    base_seconds, null_seconds = run_once(benchmark, run)
    overhead = null_seconds / base_seconds - 1.0
    emit("\n".join([
        f"NullTelemetry overhead: EV8 batched on gcc ({branches:,} branches),"
        f" best of {rounds}",
        f"{'variant':>14}{'seconds':>10}",
        "-" * 24,
        f"{'baseline':>14}{base_seconds:>10.3f}",
        f"{'null sink':>14}{null_seconds:>10.3f}",
        "-" * 24,
        f"overhead {overhead:+.1%} (gate: < +3%)"]), "bench_null_telemetry")
    assert overhead < 0.03, (
        f"NullTelemetry run {overhead:+.1%} slower than baseline "
        f"({null_seconds:.3f}s vs {base_seconds:.3f}s)")


def test_partial_update_write_suppression(benchmark):
    """Enabled telemetry on the Table 1 configuration: the partial policy's
    per-bank write traffic vs total update, and the suppression headline
    (``update.suppressed_writes`` = writes never issued)."""
    branches = max(400_000, default_trace_branches())
    trace = spec95_trace("gcc", branches)
    fetch_blocks_for(trace)

    def run():
        sinks = {}
        for policy in ("partial", "total"):
            sink = Telemetry()
            BatchedEngine(strict=True).run(
                EV8BranchPredictor(update_policy=policy), trace,
                provider=EV8BranchPredictor.make_provider(), telemetry=sink)
            sinks[policy] = sink.counters
        return sinks

    counters = run_once(benchmark, run)

    def writes(policy, kind):
        return sum(value for name, value in counters[policy].items()
                   if name.startswith("bank.") and name.endswith(kind))

    rows = []
    for bank in ("bim", "g0", "g1", "meta"):
        per_bank = [counters[policy][f"bank.{bank}.{kind}"]
                    for policy in ("partial", "total")
                    for kind in ("prediction_writes", "hysteresis_writes")]
        rows.append(f"{bank:>6}" + "".join(f"{v:>14,}" for v in per_bank))
    total_writes = {p: writes(p, "_writes") for p in ("partial", "total")}
    suppressed = counters["partial"]["update.suppressed_writes"]
    emit("\n".join(
        [f"Partial-update write suppression: Table 1 EV8 on gcc "
         f"({branches:,} branches)",
         f"{'bank':>6}{'part pred':>14}{'part hyst':>14}"
         f"{'total pred':>14}{'total hyst':>14}",
         "-" * 62] + rows + ["-" * 62,
         f"writes issued: partial {total_writes['partial']:,} vs total "
         f"{total_writes['total']:,} "
         f"({1 - total_writes['partial'] / total_writes['total']:.1%} fewer)",
         f"suppressed bank updates never issued: {suppressed:,}"]),
        "bench_write_suppression")

    assert suppressed > 0, "partial update never suppressed anything"
    assert total_writes["partial"] < total_writes["total"], (
        "partial update did not reduce write traffic: "
        f"{total_writes['partial']:,} vs {total_writes['total']:,}")
