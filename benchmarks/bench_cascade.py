"""Extension: the conclusion's cascaded predictor hierarchy.

"one may consider further extending the hierarchy of predictors with
increased accuracies and delays: line predictor, global history branch
prediction, backup branch predictor."

Measured here: the EV8 as primary with a perceptron backup (the
conclusion's named candidate) over longer history.  Asserted: the backup
never worsens final accuracy, its overrides are precise (mostly
corrections), and the pipeline-cost model shows the delay trade-off
paying off on the benchmarks where hard branches dominate.
"""

from conftest import emit, run_once
from repro.experiments.common import experiment_traces, record_results
from repro.ev8.predictor import EV8BranchPredictor
from repro.history.providers import ev8_info_provider
from repro.predictors import CascadePredictor, PerceptronPredictor
from repro.sim.driver import simulate


def run():
    traces = experiment_traces()
    rows = {}
    for name, trace in traces.items():
        cascade = CascadePredictor(
            EV8BranchPredictor(),
            PerceptronPredictor(4096, 34),
            backup_delay=4, misprediction_penalty=14,
            name="ev8+perceptron")
        result = simulate(cascade, trace, ev8_info_provider())
        stats = cascade.statistics
        rows[name] = {
            "primary_misp": stats.primary_mispredictions,
            "final_misp": stats.final_mispredictions,
            "overrides": stats.overrides,
            "precision": stats.override_precision,
            "cost": cascade.pipeline_cost(),
            "misp_per_ki": result.misp_per_ki,
        }
    record_results("cascade", rows)
    return rows


def test_cascade_hierarchy(benchmark):
    rows = run_once(benchmark, run)

    lines = ["Extension: EV8 + perceptron backup hierarchy (conclusion)",
             f"{'benchmark':<10}{'primary':>9}{'final':>9}{'overrides':>11}"
             f"{'precision':>11}{'cost/pred':>11}"]
    lines.append("-" * len(lines[1]))
    for name, row in rows.items():
        lines.append(f"{name:<10}{row['primary_misp']:>9}"
                     f"{row['final_misp']:>9}{row['overrides']:>11}"
                     f"{row['precision']:>11.2f}{row['cost']:>11.3f}")
    emit("\n".join(lines), "cascade")

    improved = 0
    for name, row in rows.items():
        # The gated backup never makes the final prediction worse than the
        # primary by more than noise.
        assert row["final_misp"] <= row["primary_misp"] * 1.01, name
        # Overrides, where taken, are mostly corrections.
        if row["overrides"] > 100:
            assert row["precision"] > 0.5, name
        if row["final_misp"] < row["primary_misp"]:
            improved += 1
    # The backup materially helps on several benchmarks.
    assert improved >= 3, f"backup improved only {improved} benchmarks"
