"""End-to-end sweep throughput: plane fabric + work-stealing scheduler.

The gate this PR ships under: a Table-1-sized EV8 history sweep (>= 12
points over 4 SPEC95 stand-in traces) through the new ``sweep_parallel`` —
shared-memory planes, persistent pool, ``(point, trace)`` work units, fast
replay kernel — must beat an honest reproduction of the pre-fabric
orchestration (fresh default ``ProcessPoolExecutor``, whole-point tasks
that pickle every trace and re-materialize its information vectors in
every task, ``batched-compat`` replay kernel) by **>= 3x end-to-end
wall-clock**, while producing **bit-identical** ``SweepPoint.per_benchmark``
values.  A second, smaller pass asserts the merged telemetry counters of a
recording parallel sweep are identical to the serial fold.

Results land in ``results/BENCH_sweep.json`` (commit-stamped, so successive
runs form a perf trajectory).
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor

from conftest import emit, emit_json, run_once
from repro.ev8.config import EV8_CONFIG
from repro.ev8.predictor import EV8BranchPredictor
from repro.history.providers import ev8_info_provider
from repro.obs import Telemetry
from repro.predictors.twobcgskew import TableConfig
from repro.sim.sweep import _evaluate_point, sweep, sweep_parallel
from repro.traces.model import Trace
from repro.workloads.spec95 import default_trace_branches, spec95_trace

SWEEP_VALUES = list(range(10, 22))  # 12 points around Table 1's G1=21
SWEEP_TRACES = ("gcc", "go", "compress", "li")
MAX_WORKERS = 2


def table1_predictor(g1_history: int) -> EV8BranchPredictor:
    """The full Table 1 EV8 predictor with the G1 history length swept
    (the paper's Section 4.5 history-length exploration, at scale)."""
    config = dataclasses.replace(
        EV8_CONFIG, g1=TableConfig(64 * 1024, g1_history, 64 * 1024))
    return EV8BranchPredictor(config=config)


def _fresh_traces(branches: int) -> dict[str, Trace]:
    """Distinct trace objects per arm so neither arm inherits the other's
    materialization or manifest caches."""
    out = {}
    for name in SWEEP_TRACES:
        trace = spec95_trace(name, branches)
        out[name] = Trace(trace.name, trace.starts.copy(),
                          trace.num_instructions.copy(), trace.kinds.copy(),
                          trace.takens.copy(), trace.next_starts.copy())
    return out


def _legacy_sweep_parallel(values, traces):
    """The pre-fabric orchestration, reproduced: one fresh default-context
    pool per sweep, one whole-point task per value (each task receives a
    pickled copy of every trace and re-materializes each trace's planes),
    and the original replay kernel (``batched-compat``)."""
    with ProcessPoolExecutor(max_workers=MAX_WORKERS) as pool:
        futures = [pool.submit(_evaluate_point, table1_predictor, value,
                               traces, ev8_info_provider, "batched-compat",
                               False, False)
                   for value in values]
        return [future.result()[0] for future in futures]


def test_sweep_fabric_speedup(benchmark):
    branches = max(60_000, default_trace_branches() // 4)
    total_branches = len(SWEEP_VALUES) * len(SWEEP_TRACES) * branches

    def run():
        legacy_traces = _fresh_traces(branches)
        started = time.perf_counter()
        legacy = _legacy_sweep_parallel(SWEEP_VALUES, legacy_traces)
        legacy_seconds = time.perf_counter() - started

        fabric_traces = _fresh_traces(branches)
        started = time.perf_counter()
        fabric = sweep_parallel(table1_predictor, SWEEP_VALUES,
                                fabric_traces, ev8_info_provider,
                                engine="batched", max_workers=MAX_WORKERS,
                                use_cache=False)
        fabric_seconds = time.perf_counter() - started
        return legacy, legacy_seconds, fabric, fabric_seconds

    legacy, legacy_seconds, fabric, fabric_seconds = run_once(benchmark, run)
    speedup = legacy_seconds / fabric_seconds

    lines = [f"Sweep fabric speedup: {len(SWEEP_VALUES)}-point Table 1 EV8 "
             f"G1-history sweep, {len(SWEEP_TRACES)} traces x {branches:,} "
             f"branches, {MAX_WORKERS} workers",
             f"{'arm':>8}{'seconds':>10}{'branches/s':>14}",
             "-" * 32,
             f"{'legacy':>8}{legacy_seconds:>10.2f}"
             f"{total_branches / legacy_seconds:>14,.0f}",
             f"{'fabric':>8}{fabric_seconds:>10.2f}"
             f"{total_branches / fabric_seconds:>14,.0f}",
             "-" * 32,
             f"speedup {speedup:.1f}x (gate: >= 3x)"]
    emit("\n".join(lines), "bench_sweep_fabric")
    emit_json({
        "wall_s": {"legacy": legacy_seconds, "fabric": fabric_seconds},
        "speedup": speedup,
        "points": len(SWEEP_VALUES),
        "traces": len(SWEEP_TRACES),
        "branches_per_trace": branches,
        "branches_per_second": {
            "legacy": total_branches / legacy_seconds,
            "fabric": total_branches / fabric_seconds},
    }, "BENCH_sweep")

    assert [p.value for p in fabric] == [p.value for p in legacy]
    assert [p.per_benchmark for p in fabric] \
        == [p.per_benchmark for p in legacy], \
        "fabric sweep is not bit-identical to the legacy orchestration"
    assert speedup >= 3.0, (
        f"fabric sweep only {speedup:.2f}x faster "
        f"({legacy_seconds:.2f}s vs {fabric_seconds:.2f}s)")


def test_sweep_fabric_telemetry_counters_match_serial(benchmark):
    """Merged telemetry counters of a recording parallel sweep are
    identical to the serial fold (run at reduced scale: recording sinks
    deliberately force the compat kernel, so this pass is about the fold
    contract, not throughput)."""
    branches = 20_000
    values = SWEEP_VALUES[:4]

    def run():
        serial_sink, parallel_sink = Telemetry(), Telemetry()
        serial = sweep(table1_predictor, values, _fresh_traces(branches),
                       ev8_info_provider, engine="batched", use_cache=False,
                       telemetry=serial_sink)
        parallel = sweep_parallel(table1_predictor, values,
                                  _fresh_traces(branches), ev8_info_provider,
                                  engine="batched", max_workers=MAX_WORKERS,
                                  use_cache=False, telemetry=parallel_sink)
        return serial, serial_sink, parallel, parallel_sink

    serial, serial_sink, parallel, parallel_sink = run_once(benchmark, run)
    assert [p.per_benchmark for p in parallel] \
        == [p.per_benchmark for p in serial]
    assert serial_sink.counters == parallel_sink.counters, \
        "parallel merged counters diverged from the serial fold"
