"""Setuptools shim.

The execution environment has no network access and no ``wheel`` package, so
PEP 517 editable installs (which require ``bdist_wheel``) fail.  Keeping a
``setup.py`` lets ``pip install -e . --no-build-isolation`` fall back to the
legacy ``setup.py develop`` path.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
