"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print the EV8 configuration (Table 1) and the library inventory.
``simulate``
    Run one predictor over one benchmark trace.
``table2`` / ``table3`` / ``fig5`` ... ``fig10``
    Run one paper experiment and print the paper-style table.
``sweep``
    Sweep a gshare history length over one benchmark (quick exploration).
"""

from __future__ import annotations

import argparse
import sys

from repro.workloads.spec95 import SPEC95_BENCHMARKS

__all__ = ["main", "build_parser"]

_EXPERIMENTS = ("table2", "table3", "fig5", "fig6", "fig7", "fig8", "fig9",
                "fig10")

_PREDICTOR_CHOICES = ("ev8", "2bc-gskew", "egskew", "gshare", "bimodal",
                      "bimode", "yags", "agree", "gas", "local",
                      "tournament", "perceptron")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Alpha EV8 branch predictor reproduction (Seznec et "
                    "al., ISCA 2002)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print the EV8 configuration and inventory")

    simulate = sub.add_parser("simulate",
                              help="run one predictor on one benchmark")
    simulate.add_argument("predictor", choices=_PREDICTOR_CHOICES)
    simulate.add_argument("benchmark", choices=SPEC95_BENCHMARKS)
    simulate.add_argument("--branches", type=int, default=100_000,
                          help="trace length in conditional branches")
    simulate.add_argument("--telemetry", default=None, metavar="FILE",
                          help="record telemetry; write it to FILE "
                               "(.csv for CSV, else JSON) and print the "
                               "summary table")

    for name in _EXPERIMENTS:
        experiment = sub.add_parser(
            name, help=f"run the paper's {name} experiment")
        experiment.add_argument("--branches", type=int, default=None,
                                help="trace length per benchmark")
        experiment.add_argument("--telemetry", default=None, metavar="FILE",
                                help="record telemetry across the "
                                     "experiment; write it to FILE (.csv "
                                     "for CSV, else JSON)")

    sweep = sub.add_parser("sweep", help="gshare history-length sweep")
    sweep.add_argument("benchmark", choices=SPEC95_BENCHMARKS)
    sweep.add_argument("--entries", type=int, default=64 * 1024)
    sweep.add_argument("--branches", type=int, default=100_000)
    sweep.add_argument("--lengths", type=int, nargs="+",
                       default=[0, 4, 8, 12, 16, 20])
    sweep.add_argument("--parallel", action="store_true",
                       help="fan the sweep out over the shared-memory "
                            "plane fabric and persistent worker pool")
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes for --parallel "
                            "(default: one per CPU)")
    return parser


def _make_predictor(name: str):
    from repro import (
        AgreePredictor, BiModePredictor, BimodalPredictor,
        EGskewPredictor, EV8BranchPredictor, GAsPredictor, GsharePredictor,
        LocalPredictor, PerceptronPredictor, TableConfig,
        TournamentPredictor, TwoBcGskewPredictor, YagsPredictor)
    factories = {
        "ev8": EV8BranchPredictor,
        "2bc-gskew": lambda: TwoBcGskewPredictor(
            TableConfig(16 * 1024, 0), TableConfig(64 * 1024, 13),
            TableConfig(64 * 1024, 21), TableConfig(64 * 1024, 15)),
        "egskew": lambda: EGskewPredictor(64 * 1024, 16),
        "gshare": lambda: GsharePredictor(256 * 1024, 12),
        "bimodal": lambda: BimodalPredictor(64 * 1024),
        "bimode": lambda: BiModePredictor(128 * 1024, 16 * 1024, 17),
        "yags": lambda: YagsPredictor(32 * 1024, 32 * 1024, 15),
        "agree": lambda: AgreePredictor(128 * 1024, 16 * 1024, 12),
        "gas": lambda: GAsPredictor(256 * 1024, 10),
        "local": lambda: LocalPredictor(1024, 10, 64 * 1024),
        "tournament": TournamentPredictor,
        "perceptron": lambda: PerceptronPredictor(1024, 24),
    }
    return factories[name]()


def _command_info() -> int:
    from repro import EV8_CONFIG, __version__
    from repro.ev8.config import TABLE1
    print(f"repro {__version__} — Alpha EV8 conditional branch predictor "
          f"reproduction")
    print("\nTable 1: the EV8 predictor configuration")
    for name, spec in TABLE1.items():
        print(f"  {name:<5} {spec['prediction'] // 1024:>3}K prediction / "
              f"{spec['hysteresis'] // 1024:>3}K hysteresis entries, "
              f"history length {spec['history']}")
    print(f"  total {EV8_CONFIG.total_bits // 1024} Kbits "
          f"({EV8_CONFIG.prediction_bits // 1024} prediction + "
          f"{EV8_CONFIG.hysteresis_bits // 1024} hysteresis)")
    print("\nPredictors:", ", ".join(_PREDICTOR_CHOICES))
    print("Benchmarks:", ", ".join(SPEC95_BENCHMARKS))
    print("Experiments:", ", ".join(_EXPERIMENTS))
    return 0


def _command_simulate(args) -> int:
    from repro import EV8BranchPredictor, simulate, spec95_trace
    from repro.obs import Telemetry, render_summary
    from repro.history.providers import BranchGhistProvider
    predictor = _make_predictor(args.predictor)
    trace = spec95_trace(args.benchmark, args.branches)
    provider = (EV8BranchPredictor.make_provider()
                if args.predictor == "ev8" else BranchGhistProvider())
    sink = Telemetry() if args.telemetry else None
    result = simulate(predictor, trace, provider, telemetry=sink)
    print(result)
    print(f"storage: {predictor.storage_kbits:.1f} Kbits")
    if sink is not None:
        sink.write(args.telemetry)
        print(f"\nwrote telemetry to {args.telemetry}")
        print(render_summary(sink.snapshot()))
    return 0


def _command_experiment(name: str, args) -> int:
    import importlib
    module = importlib.import_module(f"repro.experiments.{name}")
    telemetry_path = getattr(args, "telemetry", None)
    if telemetry_path:
        from repro.obs import Telemetry, render_summary, use_telemetry
        sink = Telemetry()
        with use_telemetry(sink):
            print(module.render(module.run(args.branches)))
        sink.write(telemetry_path)
        print(f"\nwrote telemetry to {telemetry_path}")
        print(render_summary(sink.snapshot()))
        return 0
    print(module.render(module.run(args.branches)))
    return 0


def _gshare_factory(entries: int, history: int):
    """Module-level sweep factory: ``sweep_parallel`` ships factories to
    worker processes, so this must be picklable (a lambda is not)."""
    from repro import GsharePredictor
    return GsharePredictor(entries, history)


def _command_sweep(args) -> int:
    import functools
    from repro import spec95_trace
    from repro.sim.sweep import sweep as run_sweep, sweep_parallel
    traces = {args.benchmark: spec95_trace(args.benchmark, args.branches)}
    factory = functools.partial(_gshare_factory, args.entries)
    if args.parallel:
        points = sweep_parallel(factory, args.lengths, traces,
                                max_workers=args.workers)
    else:
        points = run_sweep(factory, args.lengths, traces)
    best = min(points, key=lambda point: point.mean_misp_per_ki)
    for point in points:
        marker = "  <- best" if point is best else ""
        print(f"h={point.value:<3} {point.mean_misp_per_ki:8.3f} misp/KI"
              f"{marker}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _command_info()
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command in _EXPERIMENTS:
        return _command_experiment(args.command, args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
