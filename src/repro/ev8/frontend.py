"""EV8 front-end pipeline model (Section 2, Figs 1 and 3).

The EV8 fetches up to two 8-instruction blocks per cycle.  Next-block
addresses come from a fast but weak **line predictor**; the powerful
PC-address generator (conditional predictor + jump predictor + return stack
+ final selection) runs two cycles behind and redirects fetch on a mismatch.

This module is a *structural* model, not a cycle-accurate one: it processes
the architecturally executed fetch-block stream two blocks per cycle and

* drives the line predictor and measures its accuracy (motivating the
  backing PC-address generator),
* computes every block's bank number exactly as the hardware would and
  verifies the Section 6 guarantee — two dynamically successive blocks
  never access the same predictor bank,
* counts predictions per cycle (up to 16) to exhibit the bandwidth the
  predictor sustains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.bitops import xor_fold
from repro.ev8.banks import BankNumberGenerator
from repro.traces.fetch import FetchBlock, fetch_blocks_for
from repro.traces.model import Trace

__all__ = ["LinePredictor", "FrontEndStatistics", "FrontEnd"]


class LinePredictor:
    """The EV8 line predictor: small tables indexed with the current fetch
    block address through "very limited hashing logic", predicting the next
    fetch block's address.  Simple indexing means aliasing and therefore
    "relatively low line prediction accuracy" (Section 2).
    """

    __slots__ = ("entries", "_table")

    def __init__(self, entries: int = 4096) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a power of two, got {entries}")
        self.entries = entries
        self._table = [0] * entries

    def _index(self, block_address: int) -> int:
        # "Very limited hashing": a single fold of the block address.
        return xor_fold(block_address >> 2, self.entries.bit_length() - 1)

    def predict(self, block_address: int) -> int:
        """Predicted next-fetch-block address (0 = no prediction yet)."""
        return self._table[self._index(block_address)]

    def train(self, block_address: int, next_address: int) -> None:
        self._table[self._index(block_address)] = next_address


@dataclass
class FrontEndStatistics:
    """What one front-end run observed."""

    cycles: int = 0
    blocks: int = 0
    conditional_branches: int = 0
    line_predictions: int = 0
    line_hits: int = 0
    bank_conflicts: int = 0
    """Successive-block bank collisions — zero by construction (Section 6)."""
    predictions_per_cycle: dict[int, int] = field(default_factory=dict)
    """Histogram: conditional branches predicted in a cycle -> cycle count."""

    @property
    def line_accuracy(self) -> float:
        if self.line_predictions == 0:
            return 0.0
        return self.line_hits / self.line_predictions

    @property
    def max_predictions_in_a_cycle(self) -> int:
        return max(self.predictions_per_cycle, default=0)


class FrontEnd:
    """Walk a trace two fetch blocks per cycle, checking the banking
    invariant and exercising the line predictor."""

    def __init__(self, line_predictor: LinePredictor | None = None) -> None:
        self.line_predictor = line_predictor or LinePredictor()
        self.banks = BankNumberGenerator()

    def run(self, trace: Trace) -> FrontEndStatistics:
        """Process the whole trace; returns the collected statistics."""
        stats = FrontEndStatistics()
        blocks = fetch_blocks_for(trace)
        previous_bank: int | None = None
        previous_block: FetchBlock | None = None
        for cycle_start in range(0, len(blocks), 2):
            pair = blocks[cycle_start:cycle_start + 2]
            stats.cycles += 1
            predicted_this_cycle = 0
            for block in pair:
                if previous_block is not None:
                    stats.line_predictions += 1
                    predicted = self.line_predictor.predict(
                        previous_block.start)
                    if predicted == block.start:
                        stats.line_hits += 1
                    self.line_predictor.train(previous_block.start,
                                              block.start)
                bank = self.banks.next_bank(block.start)
                if previous_bank is not None and bank == previous_bank:
                    stats.bank_conflicts += 1
                previous_bank = bank
                previous_block = block
                stats.blocks += 1
                stats.conditional_branches += len(block.branch_pcs)
                predicted_this_cycle += len(block.branch_pcs)
            stats.predictions_per_cycle[predicted_this_cycle] = (
                stats.predictions_per_cycle.get(predicted_this_cycle, 0) + 1)
        return stats
