"""The Alpha EV8 branch predictor: configuration, banking, index functions,
the integrated predictor, and the front-end pipeline model."""

from repro.ev8.arrays import PhysicalCoordinate, WordlineLayout
from repro.ev8.banks import BankNumberGenerator, bank_number
from repro.ev8.config import EV8_CONFIG, TABLE1, EV8Config
from repro.ev8.frontend import FrontEnd, FrontEndStatistics, LinePredictor
from repro.ev8.indexfuncs import (
    EV8IndexScheme,
    WORDLINE_MODES,
    decompose_index,
)
from repro.ev8.pcgen import (
    JumpPredictor,
    PCAddressGenerator,
    PCGenStatistics,
    ReturnAddressStack,
)
from repro.ev8.predictor import EV8BranchPredictor

__all__ = [
    "PhysicalCoordinate",
    "WordlineLayout",
    "BankNumberGenerator",
    "bank_number",
    "EV8_CONFIG",
    "TABLE1",
    "EV8Config",
    "FrontEnd",
    "FrontEndStatistics",
    "LinePredictor",
    "EV8IndexScheme",
    "WORDLINE_MODES",
    "decompose_index",
    "EV8BranchPredictor",
    "JumpPredictor",
    "PCAddressGenerator",
    "PCGenStatistics",
    "ReturnAddressStack",
]
