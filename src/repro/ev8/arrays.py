"""The physical memory-array layout of the EV8 predictor (Section 7.1).

Logically the predictor has four tables x (prediction + hysteresis) = eight
arrays; physically it is **two arrays per bank** (one prediction, one
hysteresis), eight total, where *"each word line in the arrays is made up
of the four logical predictor components"*:

* each bank has 64 wordlines;
* each wordline holds 32 8-bit words of each of G0, G1 and Meta plus 8
  8-bit words of BIM — 832 prediction bits per line;
* a prediction read selects one wordline, then one 8-bit word per logical
  component (column selection), then permutes the word (unshuffle).

This module computes the bit-accurate physical coordinates of every logical
table entry and proves the layout sound: the mapping is a bijection onto
``banks x wordlines x 832`` bits.  It exists for structural verification
(tests assert the logical predictor state and the physical image agree) and
for layout inspection (`examples/frontend_pipeline.py`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ev8.config import EV8Config, EV8_CONFIG

__all__ = ["PhysicalCoordinate", "WordlineLayout"]

_TABLE_ORDER = ("BIM", "G0", "G1", "Meta")


@dataclass(frozen=True)
class PhysicalCoordinate:
    """Where one logical prediction bit lives on silicon."""

    bank: int
    wordline: int
    bit: int
    """Bit offset within the 832-bit wordline."""

    array: str = "prediction"
    """``"prediction"`` or ``"hysteresis"`` — which of the bank's two
    physical arrays."""


class WordlineLayout:
    """Bit-accurate wordline layout for a (validated) EV8 configuration.

    Within a wordline, components are laid out in the fixed order BIM, G0,
    G1, Meta; within a component, words in column order; within a word,
    bits in offset order.  (The real floorplan interleaves differently, but
    any fixed bijection is equivalent for verification purposes.)
    """

    def __init__(self, config: EV8Config | None = None) -> None:
        self.config = config or EV8_CONFIG
        self.config.validate()
        self.banks = self.config.banks
        self.wordlines = 1 << self.config.wordline_bits
        self.word_bits = 1 << self.config.word_bits
        # Words of each component per wordline: entries spread evenly over
        # banks and wordlines.
        self._words_per_line: dict[str, int] = {}
        self._component_base: dict[str, int] = {}
        base = 0
        for name, table in zip(_TABLE_ORDER, self.config.tables()):
            words = table.entries // (self.banks * self.wordlines
                                      * self.word_bits)
            if words == 0:
                raise ValueError(
                    f"{name} too small for the {self.banks}x"
                    f"{self.wordlines} bank/wordline grid")
            self._words_per_line[name] = words
            self._component_base[name] = base
            base += words * self.word_bits
        self.line_bits = base

    # -- geometry ------------------------------------------------------------

    def words_per_line(self, table: str) -> int:
        """8-bit words of one component per wordline (paper: 32 for
        G0/G1/Meta, 8 for BIM)."""
        return self._words_per_line[table]

    def component_bit_range(self, table: str) -> tuple[int, int]:
        """[start, end) bit offsets of a component within the wordline."""
        start = self._component_base[table]
        return start, start + self._words_per_line[table] * self.word_bits

    # -- mapping ------------------------------------------------------------

    def locate(self, table: str, index: int,
               array: str = "prediction") -> PhysicalCoordinate:
        """Physical coordinate of logical ``table[index]``.

        The index decomposes exactly as the read pipeline does: bank (low 2
        bits), word offset (3 bits), wordline (6 bits), column (the rest).
        """
        if table not in _TABLE_ORDER:
            raise ValueError(f"unknown table {table!r}")
        if array not in ("prediction", "hysteresis"):
            raise ValueError(f"unknown array {array!r}")
        position = _TABLE_ORDER.index(table)
        spec = self.config.tables()[position]
        entries = (spec.entries if array == "prediction"
                   else (spec.hysteresis_entries or spec.entries))
        if not 0 <= index < entries:
            raise ValueError(
                f"{table} {array} index {index} out of range {entries}")
        bank = index & (self.banks - 1)
        offset = (index >> 2) & (self.word_bits - 1)
        wordline = (index >> 5) & (self.wordlines - 1)
        column = index >> (2 + self.config.word_bits
                           + self.config.wordline_bits)
        bit = (self._component_base[table] + column * self.word_bits
               + offset)
        return PhysicalCoordinate(bank=bank, wordline=wordline, bit=bit,
                                  array=array)

    def total_prediction_bits(self) -> int:
        """Capacity of the four prediction arrays combined."""
        return self.banks * self.wordlines * self.line_bits

    def enumerate_all(self, array: str = "prediction"):
        """Yield ``(table, index, coordinate)`` for every logical bit
        (exhaustive; used by the bijection tests on scaled-down configs)."""
        for name, table in zip(_TABLE_ORDER, self.config.tables()):
            entries = (table.entries if array == "prediction"
                       else (table.hysteresis_entries or table.entries))
            for index in range(entries):
                yield name, index, self.locate(name, index, array)
