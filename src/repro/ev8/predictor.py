"""The integrated Alpha EV8 branch predictor.

Everything the paper's final design combines:

* 2Bc-gskew prediction scheme with the partial update policy (Section 4),
* Table 1 sizes — small BIM, half-size G0/Meta hysteresis (Sections 4.4/4.6),
* per-table history lengths 4/13/21/15 (Section 4.5),
* three-fetch-blocks-old lghist with embedded path bits, plus path
  information from the three last fetch blocks (Section 5),
* conflict-free 4-way bank interleaving via two-block-ahead bank number
  computation (Section 6),
* the hardware-constrained index functions (Section 7).

:class:`EV8BranchPredictor` is a drop-in
:class:`~repro.predictors.base.Predictor`; pair it with
:func:`~repro.history.providers.ev8_info_provider` to reproduce the shipped
configuration, or with other providers/schemes for the Fig 7-9 ablations.
"""

from __future__ import annotations

from repro.ev8.config import EV8Config, EV8_CONFIG
from repro.ev8.indexfuncs import EV8IndexScheme, decompose_index
from repro.history.providers import BlockLghistProvider, InfoVector
from repro.predictors.twobcgskew import IndexScheme, TwoBcGskewPredictor

__all__ = ["EV8BranchPredictor"]


class EV8BranchPredictor(TwoBcGskewPredictor):
    """The 352 Kbit EV8 predictor (Table 1 configuration by default)."""

    def __init__(self, config: EV8Config | None = None,
                 index_scheme: IndexScheme | None = None,
                 update_policy: str = "partial",
                 name: str = "ev8") -> None:
        config = config or EV8_CONFIG
        config.validate()
        self.config = config
        super().__init__(
            bim=config.bim, g0=config.g0, g1=config.g1, meta=config.meta,
            index_scheme=index_scheme or EV8IndexScheme(),
            update_policy=update_policy, name=name)

    @staticmethod
    def make_provider() -> BlockLghistProvider:
        """The matching information-vector provider: 3-blocks-old lghist
        with path bits and a 3-deep path register (Section 5)."""
        from repro.history.providers import ev8_info_provider
        return ev8_info_provider()

    # -- structural views ----------------------------------------------------

    def physical_location(self, vector: InfoVector,
                          table: str) -> tuple[int, int, int, int]:
        """(bank, word offset, wordline, column) a prediction would be read
        from — the Section 7.1 physical decomposition.  ``table`` is one of
        ``"BIM"``, ``"G0"``, ``"G1"``, ``"Meta"``."""
        order = {"BIM": 0, "G0": 1, "G1": 2, "Meta": 3}
        try:
            position = order[table]
        except KeyError:
            raise ValueError(
                f"table must be one of {sorted(order)}, got {table!r}"
            ) from None
        index = self.indices(vector)[position]
        column_bits = 3 if table == "BIM" else 5
        return decompose_index(index, column_bits)

    def predict_block(self, vectors: list[InfoVector]) -> list[bool]:
        """Predict all conditional branches of one fetch block in a single
        access, as the hardware does (up to 8 predictions per block; the
        whole 8-bit word is read and unshuffled).

        All vectors must come from the same fetch block, hence share bank,
        wordline and column — only the in-word offsets differ.
        """
        if not vectors:
            return []
        first_location = decompose_index(self.indices(vectors[0])[1])
        predictions = []
        for vector in vectors:
            location = decompose_index(self.indices(vector)[1])
            if (location[0], location[2], location[3]) != (
                    first_location[0], first_location[2], first_location[3]):
                raise ValueError(
                    "predict_block requires vectors from a single fetch "
                    "block (bank/wordline/column must match)")
            predictions.append(self.predict(vector))
        return predictions
