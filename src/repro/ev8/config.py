"""The Alpha EV8 branch predictor configuration (Table 1 of the paper).

======  ================  ================  ==============
table   prediction        hysteresis        history length
======  ================  ================  ==============
BIM     16K entries       16K entries       4
G0      64K entries       32K entries       13
G1      64K entries       64K entries       21
Meta    64K entries       32K entries       15
======  ================  ================  ==============

Totals: 208 Kbits of prediction + 144 Kbits of hysteresis = **352 Kbits**.

Note an inconsistency inside the paper itself: the prose of Section 4.4 says
G1 and Meta have half-size hysteresis, but Table 1 and Section 8.4 both
halve **G0 and Meta** — and only the Table 1 assignment sums to the stated
208/144 Kbit split, so that is what we (and this module's validation)
follow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.predictors.twobcgskew import TableConfig

__all__ = ["EV8Config", "EV8_CONFIG", "TABLE1"]


@dataclass(frozen=True)
class EV8Config:
    """Sizes and history lengths of the four logical tables, plus the
    structural parameters of the banked implementation (Sections 6-7)."""

    bim: TableConfig = field(default_factory=lambda: TableConfig(
        entries=16 * 1024, history_length=4, hysteresis_entries=16 * 1024))
    g0: TableConfig = field(default_factory=lambda: TableConfig(
        entries=64 * 1024, history_length=13, hysteresis_entries=32 * 1024))
    g1: TableConfig = field(default_factory=lambda: TableConfig(
        entries=64 * 1024, history_length=21, hysteresis_entries=64 * 1024))
    meta: TableConfig = field(default_factory=lambda: TableConfig(
        entries=64 * 1024, history_length=15, hysteresis_entries=32 * 1024))

    banks: int = 4
    """The predictor is 4-way bank-interleaved (Section 6)."""
    wordline_bits: int = 6
    """Each bank has 64 wordlines (Section 7.1)."""
    word_bits: int = 3
    """8 predictions per word — one aligned fetch block (Section 7.1)."""
    history_delay_blocks: int = 3
    """lghist is three fetch blocks old (Section 5.1)."""
    path_depth: int = 3
    """Addresses of the three last fetch blocks feed the index (Section 5.2)."""

    def tables(self) -> tuple[TableConfig, TableConfig, TableConfig, TableConfig]:
        """(BIM, G0, G1, Meta)."""
        return (self.bim, self.g0, self.g1, self.meta)

    @property
    def prediction_bits(self) -> int:
        """Prediction-array budget in bits (paper: 208 Kbits)."""
        return sum(table.entries for table in self.tables())

    @property
    def hysteresis_bits(self) -> int:
        """Hysteresis-array budget in bits (paper: 144 Kbits)."""
        return sum(table.hysteresis_entries or table.entries
                   for table in self.tables())

    @property
    def total_bits(self) -> int:
        """Total memory budget (paper: 352 Kbits)."""
        return self.prediction_bits + self.hysteresis_bits

    def validate(self) -> None:
        """Check the structural invariants of Sections 6-7.

        * every table's index decomposes into bank + word offset + wordline
          (+ columns),
        * all four tables share bank and wordline bits, so every table needs
          at least bank+offset+wordline index bits,
        * G0/G1/Meta are equally sized (they share column-selection wiring).
        """
        shared_bits = 2 + self.word_bits + self.wordline_bits  # bank+off+line
        for label, table in zip(("BIM", "G0", "G1", "Meta"), self.tables()):
            if table.index_bits < shared_bits:
                raise ValueError(
                    f"{label} has {table.index_bits} index bits; the shared "
                    f"bank/offset/wordline fields need {shared_bits}")
        if not (self.g0.entries == self.g1.entries == self.meta.entries):
            raise ValueError(
                "G0, G1 and Meta must be equally sized — they share wordline "
                "and column-selection wiring (Section 7.1)")
        if self.banks != 4:
            raise ValueError(
                f"the bank-number computation of Section 6.2 is defined for "
                f"4 banks, got {self.banks}")


EV8_CONFIG = EV8Config()
"""The shipped Alpha EV8 configuration (Table 1)."""

TABLE1 = {
    "BIM": {"prediction": 16 * 1024, "hysteresis": 16 * 1024, "history": 4},
    "G0": {"prediction": 64 * 1024, "hysteresis": 32 * 1024, "history": 13},
    "G1": {"prediction": 64 * 1024, "hysteresis": 64 * 1024, "history": 21},
    "Meta": {"prediction": 64 * 1024, "hysteresis": 32 * 1024, "history": 15},
}
"""Table 1 of the paper, verbatim, for tests and reports."""
