"""The PC-address generator backing the line predictor (Section 2, Fig 1).

"To avoid huge performance loss, due to fairly poor line predictor accuracy
and long branch resolution latency, the line predictor is backed up with a
powerful program counter (PC) address generator. This includes a
conditional branch predictor, a jump predictor, a return address stack
predictor, conditional branch target address computation and final-address
selection."

This module models the complete generator and measures, per trace, the Fig 1
story: the line predictor's raw accuracy, the PC generator's (much higher)
accuracy, and the redirect rate — fetch restarts where the generator
corrects the line predictor two cycles later.

Structural conventions:

* conditional branch *targets* come from "conditional branch target address
  computation" (decode of the instruction bytes flowing out of the
  I-cache), so a predicted-taken conditional with a known target is modelled
  through the jump table trained at first execution — the paper's hardware
  computes it exactly, so the table miss on first sight is the honest
  difference;
* calls push their fall-through on the :class:`ReturnAddressStack`; returns
  pop it (the Alpha JSR/RET hints carried by
  :class:`~repro.traces.model.TerminatorKind`);
* plain jumps use the PC-indexed :class:`JumpPredictor` target table.

The model is structural (addresses and hit rates), not cycle-accurate; the
two-cycle pipelining it feeds is what imposed the 3-blocks-old lghist
handled in :mod:`repro.history`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitops import xor_fold
from repro.ev8.frontend import LinePredictor
from repro.history.providers import HistoryProvider
from repro.predictors.base import Predictor
from repro.traces.fetch import fetch_blocks_for
from repro.traces.model import INSTRUCTION_BYTES, TerminatorKind, Trace

__all__ = ["JumpPredictor", "ReturnAddressStack", "PCGenStatistics",
           "PCAddressGenerator"]


class JumpPredictor:
    """A tagged target table for jumps and taken-branch targets."""

    __slots__ = ("entries", "_index_bits", "_tags", "_targets")

    def __init__(self, entries: int = 1024) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a power of two, got {entries}")
        self.entries = entries
        self._index_bits = entries.bit_length() - 1
        self._tags = [-1] * entries
        self._targets = [0] * entries

    def _index(self, pc: int) -> int:
        return xor_fold(pc >> 2, self._index_bits)

    def predict(self, pc: int) -> int | None:
        """Predicted target, or None on a tag miss."""
        index = self._index(pc)
        if self._tags[index] == pc:
            return self._targets[index]
        return None

    def train(self, pc: int, target: int) -> None:
        index = self._index(pc)
        self._tags[index] = pc
        self._targets[index] = target


class ReturnAddressStack:
    """A fixed-depth return address stack with wrap-around (hardware RASes
    overwrite on overflow rather than stall)."""

    __slots__ = ("depth", "_stack", "_top", "_count")

    def __init__(self, depth: int = 16) -> None:
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.depth = depth
        self._stack = [0] * depth
        self._top = 0
        self._count = 0

    def push(self, return_address: int) -> None:
        self._stack[self._top] = return_address
        self._top = (self._top + 1) % self.depth
        self._count = min(self._count + 1, self.depth)

    def pop(self) -> int | None:
        if self._count == 0:
            return None
        self._top = (self._top - 1) % self.depth
        self._count -= 1
        return self._stack[self._top]

    def peek(self) -> int | None:
        """Top of stack without popping (the predicted return target; the
        architectural pop happens when the return commits)."""
        if self._count == 0:
            return None
        return self._stack[(self._top - 1) % self.depth]

    def __len__(self) -> int:
        return self._count


@dataclass
class PCGenStatistics:
    """What the PC-address generator observed over a trace."""

    blocks: int = 0
    line_correct: int = 0
    pcgen_correct: int = 0
    redirects: int = 0
    """PC-generation corrected a wrong line prediction (the Fig 1 fetch
    restarts, paid at PC-generation latency instead of a full
    misprediction)."""
    ras_pops: int = 0
    ras_hits: int = 0

    @property
    def line_accuracy(self) -> float:
        return self.line_correct / self.blocks if self.blocks else 0.0

    @property
    def pcgen_accuracy(self) -> float:
        return self.pcgen_correct / self.blocks if self.blocks else 0.0

    @property
    def ras_accuracy(self) -> float:
        return self.ras_hits / self.ras_pops if self.ras_pops else 0.0


class PCAddressGenerator:
    """Next-fetch-block address generation: conditional predictor + jump
    table + return address stack + final selection."""

    def __init__(self, conditional: Predictor, provider: HistoryProvider,
                 jumps: JumpPredictor | None = None,
                 ras: ReturnAddressStack | None = None,
                 line_predictor: LinePredictor | None = None) -> None:
        self.conditional = conditional
        self.provider = provider
        self.jumps = jumps or JumpPredictor()
        self.ras = ras or ReturnAddressStack()
        self.line_predictor = line_predictor or LinePredictor()

    def run(self, trace: Trace) -> PCGenStatistics:
        """Walk the fetch-block stream, predicting every next-block address
        with both the line predictor and the full generator, training both
        on the architectural outcome."""
        terminator_kinds = {
            int(start) + (int(n) - 1) * INSTRUCTION_BYTES: int(kind)
            for start, n, kind in zip(trace.starts, trace.num_instructions,
                                      trace.kinds)
            if int(kind) != int(TerminatorKind.CONDITIONAL)}
        call = int(TerminatorKind.CALL)
        ret = int(TerminatorKind.RETURN)

        stats = PCGenStatistics()
        blocks = fetch_blocks_for(trace)
        for position, block in enumerate(blocks[:-1]):
            actual_next = blocks[position + 1].start
            stats.blocks += 1

            line_guess = self.line_predictor.predict(block.start)
            if line_guess == actual_next:
                stats.line_correct += 1

            # --- final address selection (and predictor training) -------
            # Conditional branches in fetch order: the first predicted-taken
            # one ends the block with its computed target.
            predicted_next: int | None = None
            decided = False
            if block.branch_pcs:
                vectors = self.provider.begin_block(block)
                for vector, taken in zip(vectors, block.branch_outcomes):
                    prediction = self.conditional.access(vector, taken)
                    if prediction and not decided:
                        predicted_next = self.jumps.predict(vector.branch_pc)
                        decided = True
            if not decided:
                terminator_pc = block.end - INSTRUCTION_BYTES
                kind = terminator_kinds.get(terminator_pc)
                if kind == ret:
                    predicted_next = self.ras.peek()
                elif kind is not None:  # CALL or JUMP
                    predicted_next = self.jumps.predict(terminator_pc)
                else:
                    predicted_next = block.end  # sequential

            if predicted_next == actual_next:
                stats.pcgen_correct += 1
                if line_guess != actual_next:
                    stats.redirects += 1

            # --- architectural training ----------------------------------
            self.line_predictor.train(block.start, actual_next)
            self.provider.end_block(block)
            if block.ended_taken:
                terminator_pc = block.end - INSTRUCTION_BYTES
                kind = terminator_kinds.get(terminator_pc)
                if kind == call:
                    self.jumps.train(terminator_pc, actual_next)
                    self.ras.push(terminator_pc + INSTRUCTION_BYTES)
                elif kind == ret:
                    # The architectural pop happens at commit, whatever the
                    # predicted path looked like — this is what keeps the
                    # RAS aligned across conditional mispredictions.
                    popped = self.ras.pop()
                    stats.ras_pops += 1
                    if popped == actual_next:
                        stats.ras_hits += 1
                else:
                    # Taken conditional or plain jump: train its target.
                    self.jumps.train(terminator_pc, actual_next)
        return stats
