"""The EV8's hardware-constrained index functions (Section 7 of the paper).

Physical reality first (Section 7.1): the predictor is four banks, each one
a prediction array and a hysteresis array of 64 wordlines; every wordline
holds 32 8-bit words of each of G0/G1/Meta and 8 words of BIM.  A table
index therefore decomposes, LSB to MSB, into::

    (i1, i0)                bank number           (Section 6.2 computation)
    (i4, i3, i2)            offset in 8-bit word  (the "unshuffle")
    (i10, ..., i5)          wordline, 64 lines    (shared, UNHASHED)
    (i15, ..., i11)         column (5 bits G0/G1/Meta, 3 bits BIM)

Hardware constraints on each field:

* bank + wordline (8 bits total) are **shared** by all four tables;
* the wordline bits cannot be hashed at all (the decoder is on the critical
  path) — the EV8 uses ``(h3, h2, h1, h0, a8, a7)``;
* each column bit may use at most **one 2-entry XOR gate**;
* the unshuffle parameter (i4, i3, i2) may use arbitrarily wide XOR trees
  (a full cycle is available), and permutes the 8 predictions within the
  word: the branch in fetch slot ``s`` (its PC bits 4..2) reads word bit
  ``s XOR (i4, i3, i2)``.

Notation below follows the paper: ``h0`` is the youngest lghist bit, ``a``
the fetch-block address, ``z``/``y`` the previous two fetch-block addresses.

OCR note: the supplied paper text lost parts of the G0 and BIM equations and
the exact grouping of G1's unshuffle.  Functions marked RECONSTRUCTED were
completed using the paper's own stated rules (Section 7.5): G0 and Meta
share i15/i14; each table XORs *different* pairs of history bits in its
columns; whenever two bits are XORed in a column bit, at least one of them
also feeds the unshuffle tree; G1's unshuffle XORs up to 11 bits; BIM's
remaining bits take path information from block Z.
"""

from __future__ import annotations

import numpy as np

from repro.history.providers import InfoVector, VectorBatch
from repro.predictors.twobcgskew import IndexScheme, TableConfig

__all__ = ["EV8IndexScheme", "decompose_index", "WORDLINE_MODES"]

WORDLINE_MODES = ("history", "address")
"""Wordline-number sources evaluated in Fig 9: the EV8's mixed
history+address bits, or pure address bits ("address only" rows)."""


def _bit(value: int, position: int) -> int:
    return (value >> position) & 1


def _vbit(values: np.ndarray, position: int) -> np.ndarray:
    """Columnar :func:`_bit`: extract one bit from a uint64 column."""
    return (values >> np.uint64(position)) & np.uint64(1)


def decompose_index(index: int, column_bits: int = 5) -> tuple[int, int, int, int]:
    """Split a table index into (bank, word offset, wordline, column).

    Mirrors the physical layout above; used by the structural tests and the
    banked-array model.
    """
    bank = index & 0b11
    offset = (index >> 2) & 0b111
    line = (index >> 5) & 0b111111
    column = (index >> 11) & ((1 << column_bits) - 1)
    return bank, offset, line, column


class EV8IndexScheme(IndexScheme):
    """The final EV8 index functions, pluggable into
    :class:`~repro.predictors.twobcgskew.TwoBcGskewPredictor`.

    Parameters
    ----------
    wordline_mode:
        ``"history"`` — the EV8 choice, wordline = (h3, h2, h1, h0, a8, a7);
        ``"address"`` — the Fig 9 "address only" alternative, wordline =
        (a12, ..., a7).
    use_block_bank:
        Use the front-end-computed conflict-free bank number from the
        information vector (the EV8).  When False, bank = (a6, a5) — pure
        address interleaving, used by the Fig 9 "address only" rows.
    """

    #: Both the scalar and the batch path are implemented, so the hardware
    #: configuration is inside the batched engine's envelope.
    vectorized = True

    def __init__(self, wordline_mode: str = "history",
                 use_block_bank: bool = True) -> None:
        if wordline_mode not in WORDLINE_MODES:
            raise ValueError(
                f"wordline_mode must be one of {WORDLINE_MODES}, got "
                f"{wordline_mode!r}")
        self.wordline_mode = wordline_mode
        self.use_block_bank = use_block_bank

    # -- shared fields -----------------------------------------------------

    def _shared(self, vector: InfoVector) -> tuple[int, int, int]:
        """(bank, wordline, slot) common to all four tables."""
        a = vector.address
        if self.use_block_bank:
            bank = vector.bank & 0b11
        else:
            bank = (a >> 5) & 0b11
        if self.wordline_mode == "history":
            # (i10..i5) = (h3, h2, h1, h0, a8, a7) — Section 7.3.
            line = ((vector.history & 0b1111) << 2) | ((a >> 7) & 0b11)
        else:
            line = (a >> 7) & 0b111111  # (a12..a7), address only
        slot = (vector.branch_pc >> 2) & 0b111
        return bank, line, slot

    @staticmethod
    def _compose(column: int, line: int, slot: int, unshuffle: int,
                 bank: int) -> int:
        return (column << 11) | (line << 5) | ((slot ^ unshuffle) << 2) | bank

    # -- per-table functions -------------------------------------------------

    def compute(self, vector: InfoVector,
                configs: tuple[TableConfig, TableConfig, TableConfig,
                               TableConfig]) -> tuple[int, int, int, int]:
        bank, line, slot = self._shared(vector)
        h = vector.history
        a = vector.address
        z = vector.path[0] if vector.path else 0

        # --- BIM (14-bit index: 3 column bits) ---------------------------
        # Paper: (i13, i12, i11, i4, i3, i2) = (a11, ?, ?, a4, ?, ?) with
        # path information from Z.  RECONSTRUCTED: the lost partners pair
        # the next address bits with z6/z5.
        bim_column = ((_bit(a, 11) << 2)
                      | ((_bit(a, 10) ^ _bit(z, 6)) << 1)
                      | (_bit(a, 9) ^ _bit(z, 5)))
        bim_unshuffle = ((_bit(a, 4) << 2)
                         | ((_bit(a, 3) ^ _bit(z, 6)) << 1)
                         | (_bit(a, 2) ^ _bit(z, 5)))
        bim_index = self._compose(bim_column, line, slot, bim_unshuffle, bank)

        # --- G0 (history length 13: wordline h0..h3, columns h4..h12) ----
        # Paper: G0 and Meta share i15 and i14.  Columns RECONSTRUCTED with
        # history-bit pairs distinct from G1's and Meta's.
        g0_column = (((_bit(h, 7) ^ _bit(h, 11)) << 4)    # i15 (= Meta i15)
                     | ((_bit(h, 8) ^ _bit(h, 12)) << 3)  # i14 (= Meta i14)
                     | ((_bit(h, 6) ^ _bit(h, 10)) << 2)  # i13 RECONSTRUCTED
                     | ((_bit(h, 5) ^ _bit(h, 9)) << 1)   # i12 RECONSTRUCTED
                     | (_bit(a, 10) ^ _bit(h, 4)))        # i11 RECONSTRUCTED
        # Paper gives i3 and i2; i4 RECONSTRUCTED.
        g0_i4 = (_bit(a, 3) ^ _bit(a, 12) ^ _bit(a, 13) ^ _bit(h, 5)
                 ^ _bit(h, 8) ^ _bit(h, 11) ^ _bit(z, 5))
        g0_i3 = (_bit(a, 11) ^ _bit(h, 9) ^ _bit(h, 10) ^ _bit(h, 12)
                 ^ _bit(z, 6) ^ _bit(a, 5))
        g0_i2 = (_bit(a, 2) ^ _bit(a, 14) ^ _bit(a, 10) ^ _bit(h, 6)
                 ^ _bit(h, 4) ^ _bit(h, 7) ^ _bit(a, 6))
        g0_index = self._compose(g0_column, line, slot,
                                 (g0_i4 << 2) | (g0_i3 << 1) | g0_i2, bank)

        # --- G1 (history length 21: columns/unshuffle use h4..h20) -------
        # Columns verbatim from the paper.
        g1_column = (((_bit(h, 19) ^ _bit(h, 12)) << 4)
                     | ((_bit(h, 18) ^ _bit(h, 11)) << 3)
                     | ((_bit(h, 17) ^ _bit(h, 10)) << 2)
                     | ((_bit(h, 16) ^ _bit(h, 4)) << 1)
                     | (_bit(h, 15) ^ _bit(h, 20)))
        # i4 verbatim; i3/i2 grouping RECONSTRUCTED (the text runs the
        # terms together); 11-bit-wide trees as the paper highlights.
        g1_i4 = (_bit(h, 9) ^ _bit(h, 14) ^ _bit(h, 15) ^ _bit(h, 16)
                 ^ _bit(z, 6))
        g1_i3 = (_bit(a, 3) ^ _bit(a, 4) ^ _bit(a, 6) ^ _bit(a, 10)
                 ^ _bit(a, 11) ^ _bit(a, 13) ^ _bit(a, 14) ^ _bit(h, 5)
                 ^ _bit(h, 11) ^ _bit(h, 20) ^ _bit(z, 5))
        g1_i2 = (_bit(a, 2) ^ _bit(a, 5) ^ _bit(a, 9) ^ _bit(h, 4)
                 ^ _bit(h, 7) ^ _bit(h, 8) ^ _bit(h, 10) ^ _bit(h, 12)
                 ^ _bit(h, 13) ^ _bit(h, 14) ^ _bit(h, 17))
        g1_index = self._compose(g1_column, line, slot,
                                 (g1_i4 << 2) | (g1_i3 << 1) | g1_i2, bank)

        # --- Meta (history length 15) — verbatim from the paper ----------
        meta_column = (((_bit(h, 7) ^ _bit(h, 11)) << 4)
                       | ((_bit(h, 8) ^ _bit(h, 12)) << 3)
                       | ((_bit(h, 5) ^ _bit(h, 13)) << 2)
                       | ((_bit(h, 4) ^ _bit(h, 9)) << 1)
                       | (_bit(a, 9) ^ _bit(h, 6)))
        meta_i4 = (_bit(a, 4) ^ _bit(a, 10) ^ _bit(a, 5) ^ _bit(h, 7)
                   ^ _bit(h, 10) ^ _bit(h, 14) ^ _bit(h, 13) ^ _bit(z, 5))
        meta_i3 = (_bit(a, 3) ^ _bit(a, 12) ^ _bit(a, 14) ^ _bit(a, 6)
                   ^ _bit(h, 4) ^ _bit(h, 6) ^ _bit(h, 8) ^ _bit(h, 14))
        meta_i2 = (_bit(a, 2) ^ _bit(a, 9) ^ _bit(a, 11) ^ _bit(a, 13)
                   ^ _bit(h, 5) ^ _bit(h, 9) ^ _bit(h, 11) ^ _bit(h, 12)
                   ^ _bit(z, 6))
        meta_index = self._compose(meta_column, line, slot,
                                   (meta_i4 << 2) | (meta_i3 << 1) | meta_i2,
                                   bank)

        return bim_index, g0_index, g1_index, meta_index

    # -- batch path ----------------------------------------------------------

    def _shared_batch(self, batch: VectorBatch
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Columnar :meth:`_shared`: (bank, wordline, slot) columns."""
        a = batch.address
        if self.use_block_bank:
            bank = (batch.bank if batch.bank is not None
                    else np.zeros(len(batch), dtype=np.uint64)) \
                & np.uint64(0b11)
        else:
            bank = (a >> np.uint64(5)) & np.uint64(0b11)
        if self.wordline_mode == "history":
            line = ((batch.history & np.uint64(0b1111)) << np.uint64(2)) \
                | ((a >> np.uint64(7)) & np.uint64(0b11))
        else:
            line = (a >> np.uint64(7)) & np.uint64(0b111111)
        slot = (batch.branch_pc >> np.uint64(2)) & np.uint64(0b111)
        return bank, line, slot

    @staticmethod
    def _compose_batch(column: np.ndarray, line: np.ndarray,
                       slot: np.ndarray, unshuffle: np.ndarray,
                       bank: np.ndarray) -> np.ndarray:
        return ((column << np.uint64(11)) | (line << np.uint64(5))
                | ((slot ^ unshuffle) << np.uint64(2))
                | bank).astype(np.int64)

    def compute_batch(self, batch: VectorBatch,
                      configs: tuple[TableConfig, TableConfig, TableConfig,
                                     TableConfig]
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                 np.ndarray]:
        """Columnar :meth:`compute`: the same XOR trees evaluated once per
        bit position over whole uint64 columns instead of once per branch."""
        bank, line, slot = self._shared_batch(batch)
        h = batch.history
        a = batch.address
        if batch.path_depth:
            z = batch.path[0]
        else:
            z = np.zeros(len(batch), dtype=np.uint64)
        one = np.uint64(1)
        two = np.uint64(2)

        bim_column = ((_vbit(a, 11) << two)
                      | ((_vbit(a, 10) ^ _vbit(z, 6)) << one)
                      | (_vbit(a, 9) ^ _vbit(z, 5)))
        bim_unshuffle = ((_vbit(a, 4) << two)
                         | ((_vbit(a, 3) ^ _vbit(z, 6)) << one)
                         | (_vbit(a, 2) ^ _vbit(z, 5)))
        bim_index = self._compose_batch(bim_column, line, slot,
                                        bim_unshuffle, bank)

        g0_column = (((_vbit(h, 7) ^ _vbit(h, 11)) << np.uint64(4))
                     | ((_vbit(h, 8) ^ _vbit(h, 12)) << np.uint64(3))
                     | ((_vbit(h, 6) ^ _vbit(h, 10)) << two)
                     | ((_vbit(h, 5) ^ _vbit(h, 9)) << one)
                     | (_vbit(a, 10) ^ _vbit(h, 4)))
        g0_i4 = (_vbit(a, 3) ^ _vbit(a, 12) ^ _vbit(a, 13) ^ _vbit(h, 5)
                 ^ _vbit(h, 8) ^ _vbit(h, 11) ^ _vbit(z, 5))
        g0_i3 = (_vbit(a, 11) ^ _vbit(h, 9) ^ _vbit(h, 10) ^ _vbit(h, 12)
                 ^ _vbit(z, 6) ^ _vbit(a, 5))
        g0_i2 = (_vbit(a, 2) ^ _vbit(a, 14) ^ _vbit(a, 10) ^ _vbit(h, 6)
                 ^ _vbit(h, 4) ^ _vbit(h, 7) ^ _vbit(a, 6))
        g0_index = self._compose_batch(
            g0_column, line, slot, (g0_i4 << two) | (g0_i3 << one) | g0_i2,
            bank)

        g1_column = (((_vbit(h, 19) ^ _vbit(h, 12)) << np.uint64(4))
                     | ((_vbit(h, 18) ^ _vbit(h, 11)) << np.uint64(3))
                     | ((_vbit(h, 17) ^ _vbit(h, 10)) << two)
                     | ((_vbit(h, 16) ^ _vbit(h, 4)) << one)
                     | (_vbit(h, 15) ^ _vbit(h, 20)))
        g1_i4 = (_vbit(h, 9) ^ _vbit(h, 14) ^ _vbit(h, 15) ^ _vbit(h, 16)
                 ^ _vbit(z, 6))
        g1_i3 = (_vbit(a, 3) ^ _vbit(a, 4) ^ _vbit(a, 6) ^ _vbit(a, 10)
                 ^ _vbit(a, 11) ^ _vbit(a, 13) ^ _vbit(a, 14) ^ _vbit(h, 5)
                 ^ _vbit(h, 11) ^ _vbit(h, 20) ^ _vbit(z, 5))
        g1_i2 = (_vbit(a, 2) ^ _vbit(a, 5) ^ _vbit(a, 9) ^ _vbit(h, 4)
                 ^ _vbit(h, 7) ^ _vbit(h, 8) ^ _vbit(h, 10) ^ _vbit(h, 12)
                 ^ _vbit(h, 13) ^ _vbit(h, 14) ^ _vbit(h, 17))
        g1_index = self._compose_batch(
            g1_column, line, slot, (g1_i4 << two) | (g1_i3 << one) | g1_i2,
            bank)

        meta_column = (((_vbit(h, 7) ^ _vbit(h, 11)) << np.uint64(4))
                       | ((_vbit(h, 8) ^ _vbit(h, 12)) << np.uint64(3))
                       | ((_vbit(h, 5) ^ _vbit(h, 13)) << two)
                       | ((_vbit(h, 4) ^ _vbit(h, 9)) << one)
                       | (_vbit(a, 9) ^ _vbit(h, 6)))
        meta_i4 = (_vbit(a, 4) ^ _vbit(a, 10) ^ _vbit(a, 5) ^ _vbit(h, 7)
                   ^ _vbit(h, 10) ^ _vbit(h, 14) ^ _vbit(h, 13)
                   ^ _vbit(z, 5))
        meta_i3 = (_vbit(a, 3) ^ _vbit(a, 12) ^ _vbit(a, 14) ^ _vbit(a, 6)
                   ^ _vbit(h, 4) ^ _vbit(h, 6) ^ _vbit(h, 8) ^ _vbit(h, 14))
        meta_i2 = (_vbit(a, 2) ^ _vbit(a, 9) ^ _vbit(a, 11) ^ _vbit(a, 13)
                   ^ _vbit(h, 5) ^ _vbit(h, 9) ^ _vbit(h, 11) ^ _vbit(h, 12)
                   ^ _vbit(z, 6))
        meta_index = self._compose_batch(
            meta_column, line, slot,
            (meta_i4 << two) | (meta_i3 << one) | meta_i2, bank)

        return bim_index, g0_index, g1_index, meta_index
