"""Conflict-free bank interleaving (Section 6 of the paper).

The EV8 branch predictor must serve two dynamically successive fetch blocks
per cycle out of single-ported memory.  Instead of multi-porting, dual
pumping, or arbitrating bank conflicts, the EV8 *computes* each block's bank
number such that two successive blocks can never collide:

    let B_A be the bank number for fetch block A,
    let Y, Z be the addresses of the two previous fetch blocks (Z the more
    recent), and B_Z the bank accessed by Z; with Y's address bits
    (y52, ..., y6, y5, y4, y3, y2, 0, 0):

        if (y6, y5) == B_Z:  B_A = (y6, y5 XOR 1)
        else:                B_A = (y6, y5)

Because B_A is derived from the *two-blocks-ahead* address Y [18], it is
ready one full cycle before the predictor read, adding no delay (Fig 3); and
by construction B_A != B_Z, so any two successive blocks land in distinct
banks.
"""

from __future__ import annotations

import numpy as np

from repro.common.bitops import bits

__all__ = ["bank_number", "bank_numbers_vec", "BankNumberGenerator"]

BANK_COUNT = 4
_BANK_BIT_LOW = 5
"""The bank seed bits are address bits (6, 5) — the fetch-block-granular
address bits just above the 32-byte offset."""


def bank_number(previous_previous_address: int, previous_bank: int) -> int:
    """The paper's bank computation: the bank for the *next* block, from the
    two-blocks-ahead address Y and the bank of the immediately preceding
    block Z.

    >>> bank_number(0b1000000, 0)   # (y6,y5) = 2 != 0
    2
    >>> bank_number(0b1000000, 2)   # collision with Z: flip y5
    3
    """
    if not 0 <= previous_bank < BANK_COUNT:
        raise ValueError(
            f"bank numbers are 2 bits, got {previous_bank}")
    seed = bits(previous_previous_address, _BANK_BIT_LOW, 2)
    if seed == previous_bank:
        return seed ^ 1
    return seed


def bank_numbers_vec(block_starts: np.ndarray) -> np.ndarray:
    """Vectorized bank-number stream: the bank of every fetch block, in
    order, identical to feeding :class:`BankNumberGenerator` the same
    addresses.

    The recurrence looks inherently serial — ``bank[b]`` consults
    ``bank[b-1]`` — but only through bit 0: with ``seed[b]`` the address
    bits (y6, y5) of block ``b-2`` (zero for the architected start-up
    blocks), ``bank[b] = seed[b] ^ e[b]`` where the flip bit obeys

        e[b] = 0                                     if y6 changed,
        e[b] = e[b-1] XOR (seed[b] == seed[b-1])     otherwise,

    i.e. a *segmented XOR prefix scan* with segments delimited by changes
    of the seed's high bit — computed with a cumulative sum and a running
    maximum of reset positions, no Python loop.
    """
    n = len(block_starts)
    if n == 0:
        return np.empty(0, dtype=np.uint8)
    # Seed stream with a virtual predecessor modelling the architected
    # start-up state (blocks -2/-1 at address 0, bank 0): seed = 0, e = 0.
    seed = np.zeros(n + 1, dtype=np.uint8)
    if n > 2:
        seed[3:] = (block_starts[:n - 2] >> np.uint64(_BANK_BIT_LOW)) \
            & np.uint64(0b11)
    positions = np.arange(n + 1)
    reset = np.empty(n + 1, dtype=np.bool_)
    reset[0] = True
    reset[1:] = (seed[1:] >> 1) != (seed[:-1] >> 1)
    equal = np.zeros(n + 1, dtype=np.int64)
    equal[1:] = seed[1:] == seed[:-1]
    cumulative = np.cumsum(equal)
    last_reset = np.maximum.accumulate(np.where(reset, positions, 0))
    flip = ((cumulative - cumulative[last_reset]) & 1).astype(np.uint8)
    flip[reset] = 0
    return (seed ^ flip)[1:]


class BankNumberGenerator:
    """Streams bank numbers over a sequence of fetch blocks.

    Maintains the (Y address, B_Z) state the front end carries: feed it each
    fetch block address in order and it returns the block's bank number,
    guaranteed to differ from the previous block's.
    """

    __slots__ = ("_previous_bank", "_y_address", "_z_address")

    def __init__(self) -> None:
        # Architected start-up state: pretend blocks -2/-1 were at address 0
        # hitting bank 0; the guarantee holds from the first real block on.
        self._previous_bank = 0
        self._y_address = 0  # address two blocks back (the paper's Y)
        self._z_address = 0  # address one block back (the paper's Z)

    def next_bank(self, block_address: int) -> int:
        """Bank number for the block being fetched at ``block_address``.

        The computation does *not* use ``block_address`` itself — only the
        two-blocks-ahead address Y and the previous block's bank B_Z, which
        is what makes it available a full cycle early (Fig 3).  The address
        argument only refills the Y/Z pipeline for later calls.
        """
        bank = bank_number(self._y_address, self._previous_bank)
        self._y_address = self._z_address
        self._z_address = block_address
        self._previous_bank = bank
        return bank

    def reset(self) -> None:
        self._previous_bank = 0
        self._y_address = 0
        self._z_address = 0
