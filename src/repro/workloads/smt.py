"""Simultaneous multithreading workloads (Section 3 of the paper).

The EV8 is an SMT processor.  Section 3 argues a global-history scheme
handles multithreading gracefully — "a global history register must be
maintained per thread, and parallel threads from the same application
benefit from constructive aliasing" — whereas thread interference on a
local-history scheme "can be disastrous".

This module interleaves several single-thread traces into an SMT fetch
stream (round-robin at fetch-chunk granularity, as an ICOUNT-like policy
would roughly produce) and simulates a *shared* predictor with either
per-thread or shared history registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.history.providers import HistoryProvider
from repro.predictors.base import Predictor
from repro.sim.metrics import SimulationResult
from repro.traces.fetch import FetchBlock, fetch_blocks_for
from repro.traces.model import Trace

__all__ = ["interleave_blocks", "SMTResult", "simulate_smt"]


def interleave_blocks(traces: list[Trace],
                      chunk_blocks: int = 4) -> list[tuple[int, FetchBlock]]:
    """Round-robin interleave the fetch-block streams of several threads.

    Returns ``(thread_id, block)`` pairs.  Streams that run out simply stop
    contributing (the remaining threads keep the machine busy).
    """
    if not traces:
        raise ValueError("need at least one trace")
    if chunk_blocks < 1:
        raise ValueError(f"chunk_blocks must be >= 1, got {chunk_blocks}")
    streams = [fetch_blocks_for(trace) for trace in traces]
    positions = [0] * len(streams)
    merged: list[tuple[int, FetchBlock]] = []
    live = True
    while live:
        live = False
        for thread_id, stream in enumerate(streams):
            position = positions[thread_id]
            if position >= len(stream):
                continue
            live = True
            chunk = stream[position:position + chunk_blocks]
            positions[thread_id] = position + len(chunk)
            merged.extend((thread_id, block) for block in chunk)
    return merged


@dataclass(frozen=True)
class SMTResult:
    """Outcome of one SMT simulation."""

    per_thread: list[SimulationResult]
    total_branches: int
    total_mispredictions: int

    @property
    def misprediction_rate(self) -> float:
        if self.total_branches == 0:
            return 0.0
        return self.total_mispredictions / self.total_branches


def simulate_smt(predictor: Predictor, traces: list[Trace],
                 provider_factory: Callable[[], HistoryProvider],
                 per_thread_history: bool = True,
                 chunk_blocks: int = 4) -> SMTResult:
    """Simulate one shared predictor over an interleaved SMT stream.

    ``per_thread_history=True`` gives each thread its own provider (the
    EV8 design: one global history register per thread); ``False`` shares a
    single provider, so the history register sees the interleaved stream —
    the pollution case the paper warns about.
    """
    thread_count = len(traces)
    if per_thread_history:
        providers = [provider_factory() for _ in range(thread_count)]
    else:
        shared = provider_factory()
        providers = [shared] * thread_count
    mispredictions = [0] * thread_count
    branches = [0] * thread_count
    for thread_id, block in interleave_blocks(traces, chunk_blocks):
        provider = providers[thread_id]
        if block.branch_pcs:
            vectors = provider.begin_block(block)
            for vector, taken in zip(vectors, block.branch_outcomes):
                prediction = predictor.access(vector, taken)
                branches[thread_id] += 1
                if prediction != taken:
                    mispredictions[thread_id] += 1
        provider.end_block(block)
    per_thread = [
        SimulationResult(
            predictor_name=predictor.name,
            trace_name=trace.name,
            branches=branches[thread_id],
            mispredictions=mispredictions[thread_id],
            instructions=trace.instruction_count,
        )
        for thread_id, trace in enumerate(traces)
    ]
    return SMTResult(per_thread=per_thread,
                     total_branches=sum(branches),
                     total_mispredictions=sum(mispredictions))
