"""SPECINT95 benchmark stand-ins.

The paper's evaluation (Section 8.1.2, Table 2) uses Atom traces of eight
SPECINT95 benchmarks.  This module defines one :class:`WorkloadProfile` per
benchmark, calibrated to the published per-benchmark characteristics:

* the static conditional branch footprint of Table 2 (compress 46 ...
  gcc 12086),
* the dynamic branch density of Table 2 (dynamic branches per instruction),
* qualitative predictability known from the branch-prediction literature
  (go hardest; vortex/m88ksim easiest; gcc aliasing-limited through sheer
  footprint; compress small but data-dependent).

Traces are deterministic for a given (benchmark, length, seed) and memoised
on disk through :class:`~repro.traces.io.TraceCache`.
"""

from __future__ import annotations

import os

from repro.traces.io import TraceCache
from repro.traces.model import Trace
from repro.workloads.generator import (
    BehaviorMix,
    WorkloadProfile,
    generate_trace,
)

__all__ = [
    "SPEC95_BENCHMARKS",
    "TABLE2_STATIC_BRANCHES",
    "TABLE2_DYNAMIC_PER_KI",
    "profile_for",
    "spec95_profiles",
    "spec95_trace",
    "spec95_traces",
    "default_trace_branches",
]

SPEC95_BENCHMARKS = ("compress", "gcc", "go", "ijpeg", "li", "m88ksim",
                     "perl", "vortex")

TABLE2_STATIC_BRANCHES = {
    "compress": 46, "gcc": 12086, "go": 3710, "ijpeg": 904,
    "li": 251, "m88ksim": 409, "perl": 273, "vortex": 2239,
}
"""Static conditional branches per benchmark (paper Table 2)."""

TABLE2_DYNAMIC_PER_KI = {
    # Dynamic conditional branches per 1000 instructions, derived from
    # Table 2 (dynamic count x1000 over a 100M-instruction trace).
    "compress": 120.4, "gcc": 160.3, "go": 112.8, "ijpeg": 88.9,
    "li": 162.5, "m88ksim": 97.1, "perl": 132.6, "vortex": 127.6,
}

_PROFILES = {
    # compress: tiny footprint, heavily data-dependent (the bit-stream
    # decisions of the compressor), a few hot loops.
    "compress": WorkloadProfile(
        name="compress",
        static_branches=TABLE2_STATIC_BRANCHES["compress"],
        num_functions=5,
        mix=BehaviorMix(biased_easy=0.30, biased_hard=0.14,
                        global_shallow=0.22, global_deep=0.16,
                        local_pattern=0.12, markov=0.06),
        loop_fraction=0.22, mean_loop_trips=8.0,
        noise=0.02, easy_bias=0.015,
        leader_concentration=0.5, group_followers_span=(2, 6),
        mean_lead_instructions=7.5, chain_probability=0.50,
        code_base=0x1200_0000),
    # gcc: huge static footprint spread across many functions; the
    # aliasing-pressure benchmark.
    "gcc": WorkloadProfile(
        name="gcc",
        static_branches=TABLE2_STATIC_BRANCHES["gcc"],
        num_functions=48,
        mix=BehaviorMix(biased_easy=0.44, biased_hard=0.03,
                        global_shallow=0.28, global_deep=0.08,
                        local_pattern=0.11, markov=0.06),
        loop_fraction=0.15, mean_loop_trips=5.0,
        noise=0.012, easy_bias=0.012,
        leader_concentration=0.8, group_followers_span=(2, 6),
        mean_lead_instructions=4.2, chain_probability=0.35,
        code_base=0x1400_0000),
    # go: large footprint and intrinsically hard, weakly biased decisions;
    # the hardest benchmark in every published study.
    "go": WorkloadProfile(
        name="go",
        static_branches=TABLE2_STATIC_BRANCHES["go"],
        num_functions=30,
        mix=BehaviorMix(biased_easy=0.28, biased_hard=0.20,
                        global_shallow=0.16, global_deep=0.10,
                        local_pattern=0.08, markov=0.10),
        loop_fraction=0.12, mean_loop_trips=6.0,
        noise=0.035, easy_bias=0.03,
        leader_concentration=2.0, group_followers_span=(2, 5),
        mean_lead_instructions=8.0, chain_probability=0.30,
        code_base=0x1500_0000),
    # ijpeg: loop-dominated numeric kernels, long trip counts, very regular.
    "ijpeg": WorkloadProfile(
        name="ijpeg",
        static_branches=TABLE2_STATIC_BRANCHES["ijpeg"],
        num_functions=12,
        mix=BehaviorMix(biased_easy=0.50, biased_hard=0.02,
                        global_shallow=0.24, global_deep=0.04,
                        local_pattern=0.14, markov=0.06),
        loop_fraction=0.35, mean_loop_trips=56.0,
        noise=0.006, easy_bias=0.008,
        leader_concentration=0.25, group_followers_span=(3, 8),
        mean_lead_instructions=7.0, chain_probability=0.30,
        code_base=0x1600_0000),
    # li: lisp interpreter — small footprint, strong shallow correlation
    # through the dispatch structure.
    "li": WorkloadProfile(
        name="li",
        static_branches=TABLE2_STATIC_BRANCHES["li"],
        num_functions=8,
        mix=BehaviorMix(biased_easy=0.38, biased_hard=0.01,
                        global_shallow=0.36, global_deep=0.10,
                        local_pattern=0.12, markov=0.03),
        loop_fraction=0.18, mean_loop_trips=5.0,
        noise=0.008, easy_bias=0.010,
        leader_concentration=0.25, group_followers_span=(3, 7),
        mean_lead_instructions=5.5, chain_probability=0.40,
        code_base=0x1700_0000),
    # m88ksim: CPU simulator main loop — very predictable.
    "m88ksim": WorkloadProfile(
        name="m88ksim",
        static_branches=TABLE2_STATIC_BRANCHES["m88ksim"],
        num_functions=10,
        mix=BehaviorMix(biased_easy=0.60, biased_hard=0.01,
                        global_shallow=0.26, global_deep=0.05,
                        local_pattern=0.06, markov=0.02),
        loop_fraction=0.18, mean_loop_trips=24.0,
        noise=0.005, easy_bias=0.006,
        leader_concentration=0.15, group_followers_span=(3, 8),
        mean_lead_instructions=6.0, chain_probability=0.45,
        code_base=0x1800_0000),
    # perl: interpreter, predictable with global context.
    "perl": WorkloadProfile(
        name="perl",
        static_branches=TABLE2_STATIC_BRANCHES["perl"],
        num_functions=9,
        mix=BehaviorMix(biased_easy=0.45, biased_hard=0.02,
                        global_shallow=0.28, global_deep=0.08,
                        local_pattern=0.13, markov=0.04),
        loop_fraction=0.20, mean_loop_trips=7.0,
        noise=0.007, easy_bias=0.008,
        leader_concentration=0.3, group_followers_span=(3, 7),
        mean_lead_instructions=5.5, chain_probability=0.35,
        code_base=0x1900_0000),
    # vortex: database — large footprint but extremely biased checks;
    # the most predictable benchmark.
    "vortex": WorkloadProfile(
        name="vortex",
        static_branches=TABLE2_STATIC_BRANCHES["vortex"],
        num_functions=24,
        mix=BehaviorMix(biased_easy=0.62, biased_hard=0.01,
                        global_shallow=0.22, global_deep=0.06,
                        local_pattern=0.07, markov=0.02),
        loop_fraction=0.10, mean_loop_trips=20.0,
        noise=0.003, easy_bias=0.004,
        leader_concentration=0.15, group_followers_span=(4, 9),
        mean_lead_instructions=5.5, chain_probability=0.45,
        code_base=0x1A00_0000),
}

_DEFAULT_BRANCHES = 300_000
_shared_cache: TraceCache | None = None


def profile_for(name: str) -> WorkloadProfile:
    """Return the workload profile for a SPECINT95 benchmark name."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; expected one of {SPEC95_BENCHMARKS}"
        ) from None


def spec95_profiles() -> dict[str, WorkloadProfile]:
    """All eight benchmark profiles, keyed by name."""
    return dict(_PROFILES)


def default_trace_branches() -> int:
    """Per-benchmark trace length in dynamic conditional branches.

    Overridable through the ``REPRO_TRACE_BRANCHES`` environment variable so
    benches can trade fidelity for runtime.
    """
    env = os.environ.get("REPRO_TRACE_BRANCHES")
    if env:
        value = int(env)
        if value < 1000:
            raise ValueError(
                f"REPRO_TRACE_BRANCHES too small to be meaningful: {value}")
        return value
    return _DEFAULT_BRANCHES


def _cache() -> TraceCache:
    global _shared_cache
    if _shared_cache is None:
        _shared_cache = TraceCache()
    return _shared_cache


def spec95_trace(name: str, num_branches: int | None = None,
                 cache: TraceCache | None = None) -> Trace:
    """Return the (disk-cached) trace for one benchmark."""
    profile = profile_for(name)
    if num_branches is None:
        num_branches = default_trace_branches()
    parameters = profile.cache_parameters()
    parameters["num_branches"] = num_branches
    cache = cache or _cache()
    return cache.get_or_generate(
        name, parameters, lambda: generate_trace(profile, num_branches))


def spec95_traces(num_branches: int | None = None) -> dict[str, Trace]:
    """Traces for all eight benchmarks, keyed by name."""
    return {name: spec95_trace(name, num_branches)
            for name in SPEC95_BENCHMARKS}
