"""Branch behaviour models for synthetic workloads.

The paper's evaluation runs on SPECINT95 traces.  Without those traces, we
synthesise programs whose branches draw from the behaviour classes that
branch-prediction research identifies in integer codes:

* strongly/weakly biased static branches (the bimodal component's bread and
  butter, Section 4.2's "strongly biased static branches"),
* loop back-edges with characteristic trip counts,
* branches correlated with the *global* outcome history at shallow or deep
  lags (what makes long history lengths pay off — Section 5.3 / Fig 6),
* branches following short *local* repeating patterns,
* 2-state Markov (phase-switching) branches,
* purely data-dependent (unpredictable) branches.

Each behaviour is a deterministic function of the executor state plus a
deterministic per-behaviour RNG stream, so a given program produces an
identical trace on every run.

The executor passes an :class:`ExecutionContext` giving behaviours read-only
access to the architectural outcome history and per-branch occurrence
counters.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.common.bitops import mask

__all__ = [
    "ExecutionContext",
    "Behavior",
    "BiasedBehavior",
    "LoopBehavior",
    "PatternBehavior",
    "GlobalCorrelatedBehavior",
    "LocalCorrelatedBehavior",
    "MarkovBehavior",
    "RandomBehavior",
    "PredicatePool",
    "PredicateBehavior",
    "ConditionCell",
    "ConditionLeaderBehavior",
    "ConditionFollowerBehavior",
]


class ExecutionContext(Protocol):
    """What a behaviour may observe about the executing program.

    ``global_history`` packs the most recent conditional-branch outcomes as
    an integer with bit 0 = most recent outcome (1 = taken).
    ``occurrence(branch_id)`` counts prior executions of the branch.
    ``time`` is the resolved-branch counter (drives
    :class:`PredicatePool` evolution).
    """

    global_history: int
    time: int

    def occurrence(self, branch_id: int) -> int: ...


class Behavior:
    """Base class: a generator of outcomes for one static conditional branch.

    Subclasses implement :meth:`outcome`. ``noise`` flips the model's answer
    with the given probability, modelling data-dependent deviation from the
    idealised behaviour.
    """

    __slots__ = ("noise", "_rng")

    def __init__(self, rng: np.random.Generator, noise: float = 0.0) -> None:
        if not 0.0 <= noise <= 1.0:
            raise ValueError(f"noise must be a probability, got {noise}")
        self.noise = noise
        # Private child stream so behaviours cannot perturb one another.
        self._rng = np.random.default_rng(rng.integers(0, 2**63))

    def outcome(self, branch_id: int, ctx: ExecutionContext) -> bool:
        """Return the idealised outcome; overridden by subclasses."""
        raise NotImplementedError

    def next(self, branch_id: int, ctx: ExecutionContext) -> bool:
        """Return the emitted outcome (idealised outcome plus noise)."""
        value = self.outcome(branch_id, ctx)
        if self.noise and self._rng.random() < self.noise:
            return not value
        return value


class BiasedBehavior(Behavior):
    """IID Bernoulli branch: taken with probability ``p_taken``.

    ``p_taken`` near 0 or 1 gives the strongly biased branches the bimodal
    table excels at; ``p_taken`` near 0.5 gives hard data-dependent branches.
    """

    __slots__ = ("p_taken",)

    def __init__(self, rng: np.random.Generator, p_taken: float,
                 noise: float = 0.0) -> None:
        super().__init__(rng, noise)
        if not 0.0 <= p_taken <= 1.0:
            raise ValueError(f"p_taken must be a probability, got {p_taken}")
        self.p_taken = p_taken

    def outcome(self, branch_id: int, ctx: ExecutionContext) -> bool:
        return bool(self._rng.random() < self.p_taken)


class RandomBehavior(BiasedBehavior):
    """A fully unpredictable 50/50 branch."""

    __slots__ = ()

    def __init__(self, rng: np.random.Generator) -> None:
        super().__init__(rng, 0.5)


class LoopBehavior(Behavior):
    """Loop back-edge: taken ``trips - 1`` times, then not-taken once.

    ``trip_jitter`` re-draws the trip count around the mean on each entry
    (geometric-ish spread), modelling data-dependent loop bounds.  The
    executor resets the behaviour at loop entry via :meth:`enter`.
    """

    __slots__ = ("mean_trips", "trip_jitter", "_remaining")

    def __init__(self, rng: np.random.Generator, mean_trips: int,
                 trip_jitter: float = 0.0, noise: float = 0.0) -> None:
        super().__init__(rng, noise)
        if mean_trips < 1:
            raise ValueError(f"loops run at least once, got {mean_trips} trips")
        self.mean_trips = mean_trips
        self.trip_jitter = trip_jitter
        self._remaining = self._draw_trips()

    def _draw_trips(self) -> int:
        if self.trip_jitter <= 0.0:
            return self.mean_trips
        spread = max(1.0, self.mean_trips * self.trip_jitter)
        draw = self._rng.normal(self.mean_trips, spread)
        return max(1, int(round(draw)))

    def enter(self) -> None:
        """Called by the executor at loop entry: draw this activation's
        trip count."""
        self._remaining = self._draw_trips()

    def outcome(self, branch_id: int, ctx: ExecutionContext) -> bool:
        self._remaining -= 1
        if self._remaining <= 0:
            self.enter()
            return False  # exit the loop
        return True  # continue looping


class PatternBehavior(Behavior):
    """A branch following a fixed repeating outcome pattern.

    Perfectly predictable from local history of length >= pattern period and
    largely predictable from global history in stable control-flow phases.
    """

    __slots__ = ("pattern",)

    def __init__(self, rng: np.random.Generator, pattern: list[bool] | str,
                 noise: float = 0.0) -> None:
        super().__init__(rng, noise)
        if isinstance(pattern, str):
            pattern = [c in "1tT" for c in pattern]
        if not pattern:
            raise ValueError("pattern must be non-empty")
        self.pattern = list(pattern)

    def outcome(self, branch_id: int, ctx: ExecutionContext) -> bool:
        return self.pattern[ctx.occurrence(branch_id) % len(self.pattern)]


class GlobalCorrelatedBehavior(Behavior):
    """A branch whose outcome is a fixed random Boolean function of selected
    global-history lags.

    ``lags`` are distances into the global outcome history (1 = previous
    conditional branch).  The Boolean function is a random truth table drawn
    once at construction, so the branch is *perfectly* predictable by any
    predictor whose effective history window covers ``max(lags)`` — and looks
    random to shorter-history predictors.  This is the mechanism that makes
    "history longer than log2(table size)" pay off (Section 5.3, Fig 6).
    """

    __slots__ = ("lags", "_table")

    def __init__(self, rng: np.random.Generator, lags: list[int],
                 noise: float = 0.0) -> None:
        super().__init__(rng, noise)
        if not lags:
            raise ValueError("need at least one history lag")
        if any(lag < 1 for lag in lags):
            raise ValueError(f"lags must be >= 1, got {lags}")
        if len(lags) > 16:
            raise ValueError(f"at most 16 lags supported, got {len(lags)}")
        self.lags = sorted(set(lags))
        table_size = 1 << len(self.lags)
        self._table = [bool(b) for b in
                       self._rng.integers(0, 2, size=table_size)]

    @property
    def depth(self) -> int:
        """The history depth a predictor needs to capture this branch."""
        return max(self.lags)

    def outcome(self, branch_id: int, ctx: ExecutionContext) -> bool:
        history = ctx.global_history
        index = 0
        for position, lag in enumerate(self.lags):
            index |= ((history >> (lag - 1)) & 1) << position
        return self._table[index]


class LocalCorrelatedBehavior(Behavior):
    """A branch whose outcome is a random function of its *own* recent
    outcomes (order-``depth`` self-correlation).

    Captured by local-history predictors directly; captured by global-history
    predictors only when intervening control flow is stable.
    """

    __slots__ = ("depth", "_table", "_self_history")

    def __init__(self, rng: np.random.Generator, depth: int,
                 noise: float = 0.0) -> None:
        super().__init__(rng, noise)
        if not 1 <= depth <= 16:
            raise ValueError(f"depth must be in 1..16, got {depth}")
        self.depth = depth
        self._table = [bool(b) for b in
                       self._rng.integers(0, 2, size=1 << depth)]
        self._self_history = 0

    def outcome(self, branch_id: int, ctx: ExecutionContext) -> bool:
        value = self._table[self._self_history & mask(self.depth)]
        self._self_history = ((self._self_history << 1) | int(value))
        return value


class MarkovBehavior(Behavior):
    """Two-state phase-switching branch: long runs of taken then long runs
    of not-taken, with configurable persistence per state."""

    __slots__ = ("p_stay_taken", "p_stay_not_taken", "_state")

    def __init__(self, rng: np.random.Generator, p_stay_taken: float = 0.95,
                 p_stay_not_taken: float = 0.95, noise: float = 0.0) -> None:
        super().__init__(rng, noise)
        for name, p in (("p_stay_taken", p_stay_taken),
                        ("p_stay_not_taken", p_stay_not_taken)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        self.p_stay_taken = p_stay_taken
        self.p_stay_not_taken = p_stay_not_taken
        self._state = bool(self._rng.integers(0, 2))

    def outcome(self, branch_id: int, ctx: ExecutionContext) -> bool:
        stay = self.p_stay_taken if self._state else self.p_stay_not_taken
        if self._rng.random() >= stay:
            self._state = not self._state
        return self._state


class PredicatePool:
    """A set of hidden, slowly-varying binary program predicates.

    Real inter-branch correlation is *redundant*: many static branches test
    the same program state (flags, loop bounds, object kinds), so the
    information predicting one branch is reflected in several nearby branch
    outcomes.  That redundancy is what makes the EV8's compressed lghist
    carry as much usable information as full per-branch history (Section
    8.3) — dropping individual bits loses little because the signal is
    spread over many bits.

    The pool models that state: ``size`` binary predicates, each flipping
    with a small per-resolved-branch probability (so a predicate persists
    for ~1/flip_probability branches).  Branch behaviours read predicates
    through :class:`PredicateBehavior`; each reading branch *reflects* the
    predicate into the architectural history stream.

    Time is the executor's resolved-branch counter; the pool advances lazily
    via pre-drawn geometric flip schedules, so reads are O(flips), not
    O(branches).
    """

    __slots__ = ("size", "_values", "_flip_probabilities", "_next_flip",
                 "_rng", "_time")

    def __init__(self, rng: np.random.Generator, size: int,
                 flip_probabilities) -> None:
        if size < 1:
            raise ValueError(f"pool needs at least one predicate, got {size}")
        flip_probabilities = list(flip_probabilities)
        if len(flip_probabilities) != size:
            raise ValueError(
                f"need one flip probability per predicate: {size} vs "
                f"{len(flip_probabilities)}")
        if any(not 0.0 < p < 1.0 for p in flip_probabilities):
            raise ValueError("flip probabilities must be in (0, 1)")
        self.size = size
        self._rng = np.random.default_rng(rng.integers(0, 2**63))
        self._values = [bool(b) for b in self._rng.integers(0, 2, size)]
        self._flip_probabilities = flip_probabilities
        self._time = 0
        self._next_flip = [self._draw_flip(i, 0) for i in range(size)]

    def _draw_flip(self, index: int, now: int) -> int:
        return now + int(self._rng.geometric(self._flip_probabilities[index]))

    def advance_to(self, time: int) -> None:
        """Bring every predicate up to the given branch-time."""
        if time <= self._time:
            return
        for index in range(self.size):
            while self._next_flip[index] <= time:
                self._values[index] = not self._values[index]
                self._next_flip[index] = self._draw_flip(
                    index, self._next_flip[index])
        self._time = time

    def value(self, index: int, time: int) -> bool:
        """Current value of one predicate at branch-time ``time``."""
        self.advance_to(time)
        return self._values[index]

    def mean_persistence(self, index: int) -> float:
        """Expected branches between flips of a predicate."""
        return 1.0 / self._flip_probabilities[index]


class PredicateBehavior(Behavior):
    """A branch testing one or more hidden predicates.

    With a single predicate the outcome is the predicate (optionally
    inverted) — a direct *reflection*, trivially learnable from any other
    recent reflection of the same predicate.  With several predicates the
    outcome is a fixed random Boolean function of them, learnable once the
    history context pins all of them down.

    The executor context must expose ``time`` (resolved-branch counter).
    """

    __slots__ = ("pool", "predicate_ids", "invert", "_table")

    def __init__(self, rng: np.random.Generator, pool: PredicatePool,
                 predicate_ids: list[int], noise: float = 0.0) -> None:
        super().__init__(rng, noise)
        if not predicate_ids:
            raise ValueError("need at least one predicate id")
        if any(not 0 <= i < pool.size for i in predicate_ids):
            raise ValueError(
                f"predicate ids out of range for pool of {pool.size}")
        if len(predicate_ids) > 8:
            raise ValueError(
                f"at most 8 predicates per branch, got {len(predicate_ids)}")
        self.pool = pool
        self.predicate_ids = list(predicate_ids)
        if len(self.predicate_ids) == 1:
            self.invert = bool(self._rng.integers(0, 2))
            self._table = None
        else:
            self.invert = False
            self._table = [bool(b) for b in self._rng.integers(
                0, 2, 1 << len(self.predicate_ids))]

    def outcome(self, branch_id: int, ctx) -> bool:
        time = ctx.time
        if self._table is None:
            return self.pool.value(self.predicate_ids[0], time) ^ self.invert
        index = 0
        for position, predicate in enumerate(self.predicate_ids):
            index |= int(self.pool.value(predicate, time)) << position
        return self._table[index]


class ConditionCell:
    """A shared transient condition: one leader branch computes it, several
    follower branches re-test it.

    This is the dominant source of *usable* global-history correlation in
    integer code: the same freshly computed predicate (a comparison result,
    a type tag, a flag) is tested by several nearby static branches.  The
    first test is genuinely data-dependent; every later test is a
    deterministic copy — predictable from *any* reflection of the condition
    in the history, which is exactly the redundancy that lets the EV8's
    block-compressed lghist match full branch history (Section 8.3).
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = False


class ConditionLeaderBehavior(Behavior):
    """The branch that computes a shared condition: draws a fresh value with
    probability ``p_taken`` on every execution and publishes it to the
    cell."""

    __slots__ = ("cell", "p_taken")

    def __init__(self, rng: np.random.Generator, cell: ConditionCell,
                 p_taken: float = 0.5, noise: float = 0.0) -> None:
        super().__init__(rng, noise)
        if not 0.0 <= p_taken <= 1.0:
            raise ValueError(f"p_taken must be a probability, got {p_taken}")
        self.cell = cell
        self.p_taken = p_taken

    def outcome(self, branch_id: int, ctx: ExecutionContext) -> bool:
        self.cell.value = bool(self._rng.random() < self.p_taken)
        return self.cell.value


class ConditionFollowerBehavior(Behavior):
    """A branch re-testing a shared condition (optionally inverted).

    Unpredictable by a per-branch counter whenever the leader's draw is
    balanced, but perfectly determined by the history window containing any
    reflection of the cell since the leader last ran.
    """

    __slots__ = ("cell", "invert")

    def __init__(self, rng: np.random.Generator, cell: ConditionCell,
                 invert: bool | None = None, noise: float = 0.0) -> None:
        super().__init__(rng, noise)
        self.cell = cell
        self.invert = (bool(self._rng.integers(0, 2)) if invert is None
                       else invert)

    def outcome(self, branch_id: int, ctx: ExecutionContext) -> bool:
        return self.cell.value ^ self.invert
