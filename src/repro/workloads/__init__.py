"""Synthetic workloads: behaviour models, program generation, SPECINT95
stand-in profiles, SMT interleaving."""

from repro.workloads.behaviors import (
    Behavior,
    BiasedBehavior,
    ConditionCell,
    ConditionFollowerBehavior,
    ConditionLeaderBehavior,
    GlobalCorrelatedBehavior,
    LocalCorrelatedBehavior,
    LoopBehavior,
    MarkovBehavior,
    PatternBehavior,
    PredicateBehavior,
    PredicatePool,
    RandomBehavior,
)
from repro.workloads.smt import SMTResult, interleave_blocks, simulate_smt
from repro.workloads.generator import (
    BehaviorMix,
    WorkloadProfile,
    generate_program,
    generate_trace,
)
from repro.workloads.spec95 import (
    SPEC95_BENCHMARKS,
    TABLE2_DYNAMIC_PER_KI,
    TABLE2_STATIC_BRANCHES,
    default_trace_branches,
    profile_for,
    spec95_profiles,
    spec95_trace,
    spec95_traces,
)

__all__ = [
    "Behavior",
    "BiasedBehavior",
    "ConditionCell",
    "ConditionFollowerBehavior",
    "ConditionLeaderBehavior",
    "PredicateBehavior",
    "PredicatePool",
    "SMTResult",
    "interleave_blocks",
    "simulate_smt",
    "GlobalCorrelatedBehavior",
    "LocalCorrelatedBehavior",
    "LoopBehavior",
    "MarkovBehavior",
    "PatternBehavior",
    "RandomBehavior",
    "BehaviorMix",
    "WorkloadProfile",
    "generate_program",
    "generate_trace",
    "SPEC95_BENCHMARKS",
    "TABLE2_DYNAMIC_PER_KI",
    "TABLE2_STATIC_BRANCHES",
    "default_trace_branches",
    "profile_for",
    "spec95_profiles",
    "spec95_trace",
    "spec95_traces",
]
