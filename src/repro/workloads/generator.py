"""Random program generation from a workload profile.

A :class:`WorkloadProfile` captures, per benchmark, the trace-visible
characteristics that drive branch-predictor behaviour: static branch
footprint, behaviour mix, loop trip counts, correlation depths, noise, and
instruction density.  :func:`generate_program` expands a profile into a
:class:`~repro.workloads.cfg.Program` deterministically (seeded by the
profile name), and :func:`generate_trace` executes it.

The programs are structured as a phase dispatcher (a Markov chain over
functions, modelling a driver loop) over functions containing nested loops
and if-trees, so that:

* dynamic branch frequency is heavily skewed (hot inner loops, cold error
  paths) as in real integer code,
* global history is *usable*: correlated behaviours see stable control
  contexts within phases,
* the address stream is realistic (forward not-taken ifs, backward taken
  loop edges, call/return jumps).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.common.rng import DEFAULT_SEED, seed_from_name
from repro.traces.model import Trace
from repro.workloads.behaviors import (
    Behavior,
    BiasedBehavior,
    ConditionCell,
    ConditionFollowerBehavior,
    ConditionLeaderBehavior,
    GlobalCorrelatedBehavior,
    LocalCorrelatedBehavior,
    LoopBehavior,
    MarkovBehavior,
    PatternBehavior,
)
from repro.workloads.cfg import (
    CallNode,
    DispatchNode,
    Function,
    IfNode,
    LoopNode,
    Node,
    Program,
    Sequence,
    StaticBranch,
    Straight,
)

__all__ = ["GENERATOR_VERSION", "BehaviorMix", "WorkloadProfile",
           "generate_program", "generate_trace"]

GENERATOR_VERSION = 5
"""Bumped whenever generation semantics change, to invalidate cached traces.

Version 3: inter-branch correlation is modelled with *condition groups*
(one leader branch computes a fresh condition, several follower branches
re-test it deterministically).  The redundancy of the reflections is the
mechanism that lets the block-compressed lghist carry as much usable
information as full branch history (the paper's Section 8.3 finding), while
the fresh per-activation draw keeps the followers out of reach of
per-branch counters."""


@dataclass(frozen=True)
class BehaviorMix:
    """Relative weights of the behaviour classes assigned to if-branches.

    Loop back-edges always use :class:`LoopBehavior`; these weights apportion
    everything else.
    """

    biased_easy: float = 0.35
    """Strongly biased branches (error checks, guards)."""
    biased_hard: float = 0.10
    """Weakly biased, data-dependent branches."""
    global_shallow: float = 0.25
    """Members of *compact* condition groups: leader and followers sit close
    together, so reflections are shallow in the history."""
    global_deep: float = 0.10
    """Members of *spread* condition groups: members are scattered across
    the program (even across functions), so the nearest reflection sits deep
    in the history — the Fig 6 long-history knob."""
    local_pattern: float = 0.10
    """Short repeating / self-correlated patterns."""
    markov: float = 0.10
    """Phase-switching branches."""

    def as_items(self) -> tuple[list[str], list[float]]:
        pairs = [("biased_easy", self.biased_easy),
                 ("biased_hard", self.biased_hard),
                 ("global_shallow", self.global_shallow),
                 ("global_deep", self.global_deep),
                 ("local_pattern", self.local_pattern),
                 ("markov", self.markov)]
        names = [name for name, _ in pairs]
        weights = np.array([weight for _, weight in pairs], dtype=np.float64)
        if (weights < 0).any() or weights.sum() <= 0:
            raise ValueError(f"invalid behaviour mix weights: {pairs}")
        return names, list(weights / weights.sum())


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything needed to synthesise one benchmark's program."""

    name: str
    static_branches: int
    """Target static conditional branch count (Table 2 column)."""
    num_functions: int = 12
    mix: BehaviorMix = field(default_factory=BehaviorMix)
    loop_fraction: float = 0.2
    """Fraction of static branches that are loop back-edges."""
    mean_loop_trips: float = 8.0
    loop_trip_sigma: float = 0.8
    """Log-normal sigma of per-loop mean trip counts."""
    loop_jitter: float = 0.2
    shallow_lag_span: tuple[int, int] = (1, 8)
    deep_lag_span: tuple[int, int] = (10, 30)
    leader_concentration: float = 0.8
    """Beta(a, a) parameter for condition-group leader bias: small values
    concentrate leader probabilities near 0/1 (predictable first tests, as
    in database/simulator codes); values >= 1 keep them balanced (hard
    data-dependent conditions, as in go/compress)."""
    group_followers_span: tuple[int, int] = (2, 6)
    """Followers per condition group (inclusive span).  Larger groups mean
    rarer (unpredictable) leaders and more redundancy."""
    correlation_taps: int = 3
    """History taps per correlated branch."""
    noise: float = 0.04
    """Baseline outcome noise on structured behaviours."""
    easy_bias: float = 0.04
    """Not-taken probability margin for strongly biased branches."""
    hard_bias_span: tuple[float, float] = (0.3, 0.7)
    taken_bias_fraction: float = 0.25
    """Fraction of strongly biased branches biased towards taken."""
    mean_lead_instructions: float = 3.0
    """Mean straight-line instructions in front of each branch (controls
    instructions/branch)."""
    else_probability: float = 0.3
    chain_probability: float = 0.25
    """Probability that an if-branch is generated as part of a short chain of
    compare-and-skip guards (consecutive branches with tiny bodies — these
    are what pack several predictions into one fetch block)."""
    max_nest_depth: int = 4
    call_probability: float = 0.08
    dispatch_affinity: float = 0.6
    """Markov self+neighbour affinity of the phase dispatcher."""
    code_base: int = 0x1200_0000
    root_seed: int = DEFAULT_SEED

    def cache_parameters(self) -> dict:
        """Stable dictionary of all generation parameters (trace-cache key)."""
        result = {"generator_version": GENERATOR_VERSION}
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            if isinstance(value, BehaviorMix):
                value = vars(value).copy() if not hasattr(value, "__dict__") else {
                    f: getattr(value, f) for f in value.__dataclass_fields__}
            result[name] = value
        return result

    def with_seed(self, root_seed: int) -> "WorkloadProfile":
        """A copy of the profile with a different root seed (for SMT threads
        running distinct instances of the same program)."""
        return replace(self, root_seed=root_seed)


class _ProgramBuilder:
    """Stateful helper expanding one profile into a Program."""

    def __init__(self, profile: WorkloadProfile) -> None:
        self.profile = profile
        self.rng = np.random.default_rng(
            seed_from_name(profile.name, profile.root_seed))
        self._next_branch_id = 0
        self._behavior_names, self._behavior_weights = profile.mix.as_items()
        # Open condition groups: (cell, followers still to hand out).
        # Shallow groups are refilled rapidly so their members end up
        # adjacent in the program; deep draws are rare, so one deep group's
        # members spread across the whole program (and across functions).
        self._open_shallow: tuple[ConditionCell, int] | None = None
        self._open_deep: tuple[ConditionCell, int] | None = None

    def _draw_group_member(self, kind: str, noise: float) -> Behavior:
        """Hand out the next member of a condition group (creating the
        group, with its leader, when none is open)."""
        open_attr = "_open_shallow" if kind == "shallow" else "_open_deep"
        state = getattr(self, open_attr)
        if state is None:
            cell = ConditionCell()
            low, high = self.profile.group_followers_span
            followers = int(self.rng.integers(low, high + 1))
            setattr(self, open_attr, (cell, followers))
            a = self.profile.leader_concentration
            p_taken = float(self.rng.beta(a, a))
            return ConditionLeaderBehavior(self.rng, cell, p_taken,
                                           noise=noise)
        cell, remaining = state
        remaining -= 1
        setattr(self, open_attr, None if remaining <= 0 else (cell, remaining))
        return ConditionFollowerBehavior(self.rng, cell, noise=noise)

    def _close_shallow_groups(self) -> None:
        """Shallow groups never span a function boundary."""
        self._open_shallow = None

    # -- primitive draws ---------------------------------------------------

    def _new_branch(self, behavior: Behavior) -> StaticBranch:
        branch = StaticBranch(self._next_branch_id, behavior)
        self._next_branch_id += 1
        return branch

    def _draw_lead(self) -> int:
        mean = max(1.0, self.profile.mean_lead_instructions)
        return int(self.rng.geometric(1.0 / mean))

    def _draw_lag_set(self, span: tuple[int, int]) -> list[int]:
        low, high = span
        taps = min(self.profile.correlation_taps, high - low + 1)
        lags = self.rng.choice(np.arange(low, high + 1), size=taps,
                               replace=False)
        return [int(lag) for lag in lags]

    def _draw_if_behavior(self, depth: int = 0) -> Behavior:
        profile = self.profile
        kind = self._behavior_names[int(self.rng.choice(
            len(self._behavior_names), p=self._behavior_weights))]
        if kind == "biased_hard" and depth >= 2 and self.rng.random() < 0.7:
            # Deep inner loops are the optimised hot paths; a data-dependent
            # coin-flip there would dominate the whole trace's dynamic mix
            # by sheer execution count.  Most of the time, demote it.
            kind = "biased_easy"
        if kind == "biased_easy":
            if self.rng.random() < profile.taken_bias_fraction:
                p_taken = 1.0 - profile.easy_bias * self.rng.random()
            else:
                p_taken = profile.easy_bias * self.rng.random()
            return BiasedBehavior(self.rng, p_taken)
        if kind == "biased_hard":
            # Hard data-dependent branches.  Real ones are not IID coin
            # flips: their outcomes come in runs or carry weak correlation,
            # so they keep the *history stream* low-entropy while staying
            # mostly unpredictable.  An IID 50/50 branch would poison every
            # history window that contains it and make long histories
            # unusable for everyone else — which is not what SPEC traces
            # look like.
            if self.rng.random() < 0.5:
                persistence = self.rng.uniform(0.60, 0.85)
                return MarkovBehavior(self.rng, persistence, persistence)
            low, high = profile.hard_bias_span
            return BiasedBehavior(self.rng, float(self.rng.uniform(low, high)))
        if kind == "global_shallow":
            return self._draw_group_member("shallow", noise=profile.noise)
        if kind == "global_deep":
            return self._draw_group_member("deep", noise=profile.noise)
        if kind == "local_pattern":
            if self.rng.random() < 0.5:
                period = int(self.rng.integers(2, 7))
                pattern = [bool(b) for b in self.rng.integers(0, 2, period)]
                if all(pattern) or not any(pattern):
                    pattern[0] = not pattern[0]
                return PatternBehavior(self.rng, pattern, noise=profile.noise)
            # Short self-correlation only: long chaotic cycles would be
            # unpredictable by ANY of the paper's predictors and just raise
            # the noise floor.
            depth = int(self.rng.integers(2, 4))
            return LocalCorrelatedBehavior(self.rng, depth,
                                           noise=profile.noise)
        if kind == "markov":
            persistence = self.rng.uniform(0.9, 0.995)
            return MarkovBehavior(self.rng, persistence, persistence,
                                  noise=profile.noise)
        raise AssertionError(f"unknown behaviour kind {kind!r}")

    #: Trip-count ceilings by nesting depth.  Without them, nested loops
    #: multiply into single-phase traces that exercise almost no static
    #: footprint (one function call emitting tens of thousands of branches).
    _TRIP_CAPS = (160, 16, 6, 3)

    def _draw_loop_behavior(self, depth: int) -> LoopBehavior:
        profile = self.profile
        trips = self.rng.lognormal(np.log(profile.mean_loop_trips),
                                   profile.loop_trip_sigma)
        cap = self._TRIP_CAPS[min(depth, len(self._TRIP_CAPS) - 1)]
        # Most real loop bounds are constant within a phase; constant trip
        # counts are what make global-history contexts *recur* and history
        # bits pay off.  Only a minority of loops get data-dependent jitter.
        jitter = (profile.loop_jitter if self.rng.random() < 0.1 else 0.0)
        return LoopBehavior(self.rng, max(1, min(cap, int(round(trips)))),
                            trip_jitter=jitter)

    # -- structure generation ----------------------------------------------

    def _gen_body(self, budget: int, depth: int,
                  callable_functions: list[Function]) -> Node:
        """Generate a body consuming exactly ``budget`` static branches."""
        profile = self.profile
        items: list[Node] = []
        remaining = budget
        while remaining > 0:
            if (callable_functions and depth < 2
                    and self.rng.random() < profile.call_probability):
                callee = callable_functions[int(
                    self.rng.integers(len(callable_functions)))]
                items.append(CallNode(callee))
                # Calls consume no branch budget; continue.
            roll = self.rng.random()
            can_nest = depth < profile.max_nest_depth and remaining >= 2
            if roll < profile.loop_fraction:
                # Loop bodies carry if-branches whenever the budget allows:
                # in real code the branches *inside* the hot loop execute as
                # often as its back-edge, so an empty body would skew the
                # dynamic mix towards taken back-edges.
                inner = 0
                if can_nest:
                    inner = int(self.rng.integers(1, min(remaining, 9)))
                body = (self._gen_body(inner, depth + 1, callable_functions)
                        if inner else Straight(self._draw_lead()))
                branch = self._new_branch(self._draw_loop_behavior(depth))
                items.append(LoopNode(branch, body, lead=self._draw_lead()))
                remaining -= inner + 1
            elif remaining >= 2 and self.rng.random() < profile.chain_probability:
                # A compare-and-skip chain re-testing one freshly computed
                # condition: the canonical condition group.  The leader
                # computes the condition, the following guards re-test it at
                # the same execution frequency and distance — exactly the
                # redundant correlation global-history predictors feed on.
                # Their tiny bodies also pack several predictions into one
                # fetch block (the source of lghist compression).
                chain_len = min(remaining, int(self.rng.integers(3, 8)))
                cell = ConditionCell()
                concentration = profile.leader_concentration
                for position in range(chain_len):
                    if position == 0:
                        behavior: Behavior = ConditionLeaderBehavior(
                            self.rng, cell,
                            float(self.rng.beta(concentration,
                                                concentration)),
                            noise=profile.noise)
                    elif self.rng.random() < 0.60:
                        # Most chain guards are cheap biased checks: the
                        # chain's packing (several branches per fetch block)
                        # is what produces lghist compression, but outcomes
                        # of non-final branches in a block never enter
                        # lghist — so the *correlation* payload must mostly
                        # travel in branches spread across blocks (the body
                        # groups), not inside the chain itself.
                        behavior = BiasedBehavior(
                            self.rng, profile.easy_bias * self.rng.random())
                    else:
                        behavior = ConditionFollowerBehavior(
                            self.rng, cell, noise=profile.noise)
                    branch = self._new_branch(behavior)
                    skip = Straight(int(self.rng.integers(1, 4)))
                    items.append(IfNode(branch, skip, None,
                                        lead=int(self.rng.integers(0, 2))))
                remaining -= chain_len
            else:
                then_budget = 0
                if can_nest and self.rng.random() < 0.5:
                    then_budget = int(self.rng.integers(0, min(remaining, 4)))
                then_body = (self._gen_body(then_budget, depth + 1,
                                            callable_functions)
                             if then_budget else Straight(self._draw_lead()))
                else_body = None
                if self.rng.random() < profile.else_probability:
                    else_body = Straight(self._draw_lead())
                branch = self._new_branch(self._draw_if_behavior(depth))
                items.append(IfNode(branch, then_body, else_body,
                                    lead=self._draw_lead()))
                remaining -= then_budget + 1
            if self.rng.random() < 0.5:
                items.append(Straight(self._draw_lead()))
        # Shallow condition groups never span a body: members must execute
        # at the same frequency for their reflections to stay close.
        self._open_shallow = None
        return Sequence(items)

    def _branch_budgets(self) -> list[int]:
        """Split the static branch budget over functions with a skewed
        (Zipf-like) distribution: a few big functions, many small ones."""
        profile = self.profile
        n = max(1, min(profile.num_functions, profile.static_branches))
        raw = 1.0 / np.arange(1, n + 1) ** 0.8
        self.rng.shuffle(raw)
        shares = raw / raw.sum()
        budgets = np.maximum(1, np.round(shares * profile.static_branches))
        budgets = budgets.astype(int)
        # Adjust rounding drift so the total is exact.
        drift = int(budgets.sum()) - profile.static_branches
        index = 0
        while drift != 0:
            step = -1 if drift > 0 else 1
            if budgets[index % n] + step >= 1:
                budgets[index % n] += step
                drift += step
            index += 1
        return [int(b) for b in budgets]

    def _dispatch_matrix(self, n: int) -> np.ndarray:
        """Markov transitions between phases: high affinity for the same and
        the next function, small uniform leak everywhere."""
        affinity = self.profile.dispatch_affinity
        matrix = np.full((n, n), (1.0 - affinity) / n, dtype=np.float64)
        for i in range(n):
            matrix[i, i] += affinity / 2
            matrix[i, (i + 1) % n] += affinity / 2
        return matrix / matrix.sum(axis=1, keepdims=True)

    def build(self) -> Program:
        functions: list[Function] = []
        for index, budget in enumerate(self._branch_budgets()):
            body = self._gen_body(budget, depth=0,
                                  callable_functions=functions[:index])
            functions.append(Function(f"f{index}", body))
            self._close_shallow_groups()
        dispatch = DispatchNode(self.rng, functions,
                                self._dispatch_matrix(len(functions)))
        return Program(self.profile.name, functions, dispatch,
                       code_base=self.profile.code_base)


def generate_program(profile: WorkloadProfile) -> Program:
    """Deterministically expand a profile into a laid-out program."""
    return _ProgramBuilder(profile).build()


def generate_trace(profile: WorkloadProfile, num_branches: int) -> Trace:
    """Generate a program from ``profile`` and execute it for
    ``num_branches`` dynamic conditional branches."""
    if num_branches < 1:
        raise ValueError(f"num_branches must be >= 1, got {num_branches}")
    return generate_program(profile).run(num_branches)
