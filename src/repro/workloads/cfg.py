"""Synthetic programs: a structured control-flow representation that is laid
out in a realistic address space and *executed* to produce dynamic traces.

The paper's traces come from real Alpha binaries.  We replace them with
synthetic programs that preserve what the EV8 predictor actually observes:

* a contiguous code layout (functions laid out in sequence, conditional
  branches skipping forward over their bodies, loop back-edges branching
  backward) — so fetch blocks, PC bit patterns and path information are
  realistic;
* per-branch outcome behaviour drawn from
  :mod:`repro.workloads.behaviors`;
* a single architectural global-history register that correlated behaviours
  observe, exactly like real inter-branch correlation.

The program is a small AST (:class:`Straight`, :class:`IfNode`,
:class:`LoopNode`, :class:`CallNode`, :class:`Sequence`,
:class:`DispatchNode`) compiled once by :meth:`Program.layout` (address
assignment) and interpreted by :class:`Executor`.

Layout conventions (matching compiler output for optimised code):

* ``IfNode``: the conditional branch jumps *forward over* the then-body when
  taken — optimised code favours not-taken forward branches (Section 5.1
  notes "highly optimized codes tend to exhibit less taken branches").
* ``LoopNode``: the conditional back-edge at the loop bottom is taken to
  continue — backward taken branches.
* ``CallNode`` / function return are unconditional jumps (the predictor only
  cares about the address stream they produce).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.common.bitops import mask
from repro.traces.model import (
    INSTRUCTION_BYTES,
    TerminatorKind,
    Trace,
    TraceBuilder,
)
from repro.workloads.behaviors import Behavior, LoopBehavior

__all__ = [
    "StaticBranch",
    "Node",
    "Straight",
    "IfNode",
    "LoopNode",
    "CallNode",
    "DispatchNode",
    "Sequence",
    "Function",
    "Program",
    "Executor",
    "ExecutionLimit",
]

_HISTORY_BITS = 64
_HISTORY_MASK = mask(_HISTORY_BITS)

_LOOP_ITERATION_CAP = 1_000_000
"""Safety valve against a pathological behaviour never exiting a loop."""


@dataclass
class StaticBranch:
    """One static conditional branch: identity + behaviour + (post-layout)
    address."""

    branch_id: int
    behavior: Behavior
    pc: int = -1

    def resolved(self) -> bool:
        return self.pc >= 0


class Node:
    """Base class for program AST nodes.

    ``layout(address)`` assigns instruction addresses and returns the address
    just past the node.  ``execute(executor)`` emits the node's dynamic
    blocks.  ``static_branches()`` yields the conditional branches owned by
    the subtree.
    """

    def layout(self, address: int) -> int:
        raise NotImplementedError

    def execute(self, executor: "Executor") -> None:
        raise NotImplementedError

    def static_branches(self):
        return iter(())


class Straight(Node):
    """``n`` straight-line instructions with no terminator."""

    __slots__ = ("n", "start")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"instruction count must be non-negative, got {n}")
        self.n = n
        self.start = -1

    def layout(self, address: int) -> int:
        self.start = address
        return address + self.n * INSTRUCTION_BYTES

    def execute(self, executor: "Executor") -> None:
        if self.n:
            end = self.start + self.n * INSTRUCTION_BYTES
            executor.emit(self.start, self.n, TerminatorKind.FALLTHROUGH,
                          False, end)


class Sequence(Node):
    """A sequence of nodes laid out and executed in order."""

    __slots__ = ("nodes",)

    def __init__(self, nodes: list[Node]) -> None:
        self.nodes = nodes

    def layout(self, address: int) -> int:
        for node in self.nodes:
            address = node.layout(address)
        return address

    def execute(self, executor: "Executor") -> None:
        for node in self.nodes:
            node.execute(executor)

    def static_branches(self):
        return itertools.chain.from_iterable(
            node.static_branches() for node in self.nodes)


class IfNode(Node):
    """``lead`` instructions, a conditional branch, a then-body and an
    optional else-body.

    Taken means *skip the then-body* (forward branch).  With an else-body,
    the then-body ends with an unconditional jump over the else-body.
    """

    __slots__ = ("branch", "lead", "then_body", "else_body",
                 "start", "_then_start", "_else_start", "_join")

    def __init__(self, branch: StaticBranch, then_body: Node,
                 else_body: Node | None = None, lead: int = 1) -> None:
        if lead < 0:
            raise ValueError(f"lead instruction count must be >= 0, got {lead}")
        self.branch = branch
        self.lead = lead
        self.then_body = then_body
        self.else_body = else_body
        self.start = -1
        self._then_start = -1
        self._else_start = -1
        self._join = -1

    def layout(self, address: int) -> int:
        self.start = address
        # lead instructions then the branch itself.
        self.branch.pc = address + self.lead * INSTRUCTION_BYTES
        self._then_start = self.branch.pc + INSTRUCTION_BYTES
        address = self.then_body.layout(self._then_start)
        if self.else_body is not None:
            address += INSTRUCTION_BYTES  # jump over the else-body
            self._else_start = address
            address = self.else_body.layout(address)
        else:
            self._else_start = address
        self._join = address
        return address

    def execute(self, executor: "Executor") -> None:
        taken = executor.resolve(self.branch)
        target = self._else_start if taken else self._then_start
        executor.emit(self.start, self.lead + 1, TerminatorKind.CONDITIONAL,
                      taken, target)
        if taken:
            if self.else_body is not None:
                self.else_body.execute(executor)
        else:
            self.then_body.execute(executor)
            if self.else_body is not None:
                jump_pc = self._else_start - INSTRUCTION_BYTES
                executor.emit(jump_pc, 1, TerminatorKind.JUMP, True, self._join)

    def static_branches(self):
        yield self.branch
        yield from self.then_body.static_branches()
        if self.else_body is not None:
            yield from self.else_body.static_branches()


class LoopNode(Node):
    """A bottom-tested loop: body, then ``lead`` latch instructions ending in
    a conditional back-edge (taken = iterate again)."""

    __slots__ = ("branch", "body", "lead", "start", "_latch_start", "_exit")

    def __init__(self, branch: StaticBranch, body: Node, lead: int = 1) -> None:
        if lead < 1:
            raise ValueError(f"the latch needs at least the branch itself, got lead={lead}")
        self.branch = branch
        self.body = body
        self.lead = lead
        self.start = -1
        self._latch_start = -1
        self._exit = -1

    def layout(self, address: int) -> int:
        self.start = address
        address = self.body.layout(address)
        self._latch_start = address
        self.branch.pc = address + (self.lead - 1) * INSTRUCTION_BYTES
        self._exit = self.branch.pc + INSTRUCTION_BYTES
        return self._exit

    def execute(self, executor: "Executor") -> None:
        behavior = self.branch.behavior
        if isinstance(behavior, LoopBehavior):
            behavior.enter()
        for _ in range(_LOOP_ITERATION_CAP):
            self.body.execute(executor)
            taken = executor.resolve(self.branch)
            target = self.start if taken else self._exit
            executor.emit(self._latch_start, self.lead,
                          TerminatorKind.CONDITIONAL, taken, target)
            if not taken:
                return
        raise RuntimeError(
            f"loop at {self.start:#x} exceeded {_LOOP_ITERATION_CAP} iterations")

    def static_branches(self):
        yield self.branch
        yield from self.body.static_branches()


class CallNode(Node):
    """A direct call: jump to the callee, execute it, return here."""

    __slots__ = ("callee", "start")

    def __init__(self, callee: "Function") -> None:
        self.callee = callee
        self.start = -1

    def layout(self, address: int) -> int:
        self.start = address
        return address + INSTRUCTION_BYTES

    def execute(self, executor: "Executor") -> None:
        return_address = self.start + INSTRUCTION_BYTES
        executor.emit(self.start, 1, TerminatorKind.CALL, True,
                      self.callee.entry)
        self.callee.execute_body(executor, return_address, via_call=True)


class DispatchNode(Node):
    """An indirect dispatch over a set of callees following a Markov chain.

    Models the outer phase structure of an integer program: an interpreter
    or driver loop invoking program regions in recurring sequences.  The
    chain (not IID choice) keeps the global history context stable enough
    for correlated behaviours — as in real code.
    """

    __slots__ = ("callees", "transition", "_state", "_rng", "start")

    def __init__(self, rng: np.random.Generator, callees: list["Function"],
                 transition: np.ndarray) -> None:
        if not callees:
            raise ValueError("dispatch needs at least one callee")
        transition = np.asarray(transition, dtype=np.float64)
        if transition.shape != (len(callees), len(callees)):
            raise ValueError(
                f"transition matrix shape {transition.shape} does not match "
                f"{len(callees)} callees")
        row_sums = transition.sum(axis=1)
        if not np.allclose(row_sums, 1.0):
            raise ValueError("transition matrix rows must sum to 1")
        self.callees = callees
        self.transition = transition
        self._state = 0
        self._rng = np.random.default_rng(rng.integers(0, 2**63))
        self.start = -1

    def layout(self, address: int) -> int:
        self.start = address
        return address + INSTRUCTION_BYTES

    def execute(self, executor: "Executor") -> None:
        callee = self.callees[self._state]
        self._state = int(self._rng.choice(len(self.callees),
                                           p=self.transition[self._state]))
        # Threaded-interpreter dispatch: the handler is entered through an
        # indirect JUMP (not a call) and exits through an indirect jump
        # back to the dispatch instruction — the pattern that famously
        # defeats return-address stacks and jump tables in real
        # interpreters.
        executor.emit(self.start, 1, TerminatorKind.JUMP, True, callee.entry)
        callee.execute_body(executor, self.start, via_call=False)


class Function:
    """A function: an entry address, a body, and a 1-instruction return jump."""

    __slots__ = ("name", "body", "entry", "_return_pc")

    def __init__(self, name: str, body: Node) -> None:
        self.name = name
        self.body = body
        self.entry = -1
        self._return_pc = -1

    def layout(self, address: int) -> int:
        self.entry = address
        address = self.body.layout(address)
        self._return_pc = address
        return address + INSTRUCTION_BYTES

    def execute_body(self, executor: "Executor", return_address: int,
                     via_call: bool = True) -> None:
        """Execute the body and transfer back to ``return_address``.

        ``via_call`` selects the exit flavour: a true RETURN (pops the
        hardware RAS) when the function was entered by a call, or an
        indirect JUMP when it was entered by a threaded dispatch."""
        self.body.execute(executor)
        kind = TerminatorKind.RETURN if via_call else TerminatorKind.JUMP
        executor.emit(self._return_pc, 1, kind, True, return_address)

    def static_branches(self):
        return self.body.static_branches()


class Program:
    """A laid-out synthetic program: functions plus a main dispatch loop.

    ``main`` is executed repeatedly until the requested trace length is
    reached.
    """

    def __init__(self, name: str, functions: list[Function], main: Node,
                 code_base: int = 0x1200_0000) -> None:
        if code_base % INSTRUCTION_BYTES:
            raise ValueError(f"code base {code_base:#x} is not instruction-aligned")
        self.name = name
        self.functions = functions
        self.main = main
        self.code_base = code_base
        self.code_end = self._layout()
        self._check_layout()

    def _layout(self) -> int:
        address = self.code_base
        for function in self.functions:
            address = function.layout(address)
            # Small inter-function padding, as linkers align entries.
            address = (address + 31) & ~31
        return self.main.layout(address)

    def _check_layout(self) -> None:
        unresolved = [branch.branch_id for branch in self.static_branches()
                      if not branch.resolved()]
        if unresolved:
            raise RuntimeError(
                f"layout left branches without addresses: {unresolved[:5]}...")

    def static_branches(self) -> list[StaticBranch]:
        """All static conditional branches of the program."""
        branches = []
        for function in self.functions:
            branches.extend(function.static_branches())
        branches.extend(self.main.static_branches())
        return branches

    def run(self, max_branches: int, *,
            max_blocks: int | None = None) -> Trace:
        """Execute until ``max_branches`` dynamic conditional branches have
        been emitted; return the trace."""
        executor = Executor(self.name, max_branches=max_branches,
                            max_blocks=max_blocks)
        try:
            while True:
                self.main.execute(executor)
        except ExecutionLimit:
            pass
        return executor.builder.build()


class ExecutionLimit(Exception):
    """Raised internally to unwind the executor once the trace is long
    enough."""


class Executor:
    """Interprets a laid-out program, emitting block executions and
    maintaining the architectural global history that correlated behaviours
    observe."""

    __slots__ = ("builder", "global_history", "time", "max_branches",
                 "max_blocks", "_branches_emitted", "_occurrences")

    def __init__(self, name: str, max_branches: int,
                 max_blocks: int | None = None) -> None:
        if max_branches < 1:
            raise ValueError(f"max_branches must be >= 1, got {max_branches}")
        self.builder = TraceBuilder(name)
        self.global_history = 0
        self.time = 0
        """Resolved-branch counter; the clock for
        :class:`~repro.workloads.behaviors.PredicatePool` evolution."""
        self.max_branches = max_branches
        self.max_blocks = max_blocks
        self._branches_emitted = 0
        self._occurrences: dict[int, int] = {}

    # ExecutionContext protocol ------------------------------------------

    def occurrence(self, branch_id: int) -> int:
        """Number of previous executions of the branch."""
        return self._occurrences.get(branch_id, 0)

    # Execution ----------------------------------------------------------

    def resolve(self, branch: StaticBranch) -> bool:
        """Evaluate a conditional branch's behaviour and commit its outcome
        to the architectural history."""
        outcome = branch.behavior.next(branch.branch_id, self)
        self.global_history = (
            ((self.global_history << 1) | int(outcome)) & _HISTORY_MASK)
        self.time += 1
        self._occurrences[branch.branch_id] = (
            self._occurrences.get(branch.branch_id, 0) + 1)
        return outcome

    def emit(self, start: int, num_instructions: int, kind: TerminatorKind,
             taken: bool, next_start: int) -> None:
        """Record one block execution; raise :class:`ExecutionLimit` when the
        trace is long enough."""
        self.builder.add(start, num_instructions, kind, taken, next_start)
        if kind == TerminatorKind.CONDITIONAL:
            self._branches_emitted += 1
            if self._branches_emitted >= self.max_branches:
                raise ExecutionLimit
        if self.max_blocks is not None and len(self.builder) >= self.max_blocks:
            raise ExecutionLimit
