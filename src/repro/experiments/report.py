"""Rendering helpers for experiment output.

The paper presents results as per-benchmark bar charts; the textual
equivalents here are fixed-width tables with one row per benchmark and an
arithmetic-mean summary row.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.compare import ComparisonTable

__all__ = ["render_table", "render_delta_table", "render_timing_table"]


def render_table(title: str, benchmarks: list[str],
                 columns: dict[str, dict[str, float]],
                 precision: int = 3, unit: str = "misp/KI") -> str:
    """Render ``columns[config][benchmark] -> value`` as an ASCII table."""
    names = list(columns)
    width = max(12, *(len(name) + 2 for name in names))
    bench_width = max(10, *(len(name) + 2 for name in benchmarks))
    lines = [f"{title}  ({unit})"]
    header = "".join([f"{'benchmark':<{bench_width}}"]
                     + [f"{name:>{width}}" for name in names])
    lines.append(header)
    lines.append("-" * len(header))
    for benchmark in benchmarks:
        row = [f"{benchmark:<{bench_width}}"]
        for name in names:
            row.append(f"{columns[name][benchmark]:>{width}.{precision}f}")
        lines.append("".join(row))
    lines.append("-" * len(header))
    mean_row = [f"{'amean':<{bench_width}}"]
    for name in names:
        values = [columns[name][benchmark] for benchmark in benchmarks]
        mean_row.append(f"{sum(values) / len(values):>{width}.{precision}f}")
    lines.append("".join(mean_row))
    return "\n".join(lines)


def render_delta_table(title: str, benchmarks: list[str],
                       base: dict[str, dict[str, float]],
                       other: dict[str, dict[str, float]],
                       precision: int = 3) -> str:
    """Render ``other - base`` per configuration and benchmark (the Fig 6
    "additional mispredictions" presentation)."""
    deltas = {
        name: {benchmark: other[name][benchmark] - base[name][benchmark]
               for benchmark in benchmarks}
        for name in base
    }
    return render_table(title, benchmarks, deltas, precision,
                        unit="additional misp/KI")


def render_timing_table(title: str, table: "ComparisonTable",
                        precision: int = 2) -> str:
    """Render per-cell simulation throughput for a comparison grid.

    One row per benchmark, one column per configuration, each cell
    ``Mbr/s`` (millions of branches per second); a trailing line reports
    the total wall-clock and the engine(s) that produced the grid.  This
    is the textual companion of :func:`render_table` for the timing
    fields :class:`~repro.sim.metrics.SimulationResult` records.
    """
    throughput = {
        config: {
            benchmark: table.result(config, benchmark).branches_per_second / 1e6
            for benchmark in table.benchmark_names
        }
        for config in table.config_names
    }
    body = render_table(title, table.benchmark_names, throughput,
                        precision, unit="Mbr/s")
    engines = sorted({table.result(config, benchmark).engine
                      for config in table.config_names
                      for benchmark in table.benchmark_names})
    footer = (f"total wall-clock: {table.wall_seconds():.2f} s  "
              f"(engine: {', '.join(engines)})")
    return body + "\n" + footer
