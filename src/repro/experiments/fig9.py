"""Fig 9: effect of the wordline (shared, unhashed) index bits.

The 6 wordline bits plus the 2 bank bits are shared by all four tables and
cannot be hashed (Section 7.1).  Fig 9 evaluates what goes into them:

* ``address only, no path`` — wordline and bank from PC bits only; lghist
  carries no path bit,
* ``address only, path``    — PC-only shared index, path bit in lghist,
* ``no path``               — the EV8 wordline (4 history bits + 2 PC bits)
  but lghist without path bits,
* ``EV8``                   — the shipped design: history+address wordline,
  path bit in lghist, conflict-free banks,
* ``complete hash``         — no hardware constraints, all information bits
  hashed (EV8 info vector),
* ``4x64K ghist``           — the unconstrained 512 Kbit reference with
  conventional branch history.

Paper findings to reproduce: the PC-only shared index distributes accesses
poorly and loses accuracy; adding path information to lghist makes the
shared index distribution more uniform and recovers it; the final EV8
functions stand the comparison with complete hashing — and with the
unconstrained 512 Kbit ghist predictor.
"""

from __future__ import annotations

from repro.experiments.common import (
    BEST_HISTORY,
    experiment_traces,
    make_2bc_gskew,
    record_results,
)
from repro.ev8.config import EV8_CONFIG
from repro.ev8.indexfuncs import EV8IndexScheme
from repro.ev8.predictor import EV8BranchPredictor
from repro.history.providers import (
    BlockLghistProvider,
    BranchGhistProvider,
)
from repro.predictors.twobcgskew import SkewedIndexScheme
from repro.sim.compare import ComparisonTable, run_comparison
from repro.sim.engine import SimulationEngine

__all__ = ["CONFIG_ORDER", "run", "render"]

CONFIG_ORDER = ("address only, no path", "address only, path", "no path",
                "EV8", "complete hash", "4x64K ghist")


def _ev8(scheme: EV8IndexScheme, name: str):
    return lambda: EV8BranchPredictor(EV8_CONFIG, index_scheme=scheme,
                                      name=name)


def run(num_branches: int | None = None,
        engine: str | SimulationEngine | None = None) -> ComparisonTable:
    """Run the six Fig 9 configurations."""
    traces = experiment_traces(num_branches)
    g0, g1, meta = BEST_HISTORY["2bc_64k"]
    configs = {
        "address only, no path": _ev8(
            EV8IndexScheme(wordline_mode="address", use_block_bank=False),
            "ev8-addr-nopath"),
        "address only, path": _ev8(
            EV8IndexScheme(wordline_mode="address", use_block_bank=False),
            "ev8-addr-path"),
        "no path": _ev8(EV8IndexScheme(wordline_mode="history"),
                        "ev8-nopath"),
        "EV8": _ev8(EV8IndexScheme(wordline_mode="history"), "ev8"),
        "complete hash": lambda: make_2bc_gskew(
            64 * 1024, g0, g1, meta, bim_entries=16 * 1024,
            g0_hysteresis=32 * 1024, meta_hysteresis=32 * 1024,
            index_scheme=SkewedIndexScheme(use_path_addresses=True),
            name="complete-hash"),
        "4x64K ghist": lambda: make_2bc_gskew(
            64 * 1024, g0, g1, meta, name="4x64K-ghist"),
    }
    aged = dict(include_path=True, delay_blocks=3)
    providers = {
        "address only, no path": lambda: BlockLghistProvider(
            include_path=False, delay_blocks=3),
        "address only, path": lambda: BlockLghistProvider(**aged),
        "no path": lambda: BlockLghistProvider(include_path=False,
                                               delay_blocks=3),
        "EV8": lambda: BlockLghistProvider(**aged),
        "complete hash": lambda: BlockLghistProvider(**aged),
        "4x64K ghist": BranchGhistProvider,
    }
    table = run_comparison(configs, traces, provider_factories=providers,
                           engine=engine)
    record_results("fig9", table)
    return table


def render(table: ComparisonTable) -> str:
    return table.render("Fig 9: effect of wordline indices")


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
