"""Shared experiment infrastructure.

The evaluation reproduces every table and figure of Section 8 on the
synthetic SPECINT95 stand-ins.  This module centralises:

* the benchmark set and trace lengths,
* the predictor configurations of Fig 5/6 with *our* best history lengths
  (the paper tunes history lengths to its traces; we tune to ours with
  :func:`repro.sim.sweep.best_history_length` — the constants below were
  produced by ``examples/calibrate_history.py`` and can be regenerated),
* result recording (JSON files under ``results/``) used by the benches and
  by EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.predictors import (
    BiModePredictor,
    GsharePredictor,
    TableConfig,
    TwoBcGskewPredictor,
    YagsPredictor,
)
from repro.sim.compare import ComparisonTable
from repro.traces.model import Trace
from repro.workloads.spec95 import (
    SPEC95_BENCHMARKS,
    default_trace_branches,
    spec95_trace,
)

__all__ = [
    "BEST_HISTORY",
    "experiment_traces",
    "make_2bc_gskew",
    "make_fig5_configs",
    "record_results",
    "results_dir",
]

BEST_HISTORY = {
    # Best history lengths for OUR traces (mean misp/KI over the benchmark
    # set, 300K-branch calibration sweep — regenerate with
    # ``examples/calibrate_history.py``).  The paper's values for its Atom
    # traces are quoted in comments.
    "gshare_1m": 12,          # paper: 20
    "bimode": 17,             # paper: 20
    "yags_small": 14,         # paper: 23
    "yags_big": 15,           # paper: 25
    # (G0, G1, Meta); BIM is address-indexed in the unconstrained scheme.
    # Note G1's 21 bits on a 16-bit index: longer-than-log2(size) history
    # wins here exactly as the paper reports.
    "2bc_32k": (13, 21, 15),  # paper: (13, 23, 16)
    "2bc_64k": (13, 21, 15),  # paper: (17, 27, 20)
    "2bc_1m": (13, 21, 15),   # Fig 10's 4x1M configuration
    # Equal history = log2(table entries), the Fig 6 clamped configurations
    # (the paper's Section 8.2 "limited" lengths).
    "2bc_32k_limited": 15,
    "2bc_64k_limited": 16,
    "bimode_limited": 17,
    "yags_small_limited": 14,
    "yags_big_limited": 15,
    "gshare_1m_limited": 20,
}


def experiment_traces(num_branches: int | None = None,
                      benchmarks: tuple[str, ...] = SPEC95_BENCHMARKS,
                      ) -> dict[str, Trace]:
    """The benchmark traces used by every experiment (disk-cached)."""
    if num_branches is None:
        num_branches = default_trace_branches()
    return {name: spec95_trace(name, num_branches) for name in benchmarks}


def make_2bc_gskew(entries: int, g0_history: int, g1_history: int,
                   meta_history: int, bim_entries: int | None = None,
                   bim_history: int = 0,
                   bim_hysteresis: int | None = None,
                   g0_hysteresis: int | None = None,
                   meta_hysteresis: int | None = None,
                   index_scheme=None, update_policy: str = "partial",
                   name: str | None = None) -> TwoBcGskewPredictor:
    """Convenience constructor for the 2Bc-gskew configurations the
    experiments sweep over."""
    bim_entries = bim_entries if bim_entries is not None else entries
    return TwoBcGskewPredictor(
        bim=TableConfig(bim_entries, bim_history, bim_hysteresis),
        g0=TableConfig(entries, g0_history, g0_hysteresis),
        g1=TableConfig(entries, g1_history),
        meta=TableConfig(entries, meta_history, meta_hysteresis),
        index_scheme=index_scheme,
        update_policy=update_policy,
        name=name or f"2Bc-gskew-4x{entries // 1024}K",
    )


def make_fig5_configs(limited: bool = False):
    """The Fig 5 predictor set (Fig 6 when ``limited``: history clamped to
    log2 of the table size).

    Returns ``{config name: predictor factory}`` ordered as the paper lists
    them.  Sizes follow Section 8.2: 2Bc-gskew 256 Kbit and 512 Kbit,
    bi-mode 544 Kbit, gshare 2 Mbit, YAGS 288 Kbit and 576 Kbit.
    """
    best = BEST_HISTORY
    if limited:
        h32 = (best["2bc_32k_limited"],) * 3
        h64 = (best["2bc_64k_limited"],) * 3
        h_bimode = best["bimode_limited"]
        h_gshare = best["gshare_1m_limited"]
        h_yags_small = best["yags_small_limited"]
        h_yags_big = best["yags_big_limited"]
    else:
        h32 = best["2bc_32k"]
        h64 = best["2bc_64k"]
        h_bimode = best["bimode"]
        h_gshare = best["gshare_1m"]
        h_yags_small = best["yags_small"]
        h_yags_big = best["yags_big"]
    return {
        "2Bc-gskew-256Kb": lambda: make_2bc_gskew(
            32 * 1024, *h32, name="2Bc-gskew-256Kb"),
        "2Bc-gskew-512Kb": lambda: make_2bc_gskew(
            64 * 1024, *h64, name="2Bc-gskew-512Kb"),
        "bimode-544Kb": lambda: BiModePredictor(
            128 * 1024, 16 * 1024, h_bimode, name="bimode-544Kb"),
        "gshare-2Mb": lambda: GsharePredictor(
            1024 * 1024, h_gshare, name="gshare-2Mb"),
        "YAGS-288Kb": lambda: YagsPredictor(
            16 * 1024, 16 * 1024, h_yags_small, name="YAGS-288Kb"),
        "YAGS-576Kb": lambda: YagsPredictor(
            32 * 1024, 32 * 1024, h_yags_big, name="YAGS-576Kb"),
    }


def results_dir() -> Path:
    """Where experiment outputs are recorded (override with
    ``REPRO_RESULTS_DIR``)."""
    env = os.environ.get("REPRO_RESULTS_DIR")
    base = Path(env) if env else Path.cwd() / "results"
    base.mkdir(parents=True, exist_ok=True)
    return base


def record_results(experiment: str, payload: dict | ComparisonTable) -> Path:
    """Persist an experiment's results as JSON; returns the file path."""
    if isinstance(payload, ComparisonTable):
        payload = payload.to_dict()
    path = results_dir() / f"{experiment}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path
