"""Table 2: benchmark characteristics.

The paper's Table 2 reports, for 100M-instruction Atom traces of SPECINT95:
dynamic conditional branches (x1000) and static conditional branches.  We
report the same columns for the synthetic stand-in traces, plus the derived
branch density (branches per 1000 instructions) against the density implied
by the paper's numbers — the calibration target of
:mod:`repro.workloads.spec95`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import experiment_traces, record_results
from repro.traces.stats import TraceStatistics, compute_statistics
from repro.workloads.spec95 import (
    SPEC95_BENCHMARKS,
    TABLE2_DYNAMIC_PER_KI,
    TABLE2_STATIC_BRANCHES,
)

__all__ = ["Table2Result", "run", "render"]

PAPER_TABLE2 = {
    # benchmark: (dynamic conditional branches x1000, static branches)
    "compress": (12044, 46), "gcc": (16035, 12086), "go": (11285, 3710),
    "ijpeg": (8894, 904), "li": (16254, 251), "m88ksim": (9706, 409),
    "perl": (13263, 273), "vortex": (12757, 2239),
}
"""Table 2 of the paper, verbatim."""


@dataclass(frozen=True)
class Table2Result:
    """Per-benchmark measured statistics plus the paper's reference values."""

    statistics: dict[str, TraceStatistics]

    def rows(self) -> list[dict]:
        rows = []
        for name in SPEC95_BENCHMARKS:
            stats = self.statistics[name]
            paper_dynamic, paper_static = PAPER_TABLE2[name]
            rows.append({
                "benchmark": name,
                "dynamic_thousands": stats.dynamic_conditional_thousands,
                "static": stats.static_conditional,
                "branches_per_ki": stats.branches_per_kilo_instruction,
                "paper_dynamic_thousands": paper_dynamic,
                "paper_static": paper_static,
                "paper_branches_per_ki": TABLE2_DYNAMIC_PER_KI[name],
            })
        return rows


def run(num_branches: int | None = None) -> Table2Result:
    """Compute Table 2 statistics for the standard traces."""
    traces = experiment_traces(num_branches)
    result = Table2Result({name: compute_statistics(trace)
                           for name, trace in traces.items()})
    record_results("table2", {
        row["benchmark"]: {key: value for key, value in row.items()
                           if key != "benchmark"}
        for row in result.rows()
    })
    return result


def render(result: Table2Result) -> str:
    """Paper-style Table 2, ours beside the paper's."""
    lines = ["Table 2: benchmark characteristics "
             "(ours measured on synthetic traces | paper on 100M-instr Atom traces)",
             f"{'benchmark':<10}{'dyn(x1000)':>12}{'static':>8}"
             f"{'br/KI':>8}{'paper dyn':>11}{'paper stat':>11}{'paper br/KI':>12}"]
    lines.append("-" * len(lines[1]))
    for row in result.rows():
        lines.append(
            f"{row['benchmark']:<10}{row['dynamic_thousands']:>12.1f}"
            f"{row['static']:>8d}{row['branches_per_ki']:>8.1f}"
            f"{row['paper_dynamic_thousands']:>11d}"
            f"{row['paper_static']:>11d}"
            f"{row['paper_branches_per_ki']:>12.1f}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
