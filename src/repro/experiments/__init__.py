"""Experiment implementations: one module per paper table/figure.

Each module exposes ``run(num_branches=None)`` returning a result object and
``render(result)`` producing the paper-style textual table.  The benches in
``benchmarks/`` drive these and assert the qualitative shapes.
"""

from repro.experiments import (  # noqa: F401 (re-exported modules)
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    table2,
    table3,
)
from repro.experiments.common import (
    BEST_HISTORY,
    experiment_traces,
    make_2bc_gskew,
    make_fig5_configs,
    record_results,
    results_dir,
)
from repro.experiments.report import (
    render_delta_table,
    render_table,
    render_timing_table,
)

__all__ = [
    "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table2", "table3",
    "BEST_HISTORY", "experiment_traces", "make_2bc_gskew",
    "make_fig5_configs", "record_results", "results_dir",
    "render_delta_table", "render_table", "render_timing_table",
]
