"""Fig 8: adjusting table sizes — fitting 512 Kbit of accuracy into 352 Kbit.

Starting from the 4 x 64K-entry 2Bc-gskew (512 Kbit), Section 8.4 applies
the two budget reductions that produce the EV8 configuration:

* ``small BIM``  — BIM shrunk from 64K to 16K counters (Section 4.6: the
  bimodal table is used sparsely, one entry per static branch),
* ``EV8 size``   — additionally, half-size hysteresis tables for G0 and
  Meta (Section 4.4): 352 Kbit total.

All three use the EV8 information vector.  Paper findings to reproduce:
"Reducing the size of the BIM table has no impact at all on our benchmark
set. Except for go, the effect of using half size hysteresis tables ... is
barely noticeable" (go has the largest footprint, hence the most aliasing
sensitivity).
"""

from __future__ import annotations

from repro.experiments.common import (
    BEST_HISTORY,
    experiment_traces,
    make_2bc_gskew,
    record_results,
)
from repro.history.providers import ev8_info_provider
from repro.predictors.twobcgskew import SkewedIndexScheme
from repro.sim.compare import ComparisonTable, run_comparison
from repro.sim.engine import SimulationEngine

__all__ = ["run", "render"]


def run(num_branches: int | None = None,
        engine: str | SimulationEngine | None = None) -> ComparisonTable:
    """Run the three size configurations of Fig 8."""
    g0, g1, meta = BEST_HISTORY["2bc_64k"]
    traces = experiment_traces(num_branches)

    def scheme():
        return SkewedIndexScheme(use_path_addresses=True)

    configs = {
        "4x64K (512Kb)": lambda: make_2bc_gskew(
            64 * 1024, g0, g1, meta, index_scheme=scheme(),
            name="4x64K"),
        "small BIM (416Kb)": lambda: make_2bc_gskew(
            64 * 1024, g0, g1, meta, bim_entries=16 * 1024,
            index_scheme=scheme(), name="small-BIM"),
        "EV8 size (352Kb)": lambda: make_2bc_gskew(
            64 * 1024, g0, g1, meta, bim_entries=16 * 1024,
            g0_hysteresis=32 * 1024, meta_hysteresis=32 * 1024,
            index_scheme=scheme(), name="EV8-size"),
    }
    table = run_comparison(configs, traces,
                           provider_factory=ev8_info_provider,
                           engine=engine)
    record_results("fig8", table)
    return table


def render(table: ComparisonTable) -> str:
    return table.render(
        "Fig 8: adjusting table sizes in the predictor (EV8 info vector)")


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
