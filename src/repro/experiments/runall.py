"""Run every experiment and write a consolidated Markdown report.

``python -m repro.experiments.runall [--branches N] [--output FILE]``
regenerates the measured sections of EXPERIMENTS.md from scratch.  The
report interleaves, for every table and figure, the paper's qualitative
finding and the measured reproduction.
"""

from __future__ import annotations

import argparse
import os
import time
from contextlib import contextmanager
from pathlib import Path

from repro.experiments import (
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    table2,
    table3,
)
from repro.obs import NullTelemetry, Telemetry, render_summary, use_telemetry
from repro.sim.engine import ENGINE_ENV_VAR
from repro.sim.result_cache import CACHE_ENV_VAR
from repro.workloads.spec95 import default_trace_branches

__all__ = ["run_all", "main"]

_SECTIONS = (
    ("Table 2 — benchmark characteristics", table2,
     "The synthetic stand-ins preserve the published footprints and branch "
     "densities."),
    ("Table 3 — lghist/ghist ratio", table3,
     "One lghist bit summarises more than one branch on every benchmark."),
    ("Fig 5 — global-history schemes at EV8-class sizes", fig5,
     "2Bc-gskew and YAGS lead; gshare trails despite the largest budget."),
    ("Fig 6 — cost of log2(size) history", fig6,
     "Clamping the history to the table index width costs mispredictions "
     "for the long-history schemes."),
    ("Fig 7 — information vector", fig7,
     "Block-compressed lghist approaches full branch history; path bits "
     "help; three-blocks-old history costs little."),
    ("Fig 8 — table size reductions", fig8,
     "The small BIM is free; half-size hysteresis is barely noticeable: "
     "512 Kbit accuracy in 352 Kbit."),
    ("Fig 9 — wordline indices", fig9,
     "History bits in the shared unhashed index beat address-only "
     "selection; the constrained functions match complete hashing."),
    ("Fig 10 — limits of global history", fig10,
     "An 8 Mbit predictor returns little over 512 Kbit."),
)


@contextmanager
def _runtime_defaults(engine: str | None, use_cache: bool):
    """Default the engine and cache environment for the duration of a run.

    Experiment modules resolve ``engine=None`` and ``use_cache=None``
    through the environment, so setting these two variables routes every
    figure through the chosen engine and the persistent result cache.  An
    already-set variable always wins (the user's environment overrides our
    defaults), and any variable we set is removed afterwards.
    """
    ours: list[str] = []
    if engine is not None and ENGINE_ENV_VAR not in os.environ:
        os.environ[ENGINE_ENV_VAR] = engine
        ours.append(ENGINE_ENV_VAR)
    if use_cache and CACHE_ENV_VAR not in os.environ:
        os.environ[CACHE_ENV_VAR] = "1"
        ours.append(CACHE_ENV_VAR)
    try:
        yield
    finally:
        for name in ours:
            os.environ.pop(name, None)


def run_all(num_branches: int | None = None, engine: str | None = "batched",
            use_cache: bool = True,
            telemetry: NullTelemetry | None = None) -> str:
    """Run every experiment; return the consolidated Markdown report.

    By default every section runs on the batched engine with the
    persistent result cache enabled, so a repeated invocation skips all
    unchanged simulations; explicit ``REPRO_SIM_ENGINE`` /
    ``REPRO_RESULT_CACHE`` environment settings take precedence.

    A recording ``telemetry`` sink is installed as the process-global
    active sink for the duration (so every simulation, trace-cache and
    result-cache access records into it) and its summary table is appended
    to the report.

    Any sweep fabric resources the sections accumulate — shared-memory
    plane segments and the persistent worker pools — are released when the
    run finishes, even on failure, so a long-lived embedding process does
    not carry them between reports.
    """
    branches = num_branches or default_trace_branches()
    lines = [
        "# Measured reproduction report",
        "",
        f"Trace length: {branches} conditional branches per benchmark; "
        f"trace-driven simulation with immediate update; misp/KI "
        f"everywhere.",
        "",
    ]
    try:
        with _runtime_defaults(engine, use_cache), \
                use_telemetry(telemetry) as sink:
            for title, module, finding in _SECTIONS:
                started = time.time()
                with sink.span(module.__name__.rsplit(".", 1)[-1]):
                    result = module.run(num_branches)
                rendered = module.render(result)
                lines.append(f"## {title}")
                lines.append("")
                lines.append(f"*Paper finding:* {finding}")
                lines.append("")
                lines.append("```")
                lines.append(rendered)
                lines.append("```")
                lines.append(f"*({time.time() - started:.0f}s)*")
                lines.append("")
            if sink.enabled:
                lines.append("## Telemetry summary")
                lines.append("")
                lines.append("```")
                lines.append(render_summary(sink.snapshot()))
                lines.append("```")
                lines.append("")
    finally:
        from repro.sim.planes import release_attachments, release_plane_store
        from repro.sim.scheduler import shutdown_schedulers
        release_attachments()
        release_plane_store()
        shutdown_schedulers()
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - CLI
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--branches", type=int, default=None)
    parser.add_argument("--output", type=Path, default=None,
                        help="write the report to a file instead of stdout")
    parser.add_argument("--engine", default="batched",
                        help="simulation engine for every section "
                             "(default: batched)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache")
    parser.add_argument("--telemetry", type=Path, default=None,
                        metavar="FILE",
                        help="record telemetry and write it to FILE "
                             "(.csv for CSV, anything else for JSON)")
    args = parser.parse_args(argv)
    sink = Telemetry() if args.telemetry else None
    report = run_all(args.branches, engine=args.engine,
                     use_cache=not args.no_cache, telemetry=sink)
    if sink is not None:
        sink.write(args.telemetry)
        print(f"wrote telemetry to {args.telemetry}")
    if args.output:
        args.output.write_text(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
