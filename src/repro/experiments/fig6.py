"""Fig 6: the cost of clamping history length to log2(table size).

Most pre-EV8 studies assumed global history no longer than the table index.
Section 5.3 argues that for large predictors this is "far from optimal".
Fig 6 re-runs every Fig 5 configuration with history length = log2(table
entries) and reports the *additional* mispredictions versus the best history
length.

Paper finding to reproduce: the additional mispredictions are positive
(almost) everywhere — "predictors featuring a large number of entries need
very long history length, and log2(table size) history is suboptimal".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    experiment_traces,
    make_fig5_configs,
    record_results,
)
from repro.experiments.report import render_delta_table
from repro.history.providers import BranchGhistProvider
from repro.sim.compare import ComparisonTable, run_comparison
from repro.sim.engine import SimulationEngine

__all__ = ["Fig6Result", "run", "render"]


@dataclass(frozen=True)
class Fig6Result:
    best: ComparisonTable
    limited: ComparisonTable

    def additional(self, config: str, benchmark: str) -> float:
        """Additional misp/KI incurred by the clamped history."""
        return (self.limited.misp_per_ki(config, benchmark)
                - self.best.misp_per_ki(config, benchmark))

    def mean_additional(self, config: str) -> float:
        values = [self.additional(config, benchmark)
                  for benchmark in self.best.benchmark_names]
        return sum(values) / len(values)


def run(num_branches: int | None = None,
        engine: str | SimulationEngine | None = None) -> Fig6Result:
    """Run both the best-history and clamped-history grids."""
    traces = experiment_traces(num_branches)
    best = run_comparison(make_fig5_configs(limited=False), traces,
                          provider_factory=BranchGhistProvider,
                          engine=engine)
    limited = run_comparison(make_fig5_configs(limited=True), traces,
                             provider_factory=BranchGhistProvider,
                             engine=engine)
    result = Fig6Result(best=best, limited=limited)
    record_results("fig6", {
        "best": best.to_dict(), "limited": limited.to_dict(),
        "additional": {
            config: {benchmark: result.additional(config, benchmark)
                     for benchmark in best.benchmark_names}
            for config in best.config_names
        },
    })
    return result


def render(result: Fig6Result) -> str:
    base = {config: {benchmark: result.best.misp_per_ki(config, benchmark)
                     for benchmark in result.best.benchmark_names}
            for config in result.best.config_names}
    other = {config: {benchmark: result.limited.misp_per_ki(config, benchmark)
                      for benchmark in result.best.benchmark_names}
             for config in result.best.config_names}
    return render_delta_table(
        "Fig 6: additional mispredictions when using log2(table size) "
        "history length", result.best.benchmark_names, base, other)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
