"""Fig 7: impact of the information vector on prediction accuracy.

The predictor is held fixed (4 x 64K-entry 2Bc-gskew, unconstrained
indexing); the *information vector* varies (Section 8.3):

* ``ghist``           — conventional per-branch global history,
* ``lghist, no path`` — one bit per fetch block, outcome only,
* ``lghist + path``   — the outcome bit XORed with PC bit 4,
* ``3-old lghist``    — the same, three fetch blocks old,
* ``EV8 info vector`` — 3-old lghist + the addresses of the three most
  recent fetch blocks folded into the index.

Paper findings to reproduce: lghist performs on par with ghist; embedding
path information is generally beneficial; three-blocks-old history degrades
slightly; adding the three block addresses recovers most of the loss — the
EV8 vector lands approximately at the unconstrained ghist level.
"""

from __future__ import annotations

from repro.experiments.common import (
    BEST_HISTORY,
    experiment_traces,
    make_2bc_gskew,
    record_results,
)
from repro.history.providers import BlockLghistProvider, BranchGhistProvider
from repro.predictors.twobcgskew import SkewedIndexScheme
from repro.sim.compare import ComparisonTable, run_comparison
from repro.sim.engine import SimulationEngine

__all__ = ["CONFIG_ORDER", "run", "render"]

CONFIG_ORDER = ("ghist", "lghist, no path", "lghist + path", "3-old lghist",
                "EV8 info vector")


def _predictor_factory(use_path_addresses: bool = False, name: str = ""):
    g0, g1, meta = BEST_HISTORY["2bc_64k"]
    scheme = SkewedIndexScheme(use_path_addresses=use_path_addresses)
    return lambda: make_2bc_gskew(64 * 1024, g0, g1, meta,
                                  index_scheme=scheme, name=name)


def run(num_branches: int | None = None,
        engine: str | SimulationEngine | None = None) -> ComparisonTable:
    """Run the five information-vector variants."""
    traces = experiment_traces(num_branches)
    configs = {
        "ghist": _predictor_factory(name="ghist"),
        "lghist, no path": _predictor_factory(name="lghist-nopath"),
        "lghist + path": _predictor_factory(name="lghist-path"),
        "3-old lghist": _predictor_factory(name="lghist-3old"),
        "EV8 info vector": _predictor_factory(use_path_addresses=True,
                                              name="ev8-vector"),
    }
    providers = {
        "ghist": BranchGhistProvider,
        "lghist, no path": lambda: BlockLghistProvider(include_path=False),
        "lghist + path": lambda: BlockLghistProvider(include_path=True),
        "3-old lghist": lambda: BlockLghistProvider(include_path=True,
                                                    delay_blocks=3),
        "EV8 info vector": lambda: BlockLghistProvider(include_path=True,
                                                       delay_blocks=3),
    }
    table = run_comparison(configs, traces, provider_factories=providers,
                           engine=engine)
    record_results("fig7", table)
    return table


def render(table: ComparisonTable) -> str:
    return table.render(
        "Fig 7: impact of the information vector on branch prediction "
        "accuracy (4x64K 2Bc-gskew)")


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
