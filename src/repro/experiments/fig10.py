"""Fig 10: the limits of (brute-force) global history prediction.

The conclusion asks whether an even larger predictor would have been worth
it: Fig 10 simulates a 4 x 1M-entry 2Bc-gskew (8 Mbit — 23x the EV8 budget)
against the EV8-class predictors.

Paper finding to reproduce: "this brute force approach would have limited
return except for applications with a very large number of branches" — the
giant predictor only visibly helps the large-footprint benchmarks (gcc,
go), everything else is already capacity-saturated.
"""

from __future__ import annotations

from repro.experiments.common import (
    BEST_HISTORY,
    experiment_traces,
    make_2bc_gskew,
    record_results,
)
from repro.ev8.predictor import EV8BranchPredictor
from repro.history.providers import BranchGhistProvider, ev8_info_provider
from repro.sim.compare import ComparisonTable, run_comparison
from repro.sim.engine import SimulationEngine

__all__ = ["run", "render"]


def run(num_branches: int | None = None,
        engine: str | SimulationEngine | None = None) -> ComparisonTable:
    """Run the EV8, the 512 Kbit reference, and the 8 Mbit giant."""
    traces = experiment_traces(num_branches)
    g0_64, g1_64, meta_64 = BEST_HISTORY["2bc_64k"]
    g0_1m, g1_1m, meta_1m = BEST_HISTORY["2bc_1m"]
    configs = {
        "EV8 (352Kb)": lambda: EV8BranchPredictor(name="ev8"),
        "2Bc-gskew 4x64K (512Kb)": lambda: make_2bc_gskew(
            64 * 1024, g0_64, g1_64, meta_64, name="4x64K"),
        "2Bc-gskew 4x1M (8Mb)": lambda: make_2bc_gskew(
            1024 * 1024, g0_1m, g1_1m, meta_1m, name="4x1M"),
    }
    providers = {
        "EV8 (352Kb)": ev8_info_provider,
        "2Bc-gskew 4x64K (512Kb)": BranchGhistProvider,
        "2Bc-gskew 4x1M (8Mb)": BranchGhistProvider,
    }
    table = run_comparison(configs, traces, provider_factories=providers,
                           engine=engine)
    record_results("fig10", table)
    return table


def render(table: ComparisonTable) -> str:
    return table.render("Fig 10: limits of using global history")


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
