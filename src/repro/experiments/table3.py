"""Table 3: the lghist/ghist compression ratio.

One lghist bit is inserted per fetch block containing a conditional branch
(Section 5.1), so one lghist bit represents on average
``dynamic branches / inserted bits`` branches — more than 1 wherever
not-taken branches share fetch blocks.  The paper's Table 3 reports ratios
between 1.12 (go) and 1.59 (vortex); Section 8.3 uses them to argue that the
information lost by compression is balanced by each lghist bit covering more
branches ("for vortex the 23 lghist bits represent on average 36 branches").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import experiment_traces, record_results
from repro.traces.stats import compute_statistics
from repro.workloads.spec95 import SPEC95_BENCHMARKS

__all__ = ["Table3Result", "PAPER_TABLE3", "run", "render"]

PAPER_TABLE3 = {
    "compress": 1.24, "gcc": 1.57, "go": 1.12, "ijpeg": 1.20,
    "li": 1.55, "m88ksim": 1.53, "perl": 1.32, "vortex": 1.59,
}
"""Table 3 of the paper, verbatim."""


@dataclass(frozen=True)
class Table3Result:
    ratios: dict[str, float]

    def mean(self) -> float:
        return sum(self.ratios.values()) / len(self.ratios)


def run(num_branches: int | None = None) -> Table3Result:
    """Measure the lghist/ghist ratio on the standard traces."""
    traces = experiment_traces(num_branches)
    ratios = {name: compute_statistics(trace).lghist_to_ghist_ratio
              for name, trace in traces.items()}
    record_results("table3", {"measured": ratios, "paper": PAPER_TABLE3})
    return Table3Result(ratios)


def render(result: Table3Result) -> str:
    lines = ["Table 3: ratio lghist/ghist (branches represented per lghist bit)",
             f"{'benchmark':<10}{'ours':>8}{'paper':>8}"]
    lines.append("-" * len(lines[1]))
    for name in SPEC95_BENCHMARKS:
        lines.append(f"{name:<10}{result.ratios[name]:>8.2f}"
                     f"{PAPER_TABLE3[name]:>8.2f}")
    lines.append("-" * len(lines[1]))
    paper_mean = sum(PAPER_TABLE3.values()) / len(PAPER_TABLE3)
    lines.append(f"{'amean':<10}{result.mean():>8.2f}{paper_mean:>8.2f}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
