"""Fig 5: prediction accuracy of global-history schemes at EV8-class sizes.

Configurations (Section 8.2), each at its best history length:

* 2Bc-gskew, 4 x 32K entries (256 Kbit) and 4 x 64K entries (512 Kbit),
* bi-mode, 2 x 128K direction tables + 16K choice (544 Kbit),
* gshare, 1M entries (2 Mbit),
* YAGS, 288 Kbit and 576 Kbit.

All predictors see conventional per-branch global history (the Fig 5
methodology); misp/KI per benchmark.

Paper findings to reproduce: "at equivalent memorization budget 2Bc-gskew
outperforms the other global history branch predictors except YAGS. There
is no clear winner between the YAGS predictor and 2Bc-gskew."
"""

from __future__ import annotations

from repro.experiments.common import (
    experiment_traces,
    make_fig5_configs,
    record_results,
)
from repro.history.providers import BranchGhistProvider
from repro.sim.compare import ComparisonTable, run_comparison
from repro.sim.engine import SimulationEngine

__all__ = ["run", "render"]


def run(num_branches: int | None = None,
        engine: str | SimulationEngine | None = None) -> ComparisonTable:
    """Run the Fig 5 comparison grid."""
    traces = experiment_traces(num_branches)
    table = run_comparison(make_fig5_configs(), traces,
                           provider_factory=BranchGhistProvider,
                           engine=engine)
    record_results("fig5", table)
    return table


def render(table: ComparisonTable) -> str:
    return table.render(
        "Fig 5: branch prediction accuracy for various global history "
        "schemes (misp/KI, best history lengths)")


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
