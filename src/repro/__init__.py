"""repro — a reproduction of "Design Tradeoffs for the Alpha EV8 Conditional
Branch Predictor" (Seznec, Felix, Krishnan & Sazeides, ISCA 2002).

Public API layers:

* :mod:`repro.predictors` — the predictor library (bimodal, gshare, GAs,
  e-gskew, 2Bc-gskew, bi-mode, YAGS, agree, local, tournament, perceptron);
* :mod:`repro.ev8` — the integrated Alpha EV8 predictor: Table 1
  configuration, conflict-free banking, constrained index functions,
  front-end model;
* :mod:`repro.traces` / :mod:`repro.workloads` — trace model, fetch blocks,
  synthetic SPECINT95 stand-in workloads;
* :mod:`repro.history` — ghist/lghist/path registers and information-vector
  providers;
* :mod:`repro.sim` — trace-driven simulation, metrics, comparisons, sweeps;
* :mod:`repro.obs` — opt-in telemetry (per-bank traffic counters,
  histograms, wall-clock spans) threaded through the simulation stack;
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro import EV8BranchPredictor, simulate, spec95_trace
    predictor = EV8BranchPredictor()
    trace = spec95_trace("gcc", 100_000)
    result = simulate(predictor, trace, EV8BranchPredictor.make_provider())
    print(result)
"""

from repro.ev8 import EV8_CONFIG, EV8BranchPredictor, EV8Config
from repro.obs import NullTelemetry, Telemetry, use_telemetry
from repro.history import (
    BlockLghistProvider,
    BranchGhistProvider,
    InfoVector,
    ev8_info_provider,
)
from repro.predictors import (
    AgreePredictor,
    BiModePredictor,
    BimodalPredictor,
    EGskewPredictor,
    GAsPredictor,
    GsharePredictor,
    LocalPredictor,
    PerceptronPredictor,
    Predictor,
    TableConfig,
    TournamentPredictor,
    TwoBcGskewPredictor,
    YagsPredictor,
)
from repro.sim import SimulationResult, simulate
from repro.traces import Trace, TraceBuilder, build_fetch_blocks
from repro.workloads import (
    SPEC95_BENCHMARKS,
    WorkloadProfile,
    generate_trace,
    spec95_trace,
    spec95_traces,
)

__version__ = "1.0.0"

__all__ = [
    "EV8_CONFIG", "EV8BranchPredictor", "EV8Config",
    "BlockLghistProvider", "BranchGhistProvider", "InfoVector",
    "ev8_info_provider",
    "AgreePredictor", "BiModePredictor", "BimodalPredictor",
    "EGskewPredictor", "GAsPredictor", "GsharePredictor", "LocalPredictor",
    "PerceptronPredictor", "Predictor", "TableConfig",
    "TournamentPredictor", "TwoBcGskewPredictor", "YagsPredictor",
    "NullTelemetry", "Telemetry", "use_telemetry",
    "SimulationResult", "simulate",
    "Trace", "TraceBuilder", "build_fetch_blocks",
    "SPEC95_BENCHMARKS", "WorkloadProfile", "generate_trace",
    "spec95_trace", "spec95_traces",
    "__version__",
]
