"""Information-vector providers: what the predictor is indexed with.

Fig 7 of the paper compares five information vectors on the same 4x64K
2Bc-gskew predictor:

* ``ghist`` — conventional per-branch global history,
* ``lghist, no path`` — block-compressed history without the path bit,
* ``lghist + path`` — block-compressed history with the path bit,
* ``3-old lghist`` — the same, three fetch blocks old,
* ``EV8 info vector`` — 3-old lghist + the addresses of the three most
  recent fetch blocks.

A provider walks the fetch-block stream and hands the simulation driver one
:class:`InfoVector` per conditional branch; swapping providers (with the
predictor held fixed) reproduces the Fig 7 axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from weakref import WeakKeyDictionary

import numpy as np

from repro.history.lghist import LghistRegister
from repro.history.registers import GlobalHistoryRegister, PathRegister
from repro.obs import get_telemetry
from repro.traces.fetch import FETCH_BLOCK_BYTES, FetchBlock, fetch_blocks_for
from repro.traces.model import INSTRUCTION_BYTES, TerminatorKind, Trace

__all__ = ["InfoVector", "VectorBatch", "HistoryProvider",
           "BranchGhistProvider", "BlockLghistProvider", "ev8_info_provider",
           "seed_plane_cache"]


class InfoVector:
    """Everything a predictor may be indexed with for one prediction.

    Attributes
    ----------
    history:
        Global history bits (bit 0 youngest); each predictor table masks or
        folds the length it uses.
    address:
        The fetch-block address (block-granular providers) or the branch PC
        (per-branch providers) — the paper's ``A``.
    branch_pc:
        The predicted branch's own PC (supplies the in-block offset bits
        4..2 used by the unshuffle stage).
    path:
        Addresses of the most recent previous fetch blocks, youngest first —
        the paper's (Z, Y, X).
    bank:
        The fetch block's predictor bank number, computed by the front end
        a cycle ahead of the table read (Section 6.2, Fig 3).  Zero for
        providers that do not model banking.
    """

    __slots__ = ("history", "address", "branch_pc", "path", "bank")

    def __init__(self, history: int, address: int, branch_pc: int,
                 path: tuple[int, ...], bank: int = 0) -> None:
        self.history = history
        self.address = address
        self.branch_pc = branch_pc
        self.path = path
        self.bank = bank

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"InfoVector(history={self.history:#x}, "
                f"address={self.address:#x}, branch_pc={self.branch_pc:#x}, "
                f"path={tuple(hex(p) for p in self.path)})")


@dataclass(frozen=True)
class VectorBatch:
    """A whole trace's information vectors as parallel numpy arrays.

    The columnar counterpart of a stream of :class:`InfoVector` objects, in
    branch-prediction order: row ``i`` holds exactly the fields the scalar
    driver would have passed to ``predictor.access`` for the ``i``-th
    conditional branch, plus that branch's architectural outcome.  Produced
    trace-side by :meth:`HistoryProvider.materialize` — global history is a
    pure function of earlier trace outcomes, so its apparent sequential
    dependence is resolved here, once, instead of inside the predictor loop.

    ``path`` is shaped ``(path_depth, n)`` with row 0 the youngest previous
    fetch-block address (the paper's Z, then Y, X ...).  ``bank`` is the
    front-end bank-number column (``None`` for providers that do not model
    banking, mirroring :class:`InfoVector`'s zero default).
    """

    history: np.ndarray
    address: np.ndarray
    branch_pc: np.ndarray
    path: np.ndarray
    takens: np.ndarray
    bank: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.branch_pc)

    @property
    def path_depth(self) -> int:
        return self.path.shape[0]


class HistoryProvider:
    """Base class: produces per-branch info vectors over a fetch-block
    stream.

    The driver calls :meth:`begin_block` (returning one vector per
    conditional branch in the block, in fetch order) and then
    :meth:`end_block` after the block's outcomes are architecturally known.
    """

    def begin_block(self, block: FetchBlock) -> list[InfoVector]:
        raise NotImplementedError

    def end_block(self, block: FetchBlock) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError

    def materialize(self, trace: Trace) -> VectorBatch | None:
        """Bulk-produce the whole trace's vectors as a :class:`VectorBatch`.

        Returns ``None`` when this provider cannot materialize (the batched
        engine then falls back to the scalar path).  Materialization starts
        from reset register state, matching a fresh provider instance.
        """
        return None

    def plane_key(self) -> tuple | None:
        """Hashable configuration key for the shared-memory plane fabric
        (:mod:`repro.sim.planes`).

        A materialized batch is a pure function of (trace, this key), so
        batches published under the same key may be shared across processes
        and adopted into the module-level materialization caches via
        :func:`seed_plane_cache`.  ``None`` means this provider's batches
        cannot be keyed (e.g. it cannot materialize at all), and the fabric
        simply skips batch planes for it.
        """
        return None


def _branch_block_geometry_slow(trace: Trace):
    """Per-branch (pcs, outcomes, fetch-block ordinal) plus all fetch-block
    start addresses, extracted by walking the fetch-block objects."""
    branch_pcs: list[int] = []
    outcomes: list[bool] = []
    block_ordinal: list[int] = []
    blocks = fetch_blocks_for(trace)
    for ordinal, block in enumerate(blocks):
        branch_pcs.extend(block.branch_pcs)
        outcomes.extend(block.branch_outcomes)
        block_ordinal.extend([ordinal] * len(block.branch_pcs))
    return (np.array(branch_pcs, dtype=np.uint64),
            np.array(outcomes, dtype=np.bool_),
            np.array(block_ordinal, dtype=np.int64),
            np.array([block.start for block in blocks], dtype=np.uint64))


def _branch_block_geometry(trace: Trace):
    """Vectorized :func:`_branch_block_geometry_slow`.

    Relies on the invariant fetch-block construction itself documents: the
    basic-block stream is contiguous in the address space except across
    taken control transfers.  Then the address stream decomposes into
    contiguous *segments* delimited by taken terminators (and end of trace),
    and every fetch block within a segment is an aligned
    ``FETCH_BLOCK_BYTES`` chunk — so block counts, block start addresses and
    each branch's block ordinal are pure chunk arithmetic.  Returns ``None``
    if the invariant does not hold for this trace (the caller then walks the
    fetch blocks instead).
    """
    if len(trace) == 0:
        return (np.empty(0, np.uint64), np.empty(0, np.bool_),
                np.empty(0, np.int64), np.empty(0, np.uint64))
    starts = trace.starts
    ends = starts + trace.num_instructions.astype(np.uint64) \
        * np.uint64(INSTRUCTION_BYTES)
    conditional = trace.kinds == int(TerminatorKind.CONDITIONAL)
    fallthrough = trace.kinds == int(TerminatorKind.FALLTHROUGH)
    terminator_taken = np.where(conditional, trace.takens, ~fallthrough)
    if bool(np.any(~terminator_taken[:-1] & (starts[1:] != ends[:-1]))):
        return None  # discontiguous not-taken boundary: invariant broken

    # Segment = maximal run of records ending at a taken terminator (or the
    # end of the trace).
    seg_last = terminator_taken.copy()
    seg_last[-1] = True
    seg_first = np.empty_like(seg_last)
    seg_first[0] = True
    seg_first[1:] = seg_last[:-1]
    segment_of_record = np.cumsum(seg_first) - 1
    seg_start = starts[seg_first]
    seg_end = ends[seg_last]

    # Chunk arithmetic: fetch blocks of a segment are its aligned chunks.
    chunk_shift = np.uint64(FETCH_BLOCK_BYTES.bit_length() - 1)
    first_chunk = seg_start >> chunk_shift
    last_chunk = (seg_end - np.uint64(1)) >> chunk_shift
    blocks_per_segment = (last_chunk - first_chunk + np.uint64(1)).astype(np.int64)
    block_base = np.zeros(len(blocks_per_segment), dtype=np.int64)
    np.cumsum(blocks_per_segment[:-1], out=block_base[1:])

    total_blocks = int(block_base[-1] + blocks_per_segment[-1])
    segment_of_block = np.repeat(np.arange(len(block_base)), blocks_per_segment)
    chunk_in_segment = np.arange(total_blocks) - block_base[segment_of_block]
    block_starts = (first_chunk[segment_of_block]
                    + chunk_in_segment.astype(np.uint64)) << chunk_shift
    np.copyto(block_starts, seg_start[segment_of_block],
              where=chunk_in_segment == 0)

    # One branch per conditional record: the terminator instruction.
    pcs = ends[conditional] - np.uint64(INSTRUCTION_BYTES)
    takens = trace.takens[conditional].copy()
    branch_segment = segment_of_record[conditional]
    ordinals = (block_base[branch_segment]
                + (pcs >> chunk_shift).astype(np.int64)
                - first_chunk[branch_segment].astype(np.int64))
    return pcs, takens, ordinals, block_starts


_GHIST_BATCH_CACHE: WeakKeyDictionary = WeakKeyDictionary()
"""Materialized ghist batches per trace, keyed by (capacity, path_depth).

Materialization is a pure function of the trace and those two parameters,
so sweeps (many predictors, one trace) pay the block walk once; the cached
columns are marked read-only because every consumer shares them.
"""


class BranchGhistProvider(HistoryProvider):
    """Conventional global history: one bit per branch, visible immediately
    (even between branches of the same fetch block).

    This is the "ghist" information vector — the idealised baseline the
    paper's Section 8.3 starts from.  The vector's ``address`` is the branch
    PC itself, as per-branch predictors are indexed.
    """

    def __init__(self, capacity: int = 64, path_depth: int = 3) -> None:
        self._history = GlobalHistoryRegister(capacity)
        self._path = PathRegister(path_depth)

    def begin_block(self, block: FetchBlock) -> list[InfoVector]:
        vectors = []
        path = self._path.as_tuple()
        for pc, outcome in zip(block.branch_pcs, block.branch_outcomes):
            vectors.append(InfoVector(self._history.value(), pc, pc, path))
            self._history.push(outcome)
        return vectors

    def end_block(self, block: FetchBlock) -> None:
        self._path.push(block.start)

    def reset(self) -> None:
        self._history.reset()
        self._path.reset()

    def plane_key(self) -> tuple | None:
        if self._history.capacity > 64:
            return None  # cannot materialize, so nothing to share
        return ("ghist", self._history.capacity, self._path.depth)

    def materialize(self, trace: Trace) -> VectorBatch | None:
        """Whole-trace ghist vectors, bit-identical to the scalar walk.

        Per-branch global history is the packed window of the previous
        outcomes (bit 0 youngest), built with one vectorized OR-shift pass
        per capacity bit; the path columns are previous fetch-block start
        addresses gathered from the block stream.
        """
        capacity = self._history.capacity
        if capacity > 64:
            return None  # histories no longer fit a uint64 column
        key = (capacity, self._path.depth)
        cached = _GHIST_BATCH_CACHE.setdefault(trace, {}).get(key)
        if cached is not None:
            return cached
        _count_materialize_computed()
        geometry = _branch_block_geometry(trace)
        if geometry is None:
            # Discontiguous not-taken record boundary: fall back to the
            # fetch-block walk, which defines the semantics in that case.
            pcs, takens, ordinals, starts = _branch_block_geometry_slow(trace)
        else:
            pcs, takens, ordinals, starts = geometry
        n = len(pcs)

        history = np.zeros(n, dtype=np.uint64)
        outcome_bits = takens.astype(np.uint64)
        for age in range(1, min(capacity, n) + 1):
            history[age:] |= outcome_bits[:-age] << np.uint64(age - 1)

        path = np.zeros((self._path.depth, n), dtype=np.uint64)
        for age in range(self._path.depth):
            source = ordinals - 1 - age
            valid = source >= 0
            path[age, valid] = starts[source[valid]]

        batch = VectorBatch(history=history, address=pcs, branch_pc=pcs,
                            path=path, takens=takens)
        for column in (history, pcs, path, takens):
            column.setflags(write=False)  # cached batches are shared
        _GHIST_BATCH_CACHE[trace][key] = batch
        return batch


class BlockLghistProvider(HistoryProvider):
    """Block-compressed lghist, optionally aged and with path information.

    All branches of a block share one vector value (they are predicted in
    the same access): history = the lghist register (aged by
    ``delay_blocks``), address = the fetch-block address, path = previous
    block addresses.
    """

    def __init__(self, include_path: bool = True, delay_blocks: int = 0,
                 capacity: int = 64, path_depth: int = 3) -> None:
        # Imported here to avoid a circular import (ev8 builds on history).
        from repro.ev8.banks import BankNumberGenerator
        self._lghist = LghistRegister(include_path=include_path,
                                      delay_blocks=delay_blocks,
                                      capacity=capacity)
        self._path = PathRegister(path_depth)
        self._banks = BankNumberGenerator()
        self._block_bank: int | None = None

    def begin_block(self, block: FetchBlock) -> list[InfoVector]:
        history = self._lghist.value()
        address = block.start
        path = self._path.as_tuple()
        bank = self._bank_for(block)
        return [InfoVector(history, address, pc, path, bank)
                for pc in block.branch_pcs]

    def _bank_for(self, block: FetchBlock) -> int:
        # Idempotent per block: the bank pipeline must advance exactly once
        # per fetch block, whether or not begin_block was consulted.
        if self._block_bank is None:
            self._block_bank = self._banks.next_bank(block.start)
        return self._block_bank

    def end_block(self, block: FetchBlock) -> None:
        self._bank_for(block)
        self._block_bank = None
        self._lghist.push_block(block)
        self._path.push(block.start)

    def reset(self) -> None:
        self._lghist.reset()
        self._path.reset()
        self._banks.reset()
        self._block_bank = None

    def plane_key(self) -> tuple | None:
        register = self._lghist
        if register.capacity > 64:
            return None  # cannot materialize, so nothing to share
        return ("lghist", register.include_path, register.delay_blocks,
                register.capacity, self._path.depth)

    def materialize(self, trace: Trace) -> VectorBatch | None:
        """Whole-trace lghist vectors, bit-identical to the scalar walk.

        The register semantics vectorize cleanly because lghist is a pure
        function of *which blocks inserted a bit* and *when those bits age
        in*: only the last conditional branch of a block inserts (outcome
        XOR PC bit 4 when ``include_path``), and the bit inserted by block
        ``j`` is visible when predicting block ``b`` iff
        ``j < b - delay_blocks`` (it must have left the ``delay_blocks``-deep
        pending pipeline before block ``b``'s read).  So: pack the insert-bit
        sequence into running uint64 windows with one OR-shift pass per
        capacity bit, and gather each block's window by *counting* (via
        ``searchsorted``) how many inserting blocks precede its visibility
        horizon.  Path columns and the front-end bank stream are per-block
        gathers, shared by every branch of the block.
        """
        register = self._lghist
        if register.capacity > 64:
            return None  # histories no longer fit a uint64 column
        key = (register.include_path, register.delay_blocks,
               register.capacity, self._path.depth)
        cached = _LGHIST_BATCH_CACHE.setdefault(trace, {}).get(key)
        if cached is not None:
            return cached
        _count_materialize_computed()
        geometry = _branch_block_geometry(trace)
        if geometry is None:
            pcs, takens, ordinals, starts = _branch_block_geometry_slow(trace)
        else:
            pcs, takens, ordinals, starts = geometry
        n = len(pcs)
        num_blocks = len(starts)

        # Insert-bit sequence: one bit per block that ends >= 1 conditional
        # branch, from that block's *last* branch.
        is_last = np.empty(n, dtype=np.bool_)
        if n:
            is_last[-1] = True
            is_last[:-1] = ordinals[1:] != ordinals[:-1]
        bit_blocks = ordinals[is_last]
        bits = takens[is_last].astype(np.uint64)
        if register.include_path:
            from repro.history.lghist import PATH_BIT_POSITION
            bits ^= (pcs[is_last] >> np.uint64(PATH_BIT_POSITION)) \
                & np.uint64(1)

        # windows[k] = packed history after the first k+1 inserted bits
        # (bit 0 youngest) — the OR-shift pass from the ghist materializer.
        num_bits = len(bits)
        windows = np.zeros(num_bits, dtype=np.uint64)
        for age in range(min(register.capacity, num_bits)):
            windows[age:] |= bits[:num_bits - age] << np.uint64(age)

        # Visible history per block: the window after the last bit whose
        # block has aged past the visibility horizon.
        visible_counts = np.searchsorted(
            bit_blocks, np.arange(num_blocks) - register.delay_blocks,
            side="left")
        block_history = np.zeros(num_blocks, dtype=np.uint64)
        has_bits = visible_counts > 0
        block_history[has_bits] = windows[visible_counts[has_bits] - 1]

        block_path = np.zeros((self._path.depth, num_blocks), dtype=np.uint64)
        for age in range(self._path.depth):
            block_path[age, age + 1:] = starts[:num_blocks - age - 1]
        from repro.ev8.banks import bank_numbers_vec
        block_bank = bank_numbers_vec(starts).astype(np.uint64)

        history = block_history[ordinals]
        address = starts[ordinals]
        path = block_path[:, ordinals]
        bank = block_bank[ordinals]
        batch = VectorBatch(history=history, address=address, branch_pc=pcs,
                            path=path, takens=takens, bank=bank)
        for column in (history, address, pcs, path, takens, bank):
            column.setflags(write=False)  # cached batches are shared
        _LGHIST_BATCH_CACHE[trace][key] = batch
        return batch


_LGHIST_BATCH_CACHE: WeakKeyDictionary = WeakKeyDictionary()
"""Materialized lghist batches per trace, keyed by (include_path,
delay_blocks, capacity, path_depth) — the full provider configuration."""


def _count_materialize_computed() -> None:
    """Record one *actual* materialization compute into the process-global
    telemetry sink (cache hits and fabric adoptions never reach here).

    The counter is fabric/orchestration accounting rather than simulation
    semantics, so it deliberately bypasses the engine's per-run sink: the
    sweep layer's serial == parallel merged-counter invariant covers the
    simulation namespaces, while ``provider.materialize_computed`` depends
    on which process did the work — tests wrap sweeps in
    :func:`repro.obs.use_telemetry` to observe it.
    """
    sink = get_telemetry(None)
    if sink.enabled:
        sink.count("provider.materialize_computed")


def seed_plane_cache(plane_key: tuple, trace: Trace, batch: VectorBatch) -> bool:
    """Adopt an externally materialized batch into the module-level cache.

    ``plane_key`` must be a key produced by
    :meth:`HistoryProvider.plane_key`; ``batch`` must hold the columns that
    materializing ``trace`` under that configuration would produce (the
    plane fabric guarantees this by construction: batches are published
    under the key of the provider that materialized them, and manifests
    carry content digests).  Returns ``True`` if the batch was adopted,
    ``False`` if the key is unknown or the cache already holds an entry
    (an existing entry always wins — it was materialized locally and is
    bit-identical by the same purity argument).
    """
    if not plane_key:
        return False
    if plane_key[0] == "ghist":
        cache = _GHIST_BATCH_CACHE
    elif plane_key[0] == "lghist":
        cache = _LGHIST_BATCH_CACHE
    else:
        return False
    per_trace = cache.setdefault(trace, {})
    key = tuple(plane_key[1:])
    if key in per_trace:
        return False
    per_trace[key] = batch
    return True


def ev8_info_provider(capacity: int = 64) -> BlockLghistProvider:
    """The EV8 information vector: three-fetch-blocks-old lghist including
    path bits, plus the addresses of the three most recent fetch blocks
    (Sections 5.1-5.2)."""
    return BlockLghistProvider(include_path=True, delay_blocks=3,
                               capacity=capacity, path_depth=3)
