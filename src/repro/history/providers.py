"""Information-vector providers: what the predictor is indexed with.

Fig 7 of the paper compares five information vectors on the same 4x64K
2Bc-gskew predictor:

* ``ghist`` — conventional per-branch global history,
* ``lghist, no path`` — block-compressed history without the path bit,
* ``lghist + path`` — block-compressed history with the path bit,
* ``3-old lghist`` — the same, three fetch blocks old,
* ``EV8 info vector`` — 3-old lghist + the addresses of the three most
  recent fetch blocks.

A provider walks the fetch-block stream and hands the simulation driver one
:class:`InfoVector` per conditional branch; swapping providers (with the
predictor held fixed) reproduces the Fig 7 axis.
"""

from __future__ import annotations

from repro.history.lghist import LghistRegister
from repro.history.registers import GlobalHistoryRegister, PathRegister
from repro.traces.fetch import FetchBlock

__all__ = ["InfoVector", "HistoryProvider", "BranchGhistProvider",
           "BlockLghistProvider", "ev8_info_provider"]


class InfoVector:
    """Everything a predictor may be indexed with for one prediction.

    Attributes
    ----------
    history:
        Global history bits (bit 0 youngest); each predictor table masks or
        folds the length it uses.
    address:
        The fetch-block address (block-granular providers) or the branch PC
        (per-branch providers) — the paper's ``A``.
    branch_pc:
        The predicted branch's own PC (supplies the in-block offset bits
        4..2 used by the unshuffle stage).
    path:
        Addresses of the most recent previous fetch blocks, youngest first —
        the paper's (Z, Y, X).
    bank:
        The fetch block's predictor bank number, computed by the front end
        a cycle ahead of the table read (Section 6.2, Fig 3).  Zero for
        providers that do not model banking.
    """

    __slots__ = ("history", "address", "branch_pc", "path", "bank")

    def __init__(self, history: int, address: int, branch_pc: int,
                 path: tuple[int, ...], bank: int = 0) -> None:
        self.history = history
        self.address = address
        self.branch_pc = branch_pc
        self.path = path
        self.bank = bank

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"InfoVector(history={self.history:#x}, "
                f"address={self.address:#x}, branch_pc={self.branch_pc:#x}, "
                f"path={tuple(hex(p) for p in self.path)})")


class HistoryProvider:
    """Base class: produces per-branch info vectors over a fetch-block
    stream.

    The driver calls :meth:`begin_block` (returning one vector per
    conditional branch in the block, in fetch order) and then
    :meth:`end_block` after the block's outcomes are architecturally known.
    """

    def begin_block(self, block: FetchBlock) -> list[InfoVector]:
        raise NotImplementedError

    def end_block(self, block: FetchBlock) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class BranchGhistProvider(HistoryProvider):
    """Conventional global history: one bit per branch, visible immediately
    (even between branches of the same fetch block).

    This is the "ghist" information vector — the idealised baseline the
    paper's Section 8.3 starts from.  The vector's ``address`` is the branch
    PC itself, as per-branch predictors are indexed.
    """

    def __init__(self, capacity: int = 64, path_depth: int = 3) -> None:
        self._history = GlobalHistoryRegister(capacity)
        self._path = PathRegister(path_depth)

    def begin_block(self, block: FetchBlock) -> list[InfoVector]:
        vectors = []
        path = self._path.as_tuple()
        for pc, outcome in zip(block.branch_pcs, block.branch_outcomes):
            vectors.append(InfoVector(self._history.value(), pc, pc, path))
            self._history.push(outcome)
        return vectors

    def end_block(self, block: FetchBlock) -> None:
        self._path.push(block.start)

    def reset(self) -> None:
        self._history.reset()
        self._path.reset()


class BlockLghistProvider(HistoryProvider):
    """Block-compressed lghist, optionally aged and with path information.

    All branches of a block share one vector value (they are predicted in
    the same access): history = the lghist register (aged by
    ``delay_blocks``), address = the fetch-block address, path = previous
    block addresses.
    """

    def __init__(self, include_path: bool = True, delay_blocks: int = 0,
                 capacity: int = 64, path_depth: int = 3) -> None:
        # Imported here to avoid a circular import (ev8 builds on history).
        from repro.ev8.banks import BankNumberGenerator
        self._lghist = LghistRegister(include_path=include_path,
                                      delay_blocks=delay_blocks,
                                      capacity=capacity)
        self._path = PathRegister(path_depth)
        self._banks = BankNumberGenerator()
        self._block_bank: int | None = None

    def begin_block(self, block: FetchBlock) -> list[InfoVector]:
        history = self._lghist.value()
        address = block.start
        path = self._path.as_tuple()
        bank = self._bank_for(block)
        return [InfoVector(history, address, pc, path, bank)
                for pc in block.branch_pcs]

    def _bank_for(self, block: FetchBlock) -> int:
        # Idempotent per block: the bank pipeline must advance exactly once
        # per fetch block, whether or not begin_block was consulted.
        if self._block_bank is None:
            self._block_bank = self._banks.next_bank(block.start)
        return self._block_bank

    def end_block(self, block: FetchBlock) -> None:
        self._bank_for(block)
        self._block_bank = None
        self._lghist.push_block(block)
        self._path.push(block.start)

    def reset(self) -> None:
        self._lghist.reset()
        self._path.reset()
        self._banks.reset()
        self._block_bank = None


def ev8_info_provider(capacity: int = 64) -> BlockLghistProvider:
    """The EV8 information vector: three-fetch-blocks-old lghist including
    path bits, plus the addresses of the three most recent fetch blocks
    (Sections 5.1-5.2)."""
    return BlockLghistProvider(include_path=True, delay_blocks=3,
                               capacity=capacity, path_depth=3)
