"""History machinery: global/path/local registers, lghist, info-vector
providers."""

from repro.history.lghist import LghistRegister, lghist_bit
from repro.history.providers import (
    BlockLghistProvider,
    BranchGhistProvider,
    HistoryProvider,
    InfoVector,
    ev8_info_provider,
)
from repro.history.registers import (
    GlobalHistoryRegister,
    LocalHistoryTable,
    PathRegister,
)

__all__ = [
    "LghistRegister",
    "lghist_bit",
    "BlockLghistProvider",
    "BranchGhistProvider",
    "HistoryProvider",
    "InfoVector",
    "ev8_info_provider",
    "GlobalHistoryRegister",
    "LocalHistoryTable",
    "PathRegister",
]
