"""History registers: global outcome history, path history, local history.

These are the architectural information vectors of Section 5 of the paper.
All registers store history as plain integers with **bit 0 = most recent
event**, matching the ``(h20, ..., h0)`` notation of Section 7.3 where ``h0``
is the youngest lghist bit.
"""

from __future__ import annotations

from collections import deque

from repro.common.bitops import mask

__all__ = ["GlobalHistoryRegister", "PathRegister", "LocalHistoryTable"]


class GlobalHistoryRegister:
    """A conventional global branch-outcome history register (ghist).

    One bit is shifted in per conditional branch (1 = taken).  The register
    keeps ``capacity`` bits; predictors read the ``n`` youngest bits with
    :meth:`value`.
    """

    __slots__ = ("capacity", "_mask", "_value")

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._mask = mask(capacity)
        self._value = 0

    def push(self, taken: bool) -> None:
        """Record one branch outcome."""
        self._value = ((self._value << 1) | int(taken)) & self._mask

    def value(self, length: int | None = None) -> int:
        """Return the ``length`` youngest history bits (all bits if None)."""
        if length is None:
            return self._value
        if length < 0 or length > self.capacity:
            raise ValueError(
                f"history length {length} outside register capacity "
                f"{self.capacity}")
        return self._value & mask(length)

    def reset(self) -> None:
        self._value = 0


class PathRegister:
    """Addresses of the most recent fetch blocks (or branches).

    Section 5.2: the EV8 index functions consume the addresses of the three
    previous fetch blocks (Z is the most recent, then Y, ...).  ``entry(0)``
    is Z, ``entry(1)`` is Y, and so on; blocks not yet seen read as address 0.
    """

    __slots__ = ("depth", "_addresses")

    def __init__(self, depth: int = 3) -> None:
        if depth < 1:
            raise ValueError(f"path depth must be >= 1, got {depth}")
        self.depth = depth
        self._addresses: deque[int] = deque([0] * depth, maxlen=depth)

    def push(self, address: int) -> None:
        """Record the address of a newly fetched block."""
        self._addresses.appendleft(address)

    def entry(self, age: int) -> int:
        """Address of the block fetched ``age + 1`` blocks ago (0 = most
        recent, the paper's Z)."""
        return self._addresses[age]

    def as_tuple(self) -> tuple[int, ...]:
        """All tracked addresses, most recent first: (Z, Y, X, ...)."""
        return tuple(self._addresses)

    def reset(self) -> None:
        for _ in range(self.depth):
            self._addresses.appendleft(0)


class LocalHistoryTable:
    """A table of per-branch outcome histories (first level of a two-level
    local predictor, as in the Alpha 21264's local component — Section 3).

    Indexed by PC bits above the 2-bit instruction offset.
    """

    __slots__ = ("entries", "width", "_mask", "_table")

    def __init__(self, entries: int, width: int) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a power of two, got {entries}")
        if width < 1:
            raise ValueError(f"history width must be >= 1, got {width}")
        self.entries = entries
        self.width = width
        self._mask = mask(width)
        self._table = [0] * entries

    def index_of(self, pc: int) -> int:
        """Table index for a branch PC (instruction-granular: PC/4)."""
        return (pc >> 2) & (self.entries - 1)

    def read(self, pc: int) -> int:
        """The branch's current local history."""
        return self._table[self.index_of(pc)]

    def push(self, pc: int, taken: bool) -> None:
        """Record an outcome in the branch's local history."""
        index = self.index_of(pc)
        self._table[index] = ((self._table[index] << 1) | int(taken)) & self._mask

    @property
    def storage_bits(self) -> int:
        return self.entries * self.width
