"""lghist: the EV8's block-compressed branch + path history (Section 5.1).

Predicting up to 16 branches per cycle makes a conventional per-branch
history register impractical (up to 16 bits would have to shift in each
cycle).  The EV8 instead inserts a **single history bit per fetch block**:

    whenever at least one conditional branch is present in the fetch block,
    the outcome of the *last* conditional branch in the block (1 = taken)
    is XORed with **bit 4 of that branch's PC address**.

The PC-bit XOR embeds path information and evens out the otherwise
taken-skewed distribution of history patterns in optimised code.

Because the predictor is pipelined over two cycles with two blocks fetched
per cycle, the history used to predict block D cannot contain bits from the
three preceding blocks A, B, C: the EV8 uses **three fetch blocks old**
lghist.  :class:`LghistRegister` models both the compression and the delay.
"""

from __future__ import annotations

from collections import deque

from repro.common.bitops import bit, mask
from repro.traces.fetch import FetchBlock

__all__ = ["lghist_bit", "LghistRegister"]

PATH_BIT_POSITION = 4
"""The PC bit XORed into the history bit (Section 5.1)."""


def lghist_bit(block: FetchBlock, include_path: bool = True) -> int | None:
    """The history bit a fetch block inserts, or ``None`` when the block
    contains no conditional branch.

    With ``include_path`` (the EV8 configuration) the last branch's outcome
    is XORed with bit 4 of its PC; without, the raw outcome is used
    ("lghist, no path" in Fig 7).
    """
    if not block.has_conditional:
        return None
    outcome = int(block.last_branch_outcome)
    if include_path:
        return outcome ^ bit(block.last_branch_pc, PATH_BIT_POSITION)
    return outcome


class LghistRegister:
    """Block-compressed history with an optional fetch-block-age delay.

    Parameters
    ----------
    include_path:
        XOR the path bit into each history bit (Section 5.1).
    delay_blocks:
        Number of most recent fetch blocks whose history bits are *not yet
        visible* when predicting (3 on the EV8, Section 5.1; 0 gives the
        idealised immediate lghist of Fig 7's "lghist" configurations).
    capacity:
        Visible history bits retained.
    """

    __slots__ = ("include_path", "delay_blocks", "capacity", "_mask",
                 "_visible", "_pending")

    def __init__(self, include_path: bool = True, delay_blocks: int = 0,
                 capacity: int = 64) -> None:
        if delay_blocks < 0:
            raise ValueError(f"delay must be >= 0, got {delay_blocks}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.include_path = include_path
        self.delay_blocks = delay_blocks
        self.capacity = capacity
        self._mask = mask(capacity)
        self._visible = 0
        self._pending: deque[int | None] = deque()

    def value(self, length: int | None = None) -> int:
        """The history visible to the predictor *now* (i.e. excluding the
        ``delay_blocks`` most recent fetch blocks)."""
        if length is None:
            return self._visible
        if length < 0 or length > self.capacity:
            raise ValueError(
                f"history length {length} outside capacity {self.capacity}")
        return self._visible & mask(length)

    def push_block(self, block: FetchBlock) -> None:
        """Account for one fetched block.

        The block's history bit (if any) becomes visible only once
        ``delay_blocks`` younger blocks have been fetched.  Blocks without
        conditional branches insert no bit but still advance the delay
        pipeline — the delay is measured in *fetch blocks*, not in history
        bits (it models pipeline stages, Fig 1).
        """
        inserted = lghist_bit(block, self.include_path)
        if self.delay_blocks == 0:
            if inserted is not None:
                self._shift_in(inserted)
            return
        self._pending.append(inserted)
        while len(self._pending) > self.delay_blocks:
            aged = self._pending.popleft()
            if aged is not None:
                self._shift_in(aged)

    def _shift_in(self, history_bit: int) -> None:
        self._visible = ((self._visible << 1) | history_bit) & self._mask

    def reset(self) -> None:
        self._visible = 0
        self._pending.clear()
