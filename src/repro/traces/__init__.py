"""Dynamic traces: model, fetch-block construction, statistics, IO."""

from repro.traces.fetch import (
    FETCH_BLOCK_BYTES,
    FETCH_BLOCK_INSTRUCTIONS,
    FetchBlock,
    build_fetch_blocks,
    fetch_blocks_for,
)
from repro.traces.io import TraceCache, load_trace, save_trace
from repro.traces.model import (
    INSTRUCTION_BYTES,
    BlockExecution,
    TerminatorKind,
    Trace,
    TraceBuilder,
)
from repro.traces.stats import TraceStatistics, compute_statistics

__all__ = [
    "FETCH_BLOCK_BYTES",
    "FETCH_BLOCK_INSTRUCTIONS",
    "FetchBlock",
    "build_fetch_blocks",
    "fetch_blocks_for",
    "TraceCache",
    "load_trace",
    "save_trace",
    "INSTRUCTION_BYTES",
    "BlockExecution",
    "TerminatorKind",
    "Trace",
    "TraceBuilder",
    "TraceStatistics",
    "compute_statistics",
]
