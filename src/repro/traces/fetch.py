"""EV8 fetch-block construction.

Section 2 of the paper defines the fetch block: *"An instruction fetch block
consists of all consecutive valid instructions fetched from the I-cache: an
instruction fetch block ends either at the end of an aligned 8-instruction
block or on a taken control flow instruction. Not taken conditional branches
do not end a fetch block, thus up to 16 conditional branches may be fetched
and predicted in every cycle"* (two blocks per cycle, up to 8 conditional
branches each).

This module turns a :class:`~repro.traces.model.Trace` (a stream of
basic-block executions) into the stream of fetch blocks the EV8 front end
would see.  The fetch-block stream is what drives:

* lghist construction (one history bit per fetch block, Section 5.1),
* the three-fetch-blocks-old history delay (Section 5.1),
* path information from the previous fetch blocks (Section 5.2),
* bank-number computation (Section 6.2),
* per-slot unshuffle indexing (PC bits 4..2, Section 7.1).
"""

from __future__ import annotations

import weakref

from repro.traces.model import (
    INSTRUCTION_BYTES,
    TerminatorKind,
    Trace,
)

__all__ = ["FETCH_BLOCK_INSTRUCTIONS", "FETCH_BLOCK_BYTES", "FetchBlock",
           "build_fetch_blocks", "fetch_blocks_for"]

FETCH_BLOCK_INSTRUCTIONS = 8
"""Maximum instructions per fetch block."""

FETCH_BLOCK_BYTES = FETCH_BLOCK_INSTRUCTIONS * INSTRUCTION_BYTES
"""Fetch blocks never cross an aligned 32-byte boundary."""


class FetchBlock:
    """One dynamic fetch block.

    Attributes
    ----------
    start:
        Address of the first instruction.  This is the "fetch block address"
        ``A`` used by the index functions (Section 7).
    num_instructions:
        Number of instructions in the block (1..8).
    branch_pcs / branch_outcomes:
        Parallel lists describing the conditional branches inside the block,
        in fetch order.  Up to 8 entries; possibly empty.
    ended_taken:
        ``True`` if the block ended on a taken control-flow instruction
        (conditional or unconditional); ``False`` if it ended at an aligned
        8-instruction boundary or at end of trace.
    """

    __slots__ = ("start", "num_instructions", "branch_pcs", "branch_outcomes",
                 "ended_taken")

    def __init__(self, start: int, num_instructions: int,
                 branch_pcs: list[int], branch_outcomes: list[bool],
                 ended_taken: bool) -> None:
        self.start = start
        self.num_instructions = num_instructions
        self.branch_pcs = branch_pcs
        self.branch_outcomes = branch_outcomes
        self.ended_taken = ended_taken

    @property
    def end(self) -> int:
        """Address one past the last instruction."""
        return self.start + self.num_instructions * INSTRUCTION_BYTES

    @property
    def has_conditional(self) -> bool:
        """Whether the block contains at least one conditional branch (only
        such blocks insert an lghist bit, Section 5.1)."""
        return bool(self.branch_pcs)

    @property
    def last_branch_pc(self) -> int:
        """PC of the last conditional branch (requires ``has_conditional``)."""
        return self.branch_pcs[-1]

    @property
    def last_branch_outcome(self) -> bool:
        """Outcome of the last conditional branch (requires
        ``has_conditional``)."""
        return self.branch_outcomes[-1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FetchBlock(start={self.start:#x}, n={self.num_instructions}, "
                f"branches={len(self.branch_pcs)}, ended_taken={self.ended_taken})")


def build_fetch_blocks(trace: Trace) -> list[FetchBlock]:
    """Chunk a basic-block execution trace into EV8 fetch blocks.

    The basic-block stream is contiguous in the address space except across
    taken control transfers, so fetch blocks are formed by splitting the
    instruction address stream at (a) aligned 32-byte boundaries and (b)
    taken terminators.
    """
    blocks_out: list[FetchBlock] = []
    fb_start: int | None = None
    branch_pcs: list[int] = []
    branch_outcomes: list[bool] = []

    conditional = int(TerminatorKind.CONDITIONAL)
    fallthrough = int(TerminatorKind.FALLTHROUGH)

    append_out = blocks_out.append
    for start, n, kind, taken in zip(trace.starts.tolist(),
                                     trace.num_instructions.tolist(),
                                     trace.kinds.tolist(),
                                     trace.takens.tolist()):
        end = start + n * INSTRUCTION_BYTES
        terminator_taken = (taken if kind == conditional
                            else kind != fallthrough)
        pos = start
        while pos < end:
            if fb_start is None:
                fb_start = pos
            boundary = (pos & ~(FETCH_BLOCK_BYTES - 1)) + FETCH_BLOCK_BYTES
            chunk_end = boundary if boundary < end else end
            holds_terminator = chunk_end == end
            if holds_terminator and kind == conditional:
                branch_pcs.append(end - INSTRUCTION_BYTES)
                branch_outcomes.append(taken)
            ends_taken = holds_terminator and terminator_taken
            pos = chunk_end
            if ends_taken or chunk_end == boundary:
                append_out(FetchBlock(
                    fb_start,
                    (pos - fb_start) // INSTRUCTION_BYTES,
                    branch_pcs, branch_outcomes, ends_taken))
                fb_start = None
                branch_pcs = []
                branch_outcomes = []

    if fb_start is not None:
        # Flush the trailing partial block at end of trace.
        append_out(FetchBlock(fb_start, (pos - fb_start) // INSTRUCTION_BYTES,
                              branch_pcs, branch_outcomes, False))
    return blocks_out


_CACHE: "weakref.WeakKeyDictionary[Trace, list[FetchBlock]]" = (
    weakref.WeakKeyDictionary())


def fetch_blocks_for(trace: Trace) -> list[FetchBlock]:
    """Memoised :func:`build_fetch_blocks` — fetch-block construction is pure
    and every block-granular experiment on the same trace reuses the result."""
    cached = _CACHE.get(trace)
    if cached is None:
        cached = build_fetch_blocks(trace)
        _CACHE[trace] = cached
    return cached
