"""Dynamic trace representation.

The unit of the trace is the *basic-block execution*: a run of consecutive
instructions ending with (at most) one control-flow instruction.  This is the
natural output granularity of the synthetic program executor and carries
exactly the information the EV8 front end consumes:

* instruction addresses (for fetch-block construction and index functions),
* conditional branch outcomes,
* instruction counts (for the misp/KI metric).

Instructions are 4 bytes, as on Alpha, so PC bits (4, 3, 2) identify an
instruction's slot within an aligned 8-instruction (32-byte) fetch block —
the bits the EV8 "unshuffle" stage permutes (Section 7.1).

A :class:`Trace` stores the block stream as parallel numpy arrays and lazily
derives the flat conditional-branch view used by per-branch predictor
simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

__all__ = [
    "INSTRUCTION_BYTES",
    "TerminatorKind",
    "BlockExecution",
    "Trace",
    "TraceBuilder",
]

INSTRUCTION_BYTES = 4
"""Alpha instructions are fixed 4-byte words."""


class TerminatorKind(IntEnum):
    """How a basic block ends."""

    FALLTHROUGH = 0
    """No control-flow instruction: execution continues at the next address
    (the block was split for layout reasons, e.g. function boundaries)."""

    CONDITIONAL = 1
    """Conditional branch: last instruction of the block."""

    JUMP = 2
    """Unconditional direct jump: always taken."""

    CALL = 3
    """Function call: always taken; pushes its fall-through address on the
    hardware return-address stack (Alpha JSR carries this hint)."""

    RETURN = 4
    """Function return: always taken; target predicted by popping the
    return-address stack (Alpha RET hint)."""


@dataclass(frozen=True)
class BlockExecution:
    """One dynamic execution of a basic block.

    Attributes
    ----------
    start:
        Address of the first instruction.
    num_instructions:
        Number of instructions, including the terminator. Always >= 1.
    kind:
        Terminator kind.
    taken:
        Outcome of the terminator. Meaningful for ``CONDITIONAL`` blocks;
        ``True`` for ``JUMP``/``CALL``/``RETURN``; ``False`` for
        ``FALLTHROUGH``.
    next_start:
        Address of the next block's first instruction (branch target when
        taken, fall-through otherwise).
    """

    start: int
    num_instructions: int
    kind: TerminatorKind
    taken: bool
    next_start: int

    @property
    def terminator_pc(self) -> int:
        """Address of the last (terminator) instruction."""
        return self.start + (self.num_instructions - 1) * INSTRUCTION_BYTES

    @property
    def end(self) -> int:
        """Address one instruction past the block."""
        return self.start + self.num_instructions * INSTRUCTION_BYTES


class Trace:
    """An immutable dynamic trace of basic-block executions.

    Parameters are parallel arrays, one element per block execution; see
    :class:`BlockExecution` for field meanings.  ``name`` identifies the
    workload (used in reports and as a disk-cache key component).
    """

    __slots__ = ("name", "starts", "num_instructions", "kinds", "takens",
                 "next_starts", "_branch_view", "__weakref__")

    def __init__(self, name: str, starts: np.ndarray, num_instructions: np.ndarray,
                 kinds: np.ndarray, takens: np.ndarray,
                 next_starts: np.ndarray) -> None:
        lengths = {len(starts), len(num_instructions), len(kinds), len(takens),
                   len(next_starts)}
        if len(lengths) != 1:
            raise ValueError(f"trace arrays have mismatched lengths: {lengths}")
        self.name = name
        self.starts = np.asarray(starts, dtype=np.uint64)
        self.num_instructions = np.asarray(num_instructions, dtype=np.uint16)
        self.kinds = np.asarray(kinds, dtype=np.uint8)
        self.takens = np.asarray(takens, dtype=np.bool_)
        self.next_starts = np.asarray(next_starts, dtype=np.uint64)
        self._branch_view: tuple[list[int], list[bool]] | None = None

    # -- sizes ---------------------------------------------------------------

    def __len__(self) -> int:
        """Number of basic-block executions."""
        return len(self.starts)

    @property
    def instruction_count(self) -> int:
        """Total dynamic instruction count (denominator of misp/KI)."""
        return int(self.num_instructions.sum(dtype=np.int64))

    @property
    def conditional_count(self) -> int:
        """Number of dynamic conditional branches."""
        return int((self.kinds == TerminatorKind.CONDITIONAL).sum())

    # -- views ---------------------------------------------------------------

    def branches(self) -> tuple[list[int], list[bool]]:
        """Return ``(pcs, outcomes)`` for all dynamic conditional branches,
        as plain Python lists (fast to iterate in the simulation loop)."""
        if self._branch_view is None:
            cond = self.kinds == TerminatorKind.CONDITIONAL
            pcs = (self.starts[cond]
                   + (self.num_instructions[cond].astype(np.uint64) - 1)
                   * INSTRUCTION_BYTES)
            # tolist() converts in C — far faster than a per-element
            # int()/bool() comprehension over numpy scalars.
            self._branch_view = (pcs.tolist(), self.takens[cond].tolist())
        return self._branch_view

    def blocks(self):
        """Iterate :class:`BlockExecution` objects (slow path, for tests and
        fetch-block construction)."""
        kind_values = [TerminatorKind(k) for k in (0, 1, 2, 3, 4)]
        for start, n, kind, taken, nxt in zip(
                self.starts, self.num_instructions, self.kinds, self.takens,
                self.next_starts):
            yield BlockExecution(int(start), int(n), kind_values[kind],
                                 bool(taken), int(nxt))

    def static_conditional_pcs(self) -> set[int]:
        """The set of static conditional branch PCs exercised by the trace."""
        pcs, _ = self.branches()
        return set(pcs)

    def taken_rate(self) -> float:
        """Fraction of dynamic conditional branches that are taken."""
        cond = self.kinds == TerminatorKind.CONDITIONAL
        total = int(cond.sum())
        if total == 0:
            return 0.0
        return float(self.takens[cond].sum()) / total

    def slice(self, num_blocks: int, name: str | None = None) -> "Trace":
        """Return a prefix of the trace with at most ``num_blocks`` blocks."""
        n = min(num_blocks, len(self))
        return Trace(name or self.name, self.starts[:n],
                     self.num_instructions[:n], self.kinds[:n],
                     self.takens[:n], self.next_starts[:n])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Trace({self.name!r}, blocks={len(self)}, "
                f"instructions={self.instruction_count}, "
                f"cond_branches={self.conditional_count})")


@dataclass
class TraceBuilder:
    """Incrementally accumulate block executions, then freeze into a
    :class:`Trace`.

    >>> builder = TraceBuilder("demo")
    >>> builder.add(0x1000, 3, TerminatorKind.CONDITIONAL, True, 0x2000)
    >>> builder.add(0x2000, 1, TerminatorKind.JUMP, True, 0x1000)
    >>> trace = builder.build()
    >>> trace.conditional_count, trace.instruction_count
    (1, 4)
    """

    name: str
    starts: list[int] = field(default_factory=list)
    num_instructions: list[int] = field(default_factory=list)
    kinds: list[int] = field(default_factory=list)
    takens: list[bool] = field(default_factory=list)
    next_starts: list[int] = field(default_factory=list)

    def add(self, start: int, num_instructions: int, kind: TerminatorKind,
            taken: bool, next_start: int) -> None:
        """Append one block execution."""
        if num_instructions < 1:
            raise ValueError(
                f"a block execution needs at least 1 instruction, got {num_instructions}")
        if start % INSTRUCTION_BYTES:
            raise ValueError(f"block start {start:#x} is not instruction-aligned")
        self.starts.append(start)
        self.num_instructions.append(num_instructions)
        self.kinds.append(int(kind))
        self.takens.append(taken)
        self.next_starts.append(next_start)

    def __len__(self) -> int:
        return len(self.starts)

    def build(self) -> Trace:
        """Freeze into an immutable :class:`Trace`."""
        return Trace(
            self.name,
            np.array(self.starts, dtype=np.uint64),
            np.array(self.num_instructions, dtype=np.uint16),
            np.array(self.kinds, dtype=np.uint8),
            np.array(self.takens, dtype=np.bool_),
            np.array(self.next_starts, dtype=np.uint64),
        )
