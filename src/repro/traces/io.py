"""Trace serialisation and on-disk caching.

Traces are stored as compressed ``.npz`` files (one array per
:class:`~repro.traces.model.Trace` field).  Synthetic workload generation is
deterministic but not free, so :class:`TraceCache` memoises generated traces
on disk keyed by ``(name, version, parameters digest)``; experiments and
benches share one cache directory and regenerate only on a key miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import zipfile
from pathlib import Path
from typing import Callable

import numpy as np

from repro.obs import NullTelemetry, get_telemetry
from repro.traces.model import Trace

__all__ = ["TRACE_COLUMNS", "trace_columns", "save_trace", "load_trace",
           "TraceCache", "default_cache_dir"]

_FORMAT_VERSION = 1

TRACE_COLUMNS = ("starts", "num_instructions", "kinds", "takens",
                 "next_starts")
"""The trace's array fields in canonical serialization order — shared by
the ``.npz`` writer below and the shared-memory plane fabric
(:mod:`repro.sim.planes`), so both media agree on what constitutes a
trace's content."""


def trace_columns(trace: Trace) -> list[tuple[str, np.ndarray]]:
    """``(name, column)`` pairs in :data:`TRACE_COLUMNS` order."""
    return [(name, getattr(trace, name)) for name in TRACE_COLUMNS]


def save_trace(trace: Trace, path: str | os.PathLike) -> None:
    """Write a trace to ``path`` as a compressed ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        format_version=np.array([_FORMAT_VERSION]),
        name=np.array([trace.name]),
        **dict(trace_columns(trace)),
    )


def load_trace(path: str | os.PathLike) -> Trace:
    """Load a trace previously written by :func:`save_trace`."""
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {version} in {path}")
        return Trace(
            str(data["name"][0]),
            data["starts"],
            data["num_instructions"],
            data["kinds"],
            data["takens"],
            data["next_starts"],
        )


def default_cache_dir() -> Path:
    """Resolve the trace cache directory.

    Overridable via the ``REPRO_TRACE_CACHE`` environment variable; defaults
    to ``.trace_cache`` under the current working directory.
    """
    env = os.environ.get("REPRO_TRACE_CACHE")
    if env:
        return Path(env)
    return Path.cwd() / ".trace_cache"


class TraceCache:
    """Disk-backed memoisation of trace generation.

    >>> import tempfile
    >>> cache = TraceCache(directory=tempfile.mkdtemp())
    >>> calls = []
    >>> def generate():
    ...     from repro.traces.model import TraceBuilder, TerminatorKind
    ...     calls.append(1)
    ...     builder = TraceBuilder("demo")
    ...     builder.add(0, 1, TerminatorKind.JUMP, True, 0)
    ...     return builder.build()
    >>> t1 = cache.get_or_generate("demo", {"n": 1}, generate)
    >>> t2 = cache.get_or_generate("demo", {"n": 1}, generate)
    >>> len(calls)
    1
    """

    def __init__(self, directory: str | os.PathLike | None = None,
                 telemetry: NullTelemetry | None = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self._memory: dict[str, Trace] = {}
        # None defers to the process-global active sink per lookup, so a
        # long-lived cache instance still reports into whichever sink is
        # active when it is consulted (e.g. under ``use_telemetry``).
        self._telemetry = telemetry

    def _key(self, name: str, parameters: dict) -> str:
        canonical = json.dumps(parameters, sort_keys=True, default=str)
        digest = hashlib.sha256(canonical.encode()).hexdigest()[:16]
        return f"{name}-v{_FORMAT_VERSION}-{digest}"

    def get_or_generate(self, name: str, parameters: dict,
                        generate: Callable[[], Trace]) -> Trace:
        """Return the cached trace for ``(name, parameters)``, generating and
        persisting it on first use.  An in-memory layer avoids re-reading the
        archive within a process.

        Telemetry distinguishes the four outcomes:
        ``trace_cache.memory_hits``, ``trace_cache.disk_hits``,
        ``trace_cache.cold_misses`` (no archive — generated and stored) and
        ``trace_cache.corrupt_regenerated`` (archive present but unreadable
        — dropped, regenerated, rewritten); generation wall time lands in
        the ``trace_cache.generate_seconds`` histogram.
        """
        sink = get_telemetry(self._telemetry)
        key = self._key(name, parameters)
        trace = self._memory.get(key)
        if trace is not None:
            if sink.enabled:
                sink.count("trace_cache.memory_hits")
            return trace
        path = self.directory / f"{key}.npz"
        corrupt = False
        if path.exists():
            try:
                trace = load_trace(path)
                if sink.enabled:
                    sink.count("trace_cache.disk_hits")
            except (ValueError, OSError, KeyError, zipfile.BadZipFile):
                # Corrupt/stale cache entry: drop it and regenerate.  A
                # truncated or garbage archive surfaces as BadZipFile from
                # np.load's zipfile layer, not as one of numpy's own errors.
                trace = None
                corrupt = True
                try:
                    path.unlink()
                except OSError:
                    pass
        if trace is None:
            if sink.enabled:
                sink.count("trace_cache.corrupt_regenerated" if corrupt
                           else "trace_cache.cold_misses")
            started = time.perf_counter()
            trace = generate()
            if sink.enabled:
                sink.observe("trace_cache.generate_seconds",
                             time.perf_counter() - started)
            try:
                save_trace(trace, path)
            except OSError:
                pass  # Read-only filesystem: still return the trace.
        self._memory[key] = trace
        return trace

    def clear_memory(self) -> None:
        """Drop the in-process layer (disk entries are kept)."""
        self._memory.clear()
