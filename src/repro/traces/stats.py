"""Trace statistics backing Table 2 and Table 3 of the paper.

* Table 2 reports, per benchmark, the number of dynamic conditional branches
  (in thousands) and static conditional branches in a 100M-instruction trace.
* Table 3 reports the ratio *lghist/ghist*: the average number of conditional
  branches represented by one lghist bit.  One lghist bit is inserted per
  fetch block containing at least one conditional branch (Section 5.1), so
  the ratio equals ``dynamic conditional branches / lghist bits inserted``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.traces.fetch import fetch_blocks_for
from repro.traces.model import Trace

__all__ = ["TraceStatistics", "compute_statistics"]


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of one dynamic trace."""

    name: str
    instruction_count: int
    dynamic_conditional: int
    static_conditional: int
    taken_rate: float
    fetch_block_count: int
    lghist_bits: int
    """Number of lghist bits the trace inserts (fetch blocks containing at
    least one conditional branch)."""

    @property
    def dynamic_conditional_thousands(self) -> float:
        """Table 2's "dyn. cond. branches (x1000)" column."""
        return self.dynamic_conditional / 1000.0

    @property
    def branches_per_kilo_instruction(self) -> float:
        """Dynamic conditional branches per 1000 instructions."""
        if self.instruction_count == 0:
            return 0.0
        return 1000.0 * self.dynamic_conditional / self.instruction_count

    @property
    def lghist_to_ghist_ratio(self) -> float:
        """Table 3's ratio: conditional branches represented per lghist bit.

        Conventional ghist inserts one bit per conditional branch; lghist
        inserts one bit per branch-containing fetch block, so each lghist
        bit summarises this many branches on average.
        """
        if self.lghist_bits == 0:
            return 0.0
        return self.dynamic_conditional / self.lghist_bits

    @property
    def instructions_per_branch(self) -> float:
        """Average dynamic instructions between conditional branches."""
        if self.dynamic_conditional == 0:
            return float(self.instruction_count)
        return self.instruction_count / self.dynamic_conditional

    def scaled_to_instructions(self, target: int) -> "TraceStatistics":
        """Return statistics linearly rescaled to a trace of ``target``
        instructions (used to present Table 2 on the paper's 100M basis
        while simulating shorter traces)."""
        if self.instruction_count == 0:
            return self
        factor = target / self.instruction_count
        return TraceStatistics(
            name=self.name,
            instruction_count=target,
            dynamic_conditional=round(self.dynamic_conditional * factor),
            static_conditional=self.static_conditional,
            taken_rate=self.taken_rate,
            fetch_block_count=round(self.fetch_block_count * factor),
            lghist_bits=round(self.lghist_bits * factor),
        )


def compute_statistics(trace: Trace) -> TraceStatistics:
    """Compute :class:`TraceStatistics` for a trace."""
    fetch_blocks = fetch_blocks_for(trace)
    lghist_bits = sum(1 for block in fetch_blocks if block.has_conditional)
    return TraceStatistics(
        name=trace.name,
        instruction_count=trace.instruction_count,
        dynamic_conditional=trace.conditional_count,
        static_conditional=len(trace.static_conditional_pcs()),
        taken_rate=trace.taken_rate(),
        fetch_block_count=len(fetch_blocks),
        lghist_bits=lghist_bits,
    )
