"""Simulation results and the paper's metric.

"The metric used to report the results is mispredictions per 1000
instructions (misp/KI)" — Section 8.1.1.  Accuracy percentages hide the
branch density differences between benchmarks; misp/KI is what the pipeline
actually feels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SimulationResult", "misp_per_ki", "aggregate_misp_per_ki"]


def misp_per_ki(mispredictions: int, instructions: int) -> float:
    """Mispredictions per 1000 instructions."""
    if instructions <= 0:
        raise ValueError(f"instruction count must be positive, got {instructions}")
    return 1000.0 * mispredictions / instructions


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one (predictor, trace) simulation.

    ``wall_seconds`` and ``engine`` are throughput bookkeeping stamped by
    the simulation engine that produced the result; they do not participate
    in the paper's accuracy metrics.  ``cache`` records result-cache
    provenance: ``"off"`` (caching inactive), ``"miss"`` (simulated and
    stored) or ``"hit"`` (loaded from the persistent result cache, with
    the *original* run's ``wall_seconds``).

    ``telemetry`` is the observability snapshot
    (:meth:`repro.obs.Telemetry.snapshot`) stamped when the run executed
    under a recording sink, else ``None``.  Like the throughput fields it
    is bookkeeping, not an accuracy metric: it is excluded from equality so
    instrumented and uninstrumented runs of the same simulation compare
    equal.
    """

    predictor_name: str
    trace_name: str
    branches: int
    mispredictions: int
    instructions: int
    wall_seconds: float = 0.0
    engine: str = "scalar"
    cache: str = "off"
    telemetry: dict | None = field(default=None, compare=False, repr=False)

    @property
    def misp_per_ki(self) -> float:
        """The paper's metric."""
        return misp_per_ki(self.mispredictions, self.instructions)

    @property
    def branches_per_second(self) -> float:
        """Simulation throughput (dynamic branches per wall-clock second)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.branches / self.wall_seconds

    @property
    def misprediction_rate(self) -> float:
        """Fraction of branches mispredicted."""
        if self.branches == 0:
            return 0.0
        return self.mispredictions / self.branches

    @property
    def accuracy(self) -> float:
        """Fraction of branches predicted correctly."""
        return 1.0 - self.misprediction_rate

    def __str__(self) -> str:
        return (f"{self.predictor_name} on {self.trace_name}: "
                f"{self.misp_per_ki:.3f} misp/KI "
                f"({self.misprediction_rate:.2%} of {self.branches} branches)")


def aggregate_misp_per_ki(results: list[SimulationResult]) -> float:
    """Arithmetic mean of misp/KI over benchmarks (the cross-benchmark
    summary used alongside the per-benchmark bars)."""
    if not results:
        raise ValueError("cannot aggregate an empty result list")
    return sum(result.misp_per_ki for result in results) / len(results)
