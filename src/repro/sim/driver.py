"""Trace-driven simulation driver.

Implements the paper's methodology (Section 8.1.1): trace-driven branch
simulation with **immediate update** — the predictor trains on each branch's
architectural outcome as soon as it is predicted.  The paper validates that
for the long-global-history predictors studied, immediate update versus
commit-time update changes the misprediction counts insignificantly.

The walk itself lives in the pluggable engine layer
(:mod:`repro.sim.engine`): the default :class:`~repro.sim.engine.ScalarEngine`
iterates the trace's fetch-block stream one branch at a time, while the
:class:`~repro.sim.engine.BatchedEngine` replays opted-in table predictors
in vectorized numpy passes with bit-identical counts.  A
:class:`~repro.history.providers.HistoryProvider` decides what information
vector each branch is predicted with (per-branch ghist, block lghist, aged
lghist, ...), which is how one simulation loop serves both conventional
per-branch predictors and the block-granular EV8 predictor.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.history.providers import HistoryProvider
from repro.obs import NullTelemetry, get_telemetry
from repro.predictors.base import Predictor
from repro.sim import result_cache
from repro.sim.engine import SimulationEngine, get_engine
from repro.sim.metrics import SimulationResult
from repro.traces.model import Trace

__all__ = ["simulate"]


def simulate(predictor: Predictor, trace: Trace,
             provider: HistoryProvider | None = None,
             warmup_branches: int = 0,
             engine: str | SimulationEngine | None = None,
             use_cache: bool | None = None,
             telemetry: NullTelemetry | None = None) -> SimulationResult:
    """Run one predictor over one trace.

    Parameters
    ----------
    predictor:
        A fresh predictor instance (simulation mutates its tables).
    trace:
        The dynamic trace.
    provider:
        Information-vector provider; defaults to conventional per-branch
        global history (the setup of the paper's Fig 5 comparisons).
    warmup_branches:
        Optional number of initial branches excluded from the misprediction
        count (the tables still train).  The paper uses no warmup (all
        entries initialised weakly not-taken); kept for sensitivity studies.
    engine:
        Simulation engine: an instance, a registered name (``"scalar"``,
        ``"batched"``, ``"batched-compat"`` — the batched engine pinned to
        the original replay kernel, kept for honest before/after
        benchmarking), or ``None`` for the ``REPRO_SIM_ENGINE`` environment
        default (scalar).  Engines are count-equivalent; they differ only in
        throughput.
    use_cache:
        Consult/populate the persistent result cache
        (:mod:`repro.sim.result_cache`).  ``None`` defers to the
        ``REPRO_RESULT_CACHE`` environment variable.  Inputs that cannot be
        fingerprinted simply run uncached.
    telemetry:
        Observability sink (:mod:`repro.obs`); ``None`` resolves the
        process-global active sink (disabled by default).  A recording sink
        receives result-cache hit/miss accounting here and the engine's
        per-bank/per-phase instrumentation downstream.
    """
    resolved = get_engine(engine)
    sink = get_telemetry(telemetry)
    if use_cache is None:
        use_cache = result_cache.cache_enabled()
    if use_cache:
        try:
            # Key BEFORE running: the simulation mutates predictor state.
            key = result_cache.result_key(predictor, trace, provider,
                                          warmup_branches, resolved.name)
        except result_cache.UncacheableError:
            key = None
        if key is not None:
            cached = result_cache.load(key, telemetry=sink)
            if cached is not None:
                if sink.enabled:
                    cached = replace(cached, telemetry=sink.snapshot())
                return cached
            started = time.perf_counter()
            result = replace(
                resolved.run(predictor, trace, provider, warmup_branches,
                             telemetry=sink),
                cache="miss")
            if sink.enabled:
                sink.observe("result_cache.miss_seconds",
                             time.perf_counter() - started)
            result_cache.store(key, result, telemetry=sink)
            if sink.enabled:
                result = replace(result, telemetry=sink.snapshot())
            return result
    return resolved.run(predictor, trace, provider, warmup_branches,
                        telemetry=sink)
