"""Trace-driven simulation driver.

Implements the paper's methodology (Section 8.1.1): trace-driven branch
simulation with **immediate update** — the predictor trains on each branch's
architectural outcome as soon as it is predicted.  The paper validates that
for the long-global-history predictors studied, immediate update versus
commit-time update changes the misprediction counts insignificantly.

The driver walks the trace's fetch-block stream; a
:class:`~repro.history.providers.HistoryProvider` decides what information
vector each branch is predicted with (per-branch ghist, block lghist, aged
lghist, ...), which is how one simulation loop serves both conventional
per-branch predictors and the block-granular EV8 predictor.
"""

from __future__ import annotations

from repro.history.providers import BranchGhistProvider, HistoryProvider
from repro.predictors.base import Predictor
from repro.sim.metrics import SimulationResult
from repro.traces.fetch import fetch_blocks_for
from repro.traces.model import Trace

__all__ = ["simulate"]


def simulate(predictor: Predictor, trace: Trace,
             provider: HistoryProvider | None = None,
             warmup_branches: int = 0) -> SimulationResult:
    """Run one predictor over one trace.

    Parameters
    ----------
    predictor:
        A fresh predictor instance (simulation mutates its tables).
    trace:
        The dynamic trace.
    provider:
        Information-vector provider; defaults to conventional per-branch
        global history (the setup of the paper's Fig 5 comparisons).
    warmup_branches:
        Optional number of initial branches excluded from the misprediction
        count (the tables still train).  The paper uses no warmup (all
        entries initialised weakly not-taken); kept for sensitivity studies.
    """
    if provider is None:
        provider = BranchGhistProvider()
    mispredictions = 0
    branches = 0
    counted_instructions = 0
    begin_block = provider.begin_block
    end_block = provider.end_block
    access = predictor.access
    for block in fetch_blocks_for(trace):
        if block.branch_pcs:
            vectors = begin_block(block)
            for vector, taken in zip(vectors, block.branch_outcomes):
                prediction = access(vector, taken)
                branches += 1
                if branches > warmup_branches and prediction != taken:
                    mispredictions += 1
        end_block(block)
    return SimulationResult(
        predictor_name=predictor.name,
        trace_name=trace.name,
        branches=branches - min(warmup_branches, branches),
        mispredictions=mispredictions,
        instructions=trace.instruction_count,
    )
