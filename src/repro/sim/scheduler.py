"""Persistent work-stealing scheduler for sweep work units.

The pre-fabric ``sweep_parallel`` built a fresh default
``ProcessPoolExecutor`` per call and submitted one task per sweep *point*
(each task simulating every trace serially).  That shape has three costs:
pool startup is paid on every sweep of a multi-sweep experiment, a slow
point straggles while other workers idle, and the executor's default start
method is platform lore rather than a choice.

This module replaces all three:

* **persistent pools** — :func:`get_scheduler` memoizes
  :class:`SweepScheduler` instances per ``(max_workers, start_method)``, so
  ``sweep``, ``sweep_parallel`` and ``runall`` reuse one warm pool across
  calls.  :func:`shutdown_schedulers` (also registered ``atexit``) tears
  them down.
* **explicit start method** — :func:`default_start_method` picks ``fork``
  where it is safe and cheap (Linux) and ``spawn`` where fork is a trap or
  unavailable (macOS, Windows), and callers may override per sweep.
* **work-stealing chunking** — callers enqueue fine-grained ``(point,
  trace)`` units; the scheduler groups them into chunks of roughly
  ``n / (workers * 4)`` units so idle workers steal remaining chunks from
  the shared queue instead of waiting on a straggler, while per-unit
  dispatch overhead stays amortized.

Results always come back in submission order — the scheduler adds
concurrency, never nondeterminism; the sweep layer owns the deterministic
fold on top.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import sys
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

from repro.obs import get_telemetry

__all__ = ["SchedulerUnavailable", "default_start_method", "SweepScheduler",
           "get_scheduler", "shutdown_schedulers"]

_STEAL_FACTOR = 4
"""Chunks per worker: 1 would re-create whole-point straggling, while
per-unit chunks pay dispatch overhead ~n times.  Four chunks per worker
keeps the tail bounded by ~1/4 of a worker's share."""


class SchedulerUnavailable(RuntimeError):
    """The process pool cannot run work (failed to start, or broke
    mid-flight).  Callers should fall back to serial execution."""


def default_start_method() -> str:
    """The multiprocessing start method used when callers do not choose:
    ``fork`` on Linux (cheap, inherits warm module caches), ``spawn``
    everywhere fork is unsafe or missing (macOS's framework-library
    restrictions, Windows)."""
    if sys.platform in ("win32", "darwin"):
        return "spawn"
    return "fork"


def _run_chunk(fn: Callable, payloads: Sequence) -> list:
    """Worker-side chunk body (module-level so every start method can
    pickle it)."""
    return [fn(payload) for payload in payloads]


class SweepScheduler:
    """A persistent process pool dispatching chunked work units.

    The pool is created lazily on the first :meth:`run` and reused until
    :meth:`shutdown`; a pool that breaks (worker killed, executor error) is
    discarded so the next ``run`` starts fresh.
    """

    def __init__(self, max_workers: int | None = None,
                 start_method: str | None = None) -> None:
        self.max_workers = max_workers or os.cpu_count() or 1
        self.start_method = start_method or default_start_method()
        self._executor: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is None:
                try:
                    context = multiprocessing.get_context(self.start_method)
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.max_workers, mp_context=context)
                except (ValueError, OSError, PermissionError) as error:
                    raise SchedulerUnavailable(
                        f"cannot start a {self.start_method!r} process pool: "
                        f"{error!r}") from error
                sink = get_telemetry(None)
                if sink.enabled:
                    sink.count("scheduler.pools_started")
            return self._executor

    def chunk_payloads(self, payloads: Sequence) -> list[list]:
        """Split ``payloads`` into work-stealing chunks (order-preserving:
        concatenating the chunks reproduces the input sequence)."""
        n = len(payloads)
        if n == 0:
            return []
        size = max(1, -(-n // (self.max_workers * _STEAL_FACTOR)))
        return [list(payloads[lo:lo + size]) for lo in range(0, n, size)]

    def run(self, fn: Callable, payloads: Sequence) -> list:
        """Run ``fn`` over every payload on the pool; results come back in
        submission order.  Raises :class:`SchedulerUnavailable` when the
        pool cannot start or breaks (the broken pool is discarded), and
        propagates exceptions raised by ``fn`` itself."""
        chunks = self.chunk_payloads(payloads)
        if not chunks:
            return []
        executor = self._ensure_executor()
        sink = get_telemetry(None)
        if sink.enabled:
            sink.count("scheduler.runs")
            sink.count("scheduler.units", len(payloads))
            sink.count("scheduler.chunks", len(chunks))
        try:
            futures = [executor.submit(_run_chunk, fn, chunk)
                       for chunk in chunks]
            results: list = []
            for future in futures:
                results.extend(future.result())
            return results
        except SchedulerUnavailable:
            raise
        except Exception as error:
            # A broken/unusable pool must not poison later runs; workload
            # exceptions pickle a traceback and re-raise untouched.
            from concurrent.futures.process import BrokenProcessPool
            if isinstance(error, (BrokenProcessPool, RuntimeError, OSError)):
                self.shutdown()
                raise SchedulerUnavailable(
                    f"process pool failed: {error!r}") from error
            raise

    def shutdown(self) -> None:
        """Stop the pool (idempotent); the next :meth:`run` starts anew."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)


_SCHEDULERS: dict[tuple[int, str], SweepScheduler] = {}
_SCHEDULERS_LOCK = threading.Lock()


def get_scheduler(max_workers: int | None = None,
                  start_method: str | None = None) -> SweepScheduler:
    """The memoized scheduler for ``(max_workers, start_method)`` — the
    persistence point that lets successive sweeps reuse one warm pool."""
    workers = max_workers or os.cpu_count() or 1
    method = start_method or default_start_method()
    with _SCHEDULERS_LOCK:
        scheduler = _SCHEDULERS.get((workers, method))
        if scheduler is None:
            scheduler = SweepScheduler(max_workers=workers,
                                       start_method=method)
            _SCHEDULERS[(workers, method)] = scheduler
        return scheduler


def shutdown_schedulers() -> None:
    """Shut down every memoized scheduler (registered ``atexit``; also the
    explicit teardown hook for experiment runners and tests)."""
    with _SCHEDULERS_LOCK:
        schedulers = list(_SCHEDULERS.values())
        _SCHEDULERS.clear()
    for scheduler in schedulers:
        scheduler.shutdown()


atexit.register(shutdown_schedulers)
