"""Parameter sweeps, primarily over history length.

The paper repeatedly reports "best history length" results (Fig 5) and the
penalty of clamping history to log2(table size) (Fig 6).  These helpers run
a predictor factory across a range of a parameter and locate the best
configuration by mean misp/KI across benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.history.providers import HistoryProvider
from repro.predictors.base import Predictor
from repro.sim.driver import simulate
from repro.traces.model import Trace

__all__ = ["SweepPoint", "sweep", "best_history_length"]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated parameter value."""

    value: int
    mean_misp_per_ki: float
    per_benchmark: dict[str, float]


def sweep(make_predictor: Callable[[int], Predictor],
          values: Iterable[int],
          traces: dict[str, Trace],
          make_provider: Callable[[], HistoryProvider] | None = None,
          ) -> list[SweepPoint]:
    """Evaluate ``make_predictor(value)`` for every value, on every trace."""
    points = []
    for value in values:
        per_benchmark = {}
        for name, trace in traces.items():
            provider = make_provider() if make_provider is not None else None
            result = simulate(make_predictor(value), trace, provider)
            per_benchmark[name] = result.misp_per_ki
        mean = sum(per_benchmark.values()) / len(per_benchmark)
        points.append(SweepPoint(value=value, mean_misp_per_ki=mean,
                                 per_benchmark=per_benchmark))
    return points


def best_history_length(make_predictor: Callable[[int], Predictor],
                        lengths: Iterable[int],
                        traces: dict[str, Trace],
                        make_provider: Callable[[], HistoryProvider] | None = None,
                        ) -> SweepPoint:
    """The history length minimising mean misp/KI across the benchmark set
    (the paper's per-configuration "best history length")."""
    points = sweep(make_predictor, lengths, traces, make_provider)
    if not points:
        raise ValueError("no history lengths supplied")
    return min(points, key=lambda point: point.mean_misp_per_ki)
