"""Parameter sweeps, primarily over history length.

The paper repeatedly reports "best history length" results (Fig 5) and the
penalty of clamping history to log2(table size) (Fig 6).  These helpers run
a predictor factory across a range of a parameter and locate the best
configuration by mean misp/KI across benchmarks.

Sweeps are the workload the engine layer exists for: every point is an
independent (predictor, trace) simulation, so points vectorize through the
batched engine (``engine="batched"``) and fan out across processes
(:func:`sweep_parallel`).
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.history.providers import HistoryProvider
from repro.obs import NullTelemetry, Telemetry, get_telemetry
from repro.predictors.base import Predictor
from repro.sim.driver import simulate
from repro.sim.engine import SimulationEngine
from repro.traces.model import Trace

__all__ = ["SweepPoint", "sweep", "sweep_parallel", "best_history_length"]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated parameter value."""

    value: int
    mean_misp_per_ki: float
    per_benchmark: dict[str, float]


def _evaluate_point(make_predictor: Callable[[int], Predictor],
                    value: int,
                    traces: dict[str, Trace],
                    make_provider: Callable[[], HistoryProvider] | None,
                    engine: str | SimulationEngine | None,
                    use_cache: bool | None = None,
                    collect_telemetry: bool = False
                    ) -> tuple[SweepPoint, dict | None]:
    """Evaluate one sweep point (module-level so process pools can run it).

    Returns the point plus, when ``collect_telemetry``, the snapshot of a
    point-local recording sink.  Each point gets its *own* child sink —
    worker processes share no memory with the caller, so telemetry crosses
    the pool boundary as plain snapshot dicts that the caller merges back
    deterministically (serial and parallel sweeps fold the same per-point
    snapshots in the same ``values`` order).
    """
    sink = Telemetry() if collect_telemetry else None
    per_benchmark = {}
    for name, trace in traces.items():
        provider = make_provider() if make_provider is not None else None
        result = simulate(make_predictor(value), trace, provider,
                          engine=engine, use_cache=use_cache, telemetry=sink)
        per_benchmark[name] = result.misp_per_ki
    mean = sum(per_benchmark.values()) / len(per_benchmark)
    point = SweepPoint(value=value, mean_misp_per_ki=mean,
                       per_benchmark=per_benchmark)
    return point, (sink.snapshot() if sink is not None else None)


def sweep(make_predictor: Callable[[int], Predictor],
          values: Iterable[int],
          traces: dict[str, Trace],
          make_provider: Callable[[], HistoryProvider] | None = None,
          engine: str | SimulationEngine | None = None,
          use_cache: bool | None = None,
          telemetry: NullTelemetry | None = None,
          ) -> list[SweepPoint]:
    """Evaluate ``make_predictor(value)`` for every value, on every trace.

    With a recording ``telemetry`` sink, every point records into its own
    child sink and the snapshots merge into ``telemetry`` in ``values``
    order — the same protocol :func:`sweep_parallel` uses, so serial and
    parallel sweeps of the same work accumulate identical counters.
    """
    sink = get_telemetry(telemetry)
    points = []
    for value in values:
        point, snapshot = _evaluate_point(make_predictor, value, traces,
                                          make_provider, engine, use_cache,
                                          collect_telemetry=sink.enabled)
        if snapshot is not None:
            sink.merge_snapshot(snapshot)
        points.append(point)
    return points


def sweep_parallel(make_predictor: Callable[[int], Predictor],
                   values: Iterable[int],
                   traces: dict[str, Trace],
                   make_provider: Callable[[], HistoryProvider] | None = None,
                   engine: str | None = None,
                   max_workers: int | None = None,
                   use_cache: bool | None = None,
                   telemetry: NullTelemetry | None = None,
                   ) -> list[SweepPoint]:
    """:func:`sweep` with points fanned out over a process pool.

    Sweep points are embarrassingly parallel (each simulates fresh predictor
    state), so they distribute across ``max_workers`` processes; results come
    back in ``values`` order.  The factories and traces must be picklable
    (module-level functions / ``functools.partial`` — not lambdas); when the
    pool cannot be used (unpicklable work, restricted platform), the sweep
    transparently degrades to the serial path with a warning, so callers
    never lose results.  ``engine`` must be a registered engine *name* here,
    as engine instances do not cross process boundaries.

    Worker processes share no memory, so a recording ``telemetry`` sink
    cannot simply be written to from the pool: each point records into a
    worker-local child sink whose snapshot travels back with the result and
    merges into ``telemetry`` in ``values`` order, making the merged
    counters identical to a serial :func:`sweep` of the same work.
    """
    values = list(values)
    sink = get_telemetry(telemetry)
    if max_workers is not None and max_workers <= 1:
        return sweep(make_predictor, values, traces, make_provider, engine,
                     use_cache, telemetry=sink)
    try:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(_evaluate_point, make_predictor, value,
                                   traces, make_provider, engine, use_cache,
                                   sink.enabled)
                       for value in values]
            outcomes = [future.result() for future in futures]
    except Exception as error:  # unpicklable factory, broken pool, ...
        warnings.warn(
            f"sweep_parallel falling back to serial sweep: {error!r}",
            RuntimeWarning, stacklevel=2)
        return sweep(make_predictor, values, traces, make_provider, engine,
                     use_cache, telemetry=sink)
    points = []
    for point, snapshot in outcomes:
        if snapshot is not None:
            sink.merge_snapshot(snapshot)
        points.append(point)
    return points


def best_history_length(make_predictor: Callable[[int], Predictor],
                        lengths: Iterable[int],
                        traces: dict[str, Trace],
                        make_provider: Callable[[], HistoryProvider] | None = None,
                        engine: str | SimulationEngine | None = None,
                        use_cache: bool | None = None,
                        ) -> SweepPoint:
    """The history length minimising mean misp/KI across the benchmark set
    (the paper's per-configuration "best history length")."""
    points = sweep(make_predictor, lengths, traces, make_provider, engine,
                   use_cache)
    if not points:
        raise ValueError("no history lengths supplied")
    return min(points, key=lambda point: point.mean_misp_per_ki)
