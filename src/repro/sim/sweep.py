"""Parameter sweeps, primarily over history length.

The paper repeatedly reports "best history length" results (Fig 5) and the
penalty of clamping history to log2(table size) (Fig 6).  These helpers run
a predictor factory across a range of a parameter and locate the best
configuration by mean misp/KI across benchmarks.

Sweeps are the workload the engine layer exists for: every point is an
independent (predictor, trace) simulation, so points vectorize through the
batched engine (``engine="batched"``) and fan out across processes
(:func:`sweep_parallel`).
"""

from __future__ import annotations

import warnings
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.history.providers import (BranchGhistProvider, HistoryProvider,
                                     seed_plane_cache)
from repro.obs import NullTelemetry, Telemetry, get_telemetry, use_telemetry
from repro.predictors.base import Predictor
from repro.sim import planes, scheduler as sweep_scheduler
from repro.sim.driver import simulate
from repro.sim.engine import BatchedEngine, SimulationEngine, get_engine
from repro.traces.model import Trace

__all__ = ["SweepPoint", "sweep", "sweep_parallel", "best_history_length"]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated parameter value."""

    value: int
    mean_misp_per_ki: float
    per_benchmark: dict[str, float]


def _evaluate_point(make_predictor: Callable[[int], Predictor],
                    value: int,
                    traces: dict[str, Trace],
                    make_provider: Callable[[], HistoryProvider] | None,
                    engine: str | SimulationEngine | None,
                    use_cache: bool | None = None,
                    collect_telemetry: bool = False
                    ) -> tuple[SweepPoint, dict | None]:
    """Evaluate one sweep point (module-level so process pools can run it).

    Returns the point plus, when ``collect_telemetry``, the snapshot of a
    point-local recording sink.  Each point gets its *own* child sink —
    worker processes share no memory with the caller, so telemetry crosses
    the pool boundary as plain snapshot dicts that the caller merges back
    deterministically (serial and parallel sweeps fold the same per-point
    snapshots in the same ``values`` order).
    """
    sink = Telemetry() if collect_telemetry else None
    per_benchmark = {}
    for name, trace in traces.items():
        provider = make_provider() if make_provider is not None else None
        result = simulate(make_predictor(value), trace, provider,
                          engine=engine, use_cache=use_cache, telemetry=sink)
        per_benchmark[name] = result.misp_per_ki
    mean = sum(per_benchmark.values()) / len(per_benchmark)
    point = SweepPoint(value=value, mean_misp_per_ki=mean,
                       per_benchmark=per_benchmark)
    return point, (sink.snapshot() if sink is not None else None)


def sweep(make_predictor: Callable[[int], Predictor],
          values: Iterable[int],
          traces: dict[str, Trace],
          make_provider: Callable[[], HistoryProvider] | None = None,
          engine: str | SimulationEngine | None = None,
          use_cache: bool | None = None,
          telemetry: NullTelemetry | None = None,
          ) -> list[SweepPoint]:
    """Evaluate ``make_predictor(value)`` for every value, on every trace.

    With a recording ``telemetry`` sink, every point records into its own
    child sink and the snapshots merge into ``telemetry`` in ``values``
    order — the same protocol :func:`sweep_parallel` uses, so serial and
    parallel sweeps of the same work accumulate identical counters.
    """
    sink = get_telemetry(telemetry)
    points = []
    for value in values:
        point, snapshot = _evaluate_point(make_predictor, value, traces,
                                          make_provider, engine, use_cache,
                                          collect_telemetry=sink.enabled)
        if snapshot is not None:
            sink.merge_snapshot(snapshot)
        points.append(point)
    return points


def _simulate_unit(payload: tuple) -> tuple[float, dict | None]:
    """Worker-side body for one ``(point, trace)`` work unit (module-level
    so process pools can pickle it).

    ``trace_ref``/``batch_ref`` are either shared-memory
    :class:`~repro.sim.planes.PlaneManifest` handles (the fabric fast path:
    attach zero-copy, adopt the published batch into the provider's
    materialization cache so the worker never re-materializes) or plain
    pickled fallbacks (``batch_ref=None`` means materialize locally, exactly
    the pre-fabric behaviour).  A batch plane that fails to attach degrades
    to local materialization; a trace plane that fails to attach raises —
    there is nothing to simulate — and the caller falls back to serial.

    Telemetry is recorded into a unit-local sink installed as the
    process-global active sink for the unit's duration, so fabric-adjacent
    bookkeeping (cache adoption recomputes, engine spans) lands in the
    snapshot that travels back for the deterministic fold.
    """
    (value, trace_ref, batch_ref, make_predictor, make_provider, engine,
     use_cache, collect_telemetry) = payload
    if isinstance(trace_ref, planes.PlaneManifest):
        trace = planes.attach_trace(trace_ref)
    else:
        trace = trace_ref
    sink = Telemetry() if collect_telemetry else None
    scope = use_telemetry(sink) if sink is not None else nullcontext()
    with scope:
        if isinstance(batch_ref, planes.PlaneManifest):
            try:
                batch = planes.attach_batch(batch_ref)
                seed_plane_cache(batch_ref.provider_key, trace, batch)
            except planes.PlaneError:
                pass  # worker materializes locally; slower, still correct
        provider = make_provider() if make_provider is not None else None
        result = simulate(make_predictor(value), trace, provider,
                          engine=engine, use_cache=use_cache, telemetry=sink)
    return result.misp_per_ki, (sink.snapshot() if sink is not None else None)


def _probe_provider(make_provider, engine):
    """The provider instance whose planes should be published for a sweep:
    the caller's factory when given, the batched engine's default otherwise
    (``None`` when the resolved engine would never consume a batch)."""
    if make_provider is not None:
        try:
            return make_provider()
        except Exception:
            return None  # the broken factory will surface in the workers
    try:
        if isinstance(get_engine(engine), BatchedEngine):
            return BranchGhistProvider()
    except ValueError:
        pass  # unknown engine name: let simulate raise it, not the fabric
    return None


def sweep_parallel(make_predictor: Callable[[int], Predictor],
                   values: Iterable[int],
                   traces: dict[str, Trace],
                   make_provider: Callable[[], HistoryProvider] | None = None,
                   engine: str | None = None,
                   max_workers: int | None = None,
                   use_cache: bool | None = None,
                   telemetry: NullTelemetry | None = None,
                   start_method: str | None = None,
                   ) -> list[SweepPoint]:
    """:func:`sweep` fanned out over the persistent work-stealing pool.

    The unit of work is one ``(point, trace)`` simulation — finer than the
    whole-point tasks of earlier revisions, so a slow benchmark no longer
    straggles an entire point while other workers idle.  Before dispatch,
    every trace's columns and (when the provider can be keyed) its
    materialized information-vector planes are published once into the
    shared-memory plane fabric (:mod:`repro.sim.planes`); workers attach
    them zero-copy, so neither trace arrays nor batches are pickled per
    task and each trace's planes are materialized exactly once
    process-wide.  Where shared memory is unavailable the payloads carry
    pickled traces instead — slower, never wrong.

    The pool itself is persistent and keyed by ``(max_workers,
    start_method)`` (:func:`repro.sim.scheduler.get_scheduler`), with the
    start method chosen explicitly per platform (``fork`` on Linux,
    ``spawn`` on macOS/Windows) unless overridden via ``start_method``.
    When the pool cannot be used (unpicklable work, restricted platform),
    the sweep transparently degrades to the serial path with a warning, so
    callers never lose results.  ``engine`` must be a registered engine
    *name* here, as engine instances do not cross process boundaries.

    Results come back in ``values`` order with ``per_benchmark`` rebuilt in
    ``traces`` order, and per-unit telemetry snapshots fold back into
    ``telemetry`` deterministically (units merge per point in trace order,
    points merge in values order) — a parallel sweep's points and merged
    counters are identical to a serial :func:`sweep` of the same work.
    """
    values = list(values)
    names = list(traces)
    sink = get_telemetry(telemetry)
    if max_workers is not None and max_workers <= 1 or not values or not names:
        return sweep(make_predictor, values, traces, make_provider, engine,
                     use_cache, telemetry=sink)
    try:
        store = planes.get_plane_store()
        probe = _probe_provider(make_provider, engine)
        trace_refs: dict[str, object] = {}
        batch_refs: dict[str, planes.PlaneManifest | None] = {}
        for name in names:
            trace = traces[name]
            manifest = store.publish_trace(trace)
            trace_refs[name] = manifest if manifest is not None else trace
            batch_refs[name] = (store.publish_batch(trace, probe)
                                if probe is not None else None)
        payloads = [(value, trace_refs[name], batch_refs[name],
                     make_predictor, make_provider, engine, use_cache,
                     sink.enabled)
                    for value in values for name in names]
        pool = sweep_scheduler.get_scheduler(max_workers, start_method)
        outcomes = pool.run(_simulate_unit, payloads)
    except Exception as error:  # unpicklable factory, broken pool, ...
        warnings.warn(
            f"sweep_parallel falling back to serial sweep: {error!r}",
            RuntimeWarning, stacklevel=2)
        return sweep(make_predictor, values, traces, make_provider, engine,
                     use_cache, telemetry=sink)
    points = []
    for index, value in enumerate(values):
        units = outcomes[index * len(names):(index + 1) * len(names)]
        per_benchmark = {name: misp for name, (misp, _) in zip(names, units)}
        mean = sum(per_benchmark.values()) / len(per_benchmark)
        points.append(SweepPoint(value=value, mean_misp_per_ki=mean,
                                 per_benchmark=per_benchmark))
        if sink.enabled:
            point_sink = Telemetry()
            for _, snapshot in units:
                if snapshot is not None:
                    point_sink.merge_snapshot(snapshot)
            sink.merge_snapshot(point_sink.snapshot())
    return points


def best_history_length(make_predictor: Callable[[int], Predictor],
                        lengths: Iterable[int],
                        traces: dict[str, Trace],
                        make_provider: Callable[[], HistoryProvider] | None = None,
                        engine: str | SimulationEngine | None = None,
                        use_cache: bool | None = None,
                        ) -> SweepPoint:
    """The history length minimising mean misp/KI across the benchmark set
    (the paper's per-configuration "best history length")."""
    points = sweep(make_predictor, lengths, traces, make_provider, engine,
                   use_cache)
    if not points:
        raise ValueError("no history lengths supplied")
    return min(points, key=lambda point: point.mean_misp_per_ki)
