"""Parameter sweeps, primarily over history length.

The paper repeatedly reports "best history length" results (Fig 5) and the
penalty of clamping history to log2(table size) (Fig 6).  These helpers run
a predictor factory across a range of a parameter and locate the best
configuration by mean misp/KI across benchmarks.

Sweeps are the workload the engine layer exists for: every point is an
independent (predictor, trace) simulation, so points vectorize through the
batched engine (``engine="batched"``) and fan out across processes
(:func:`sweep_parallel`).
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.history.providers import HistoryProvider
from repro.predictors.base import Predictor
from repro.sim.driver import simulate
from repro.sim.engine import SimulationEngine
from repro.traces.model import Trace

__all__ = ["SweepPoint", "sweep", "sweep_parallel", "best_history_length"]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated parameter value."""

    value: int
    mean_misp_per_ki: float
    per_benchmark: dict[str, float]


def _evaluate_point(make_predictor: Callable[[int], Predictor],
                    value: int,
                    traces: dict[str, Trace],
                    make_provider: Callable[[], HistoryProvider] | None,
                    engine: str | SimulationEngine | None,
                    use_cache: bool | None = None) -> SweepPoint:
    """Evaluate one sweep point (module-level so process pools can run it)."""
    per_benchmark = {}
    for name, trace in traces.items():
        provider = make_provider() if make_provider is not None else None
        result = simulate(make_predictor(value), trace, provider,
                          engine=engine, use_cache=use_cache)
        per_benchmark[name] = result.misp_per_ki
    mean = sum(per_benchmark.values()) / len(per_benchmark)
    return SweepPoint(value=value, mean_misp_per_ki=mean,
                      per_benchmark=per_benchmark)


def sweep(make_predictor: Callable[[int], Predictor],
          values: Iterable[int],
          traces: dict[str, Trace],
          make_provider: Callable[[], HistoryProvider] | None = None,
          engine: str | SimulationEngine | None = None,
          use_cache: bool | None = None,
          ) -> list[SweepPoint]:
    """Evaluate ``make_predictor(value)`` for every value, on every trace."""
    return [_evaluate_point(make_predictor, value, traces, make_provider,
                            engine, use_cache)
            for value in values]


def sweep_parallel(make_predictor: Callable[[int], Predictor],
                   values: Iterable[int],
                   traces: dict[str, Trace],
                   make_provider: Callable[[], HistoryProvider] | None = None,
                   engine: str | None = None,
                   max_workers: int | None = None,
                   use_cache: bool | None = None,
                   ) -> list[SweepPoint]:
    """:func:`sweep` with points fanned out over a process pool.

    Sweep points are embarrassingly parallel (each simulates fresh predictor
    state), so they distribute across ``max_workers`` processes; results come
    back in ``values`` order.  The factories and traces must be picklable
    (module-level functions / ``functools.partial`` — not lambdas); when the
    pool cannot be used (unpicklable work, restricted platform), the sweep
    transparently degrades to the serial path with a warning, so callers
    never lose results.  ``engine`` must be a registered engine *name* here,
    as engine instances do not cross process boundaries.
    """
    values = list(values)
    if max_workers is not None and max_workers <= 1:
        return sweep(make_predictor, values, traces, make_provider, engine,
                     use_cache)
    try:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(_evaluate_point, make_predictor, value,
                                   traces, make_provider, engine, use_cache)
                       for value in values]
            return [future.result() for future in futures]
    except Exception as error:  # unpicklable factory, broken pool, ...
        warnings.warn(
            f"sweep_parallel falling back to serial sweep: {error!r}",
            RuntimeWarning, stacklevel=2)
        return sweep(make_predictor, values, traces, make_provider, engine,
                     use_cache)


def best_history_length(make_predictor: Callable[[int], Predictor],
                        lengths: Iterable[int],
                        traces: dict[str, Trace],
                        make_provider: Callable[[], HistoryProvider] | None = None,
                        engine: str | SimulationEngine | None = None,
                        use_cache: bool | None = None,
                        ) -> SweepPoint:
    """The history length minimising mean misp/KI across the benchmark set
    (the paper's per-configuration "best history length")."""
    points = sweep(make_predictor, lengths, traces, make_provider, engine,
                   use_cache)
    if not points:
        raise ValueError("no history lengths supplied")
    return min(points, key=lambda point: point.mean_misp_per_ki)
