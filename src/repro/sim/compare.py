"""Multi-predictor, multi-benchmark comparison runs.

Every evaluation figure in the paper is a grid: predictors (or predictor
configurations) x benchmarks, measured in misp/KI.  :func:`run_comparison`
produces that grid; :class:`ComparisonTable` holds it and renders the same
rows/series the paper's bar charts report.

Predictors and providers are passed as *factories* because every
(configuration, benchmark) cell needs fresh state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.history.providers import HistoryProvider
from repro.predictors.base import Predictor
from repro.sim.driver import simulate
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import SimulationResult
from repro.traces.model import Trace

__all__ = ["ComparisonTable", "run_comparison"]

PredictorFactory = Callable[[], Predictor]
ProviderFactory = Callable[[], HistoryProvider]


@dataclass
class ComparisonTable:
    """misp/KI results for configurations x benchmarks.

    ``cells[config_name][benchmark_name]`` is a
    :class:`~repro.sim.metrics.SimulationResult`.
    """

    config_names: list[str]
    benchmark_names: list[str]
    cells: dict[str, dict[str, SimulationResult]] = field(default_factory=dict)

    def result(self, config: str, benchmark: str) -> SimulationResult:
        return self.cells[config][benchmark]

    def misp_per_ki(self, config: str, benchmark: str) -> float:
        return self.cells[config][benchmark].misp_per_ki

    def series(self, config: str) -> list[float]:
        """misp/KI across benchmarks for one configuration (one bar series
        of a paper figure)."""
        return [self.misp_per_ki(config, benchmark)
                for benchmark in self.benchmark_names]

    def mean(self, config: str) -> float:
        """Arithmetic-mean misp/KI over benchmarks for one configuration."""
        series = self.series(config)
        return sum(series) / len(series)

    def render(self, title: str = "", precision: int = 3) -> str:
        """ASCII table: one row per benchmark, one column per config, plus
        an arithmetic-mean row — the textual equivalent of the paper's bar
        charts."""
        width = max(12, *(len(name) + 2 for name in self.config_names))
        bench_width = max(10, *(len(name) + 2 for name in self.benchmark_names))
        lines = []
        if title:
            lines.append(title)
        header = "".join([f"{'benchmark':<{bench_width}}"]
                         + [f"{name:>{width}}" for name in self.config_names])
        lines.append(header)
        lines.append("-" * len(header))
        for benchmark in self.benchmark_names:
            row = [f"{benchmark:<{bench_width}}"]
            for config in self.config_names:
                row.append(f"{self.misp_per_ki(config, benchmark):>{width}.{precision}f}")
            lines.append("".join(row))
        lines.append("-" * len(header))
        mean_row = [f"{'amean':<{bench_width}}"]
        for config in self.config_names:
            mean_row.append(f"{self.mean(config):>{width}.{precision}f}")
        lines.append("".join(mean_row))
        return "\n".join(lines)

    def wall_seconds(self, config: str | None = None) -> float:
        """Total simulation wall-clock, for one configuration or the grid."""
        configs = [config] if config is not None else self.config_names
        return sum(self.cells[name][benchmark].wall_seconds
                   for name in configs
                   for benchmark in self.benchmark_names)

    def to_dict(self) -> dict:
        """JSON-friendly dump (used by the bench harness to record runs)."""
        return {
            "configs": self.config_names,
            "benchmarks": self.benchmark_names,
            "misp_per_ki": {
                config: {benchmark: self.misp_per_ki(config, benchmark)
                         for benchmark in self.benchmark_names}
                for config in self.config_names
            },
            "wall_seconds": {
                config: {
                    benchmark: self.cells[config][benchmark].wall_seconds
                    for benchmark in self.benchmark_names
                }
                for config in self.config_names
            },
            "engine": {
                config: {benchmark: self.cells[config][benchmark].engine
                         for benchmark in self.benchmark_names}
                for config in self.config_names
            },
            "cache": {
                config: {benchmark: self.cells[config][benchmark].cache
                         for benchmark in self.benchmark_names}
                for config in self.config_names
            },
        }


def run_comparison(configs: dict[str, PredictorFactory],
                   traces: dict[str, Trace],
                   provider_factory: ProviderFactory | None = None,
                   provider_factories: dict[str, ProviderFactory] | None = None,
                   engine: str | SimulationEngine | None = None,
                   use_cache: bool | None = None,
                   ) -> ComparisonTable:
    """Simulate every configuration on every trace.

    ``provider_factory`` applies to all configurations; alternatively
    ``provider_factories`` maps configuration name to its own provider
    factory (Fig 7 varies the information vector per configuration while
    the predictor stays fixed).  ``engine`` selects the simulation engine
    for every cell (name, instance, or None for the environment default);
    ``use_cache`` opts the cells into the persistent result cache (None
    defers to ``REPRO_RESULT_CACHE``).
    """
    table = ComparisonTable(config_names=list(configs),
                            benchmark_names=list(traces))
    for config_name, predictor_factory in configs.items():
        table.cells[config_name] = {}
        for benchmark_name, trace in traces.items():
            if provider_factories is not None:
                provider = provider_factories[config_name]()
            elif provider_factory is not None:
                provider = provider_factory()
            else:
                provider = None
            result = simulate(predictor_factory(), trace, provider,
                              engine=engine, use_cache=use_cache)
            table.cells[config_name][benchmark_name] = result
    return table
