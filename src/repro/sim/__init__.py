"""Trace-driven simulation: engines, driver, metrics, comparisons, sweeps."""

from repro.sim.compare import ComparisonTable, run_comparison
from repro.sim.driver import simulate
from repro.sim.engine import (
    ENGINES,
    BatchedEngine,
    ScalarEngine,
    SimulationEngine,
    default_engine_name,
    get_engine,
    register_engine,
)
from repro.sim.interference import InterferenceReport, measure_interference
from repro.sim.metrics import (
    SimulationResult,
    aggregate_misp_per_ki,
    misp_per_ki,
)
from repro.sim.planes import (
    PlaneError,
    PlaneManifest,
    PlaneSpec,
    PlaneStore,
    attach_batch,
    attach_trace,
    get_plane_store,
    release_plane_store,
)
from repro.sim.scheduler import (
    SchedulerUnavailable,
    SweepScheduler,
    default_start_method,
    get_scheduler,
    shutdown_schedulers,
)
from repro.sim.sweep import (
    SweepPoint,
    best_history_length,
    sweep,
    sweep_parallel,
)

__all__ = [
    "ComparisonTable",
    "run_comparison",
    "simulate",
    "ENGINES",
    "BatchedEngine",
    "ScalarEngine",
    "SimulationEngine",
    "default_engine_name",
    "get_engine",
    "register_engine",
    "InterferenceReport",
    "measure_interference",
    "SimulationResult",
    "aggregate_misp_per_ki",
    "misp_per_ki",
    "PlaneError",
    "PlaneManifest",
    "PlaneSpec",
    "PlaneStore",
    "attach_batch",
    "attach_trace",
    "get_plane_store",
    "release_plane_store",
    "SchedulerUnavailable",
    "SweepScheduler",
    "default_start_method",
    "get_scheduler",
    "shutdown_schedulers",
    "SweepPoint",
    "best_history_length",
    "sweep",
    "sweep_parallel",
]
