"""Trace-driven simulation: engines, driver, metrics, comparisons, sweeps."""

from repro.sim.compare import ComparisonTable, run_comparison
from repro.sim.driver import simulate
from repro.sim.engine import (
    ENGINES,
    BatchedEngine,
    ScalarEngine,
    SimulationEngine,
    default_engine_name,
    get_engine,
    register_engine,
)
from repro.sim.interference import InterferenceReport, measure_interference
from repro.sim.metrics import (
    SimulationResult,
    aggregate_misp_per_ki,
    misp_per_ki,
)
from repro.sim.sweep import (
    SweepPoint,
    best_history_length,
    sweep,
    sweep_parallel,
)

__all__ = [
    "ComparisonTable",
    "run_comparison",
    "simulate",
    "ENGINES",
    "BatchedEngine",
    "ScalarEngine",
    "SimulationEngine",
    "default_engine_name",
    "get_engine",
    "register_engine",
    "InterferenceReport",
    "measure_interference",
    "SimulationResult",
    "aggregate_misp_per_ki",
    "misp_per_ki",
    "SweepPoint",
    "best_history_length",
    "sweep",
    "sweep_parallel",
]
