"""Shared-memory plane fabric: zero-copy trace and batch planes for sweeps.

A sweep evaluates many predictor configurations over a fixed benchmark set.
Everything trace-side is *point-invariant*: the trace columns themselves,
and each provider's materialized :class:`~repro.history.providers.VectorBatch`
planes, depend only on (trace content, provider configuration) — never on
the swept parameter.  Before this module, ``sweep_parallel`` pickled every
trace into every worker task and every worker re-materialized the same
planes for every point it touched.

The fabric instead publishes those read-only planes once, into
``multiprocessing.shared_memory`` segments:

* **publisher side** (:class:`PlaneStore`) — the sweeping process packs the
  arrays into one segment per plane set and hands out a
  :class:`PlaneManifest` (segment name + per-plane name/dtype/shape/offset
  and a content digest).  Manifests are tiny and picklable; they are what
  crosses the pool boundary instead of the arrays.
* **consumer side** (:func:`attach_trace` / :func:`attach_batch`) — workers
  map the segment and wrap the planes zero-copy via
  ``np.ndarray(buffer=shm.buf, offset=...)``; the first attach verifies
  every plane's digest against the manifest and raises :class:`PlaneError`
  on mismatch.  Attachments are refcounted per segment
  (:func:`attach`/:func:`detach`) and cached, so a worker maps each
  segment once regardless of how many work units reference it.

Lifecycle rules: the publishing process owns its segments — it unlinks them
at :meth:`PlaneStore.release`, at interpreter exit (``atexit``), and on
SIGINT/SIGTERM (a chaining handler installed with the first store).
Ownership is pid-guarded, so fork-inherited copies of the store in pool
workers can never unlink the parent's segments.  Consumers only ever
``close`` their mappings.  When shared memory is unavailable (no ``/dev/shm``,
permissions, exotic platforms) the store marks itself unavailable after the
first failure and callers transparently fall back to pickling the arrays —
the fabric is a fast path, never a requirement.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import signal
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from weakref import WeakKeyDictionary

import numpy as np

try:  # posix-only: unlink-by-name for segments interrupted mid-construction
    import _posixshmem
except ImportError:  # pragma: no cover - non-posix platforms
    _posixshmem = None

from repro.history.providers import HistoryProvider, VectorBatch
from repro.obs import get_telemetry
from repro.traces.io import trace_columns
from repro.traces.model import Trace

__all__ = ["SEGMENT_PREFIX", "PlaneError", "PlaneSpec", "PlaneManifest",
           "PlaneStore", "get_plane_store", "release_plane_store",
           "attach", "detach", "attach_trace", "attach_batch",
           "release_attachments"]

SEGMENT_PREFIX = "repro-planes"
"""Segment-name prefix: leak checks (CI's ``/dev/shm`` scan, the SIGINT
cleanup test) grep for it, so every fabric segment must carry it."""

_ALIGN = 64
"""Plane start alignment within a segment, in bytes (cache-line friendly,
and satisfies any dtype's alignment requirement)."""

_BATCH_COLUMNS = ("history", "address", "branch_pc", "path", "takens",
                  "bank")


class PlaneError(RuntimeError):
    """A plane segment cannot be attached (missing, truncated, or its
    content does not match the manifest digest)."""


def _digest(data: bytes | memoryview) -> str:
    return hashlib.blake2b(data, digest_size=16).hexdigest()


@dataclass(frozen=True)
class PlaneSpec:
    """One named array inside a segment."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int
    digest: str


@dataclass(frozen=True)
class PlaneManifest:
    """Everything a consumer needs to attach one plane set: the segment
    name, its planes, and — for batch planes — the provider configuration
    key they were materialized under."""

    segment: str
    nbytes: int
    kind: str  # "trace" | "batch"
    label: str  # the trace name (diagnostics + Trace reconstruction)
    planes: tuple[PlaneSpec, ...]
    provider_key: tuple | None = None


# -- publisher side ----------------------------------------------------------


class PlaneStore:
    """Owner of published plane segments (one store per sweeping process).

    Publishing is idempotent per (trace object, plane set): trace planes
    key on the trace object, batch planes on (trace object, provider
    plane key) — so a 16-point sweep publishes (and materializes) each
    trace's planes exactly once, process-wide, no matter how many points
    or workers consume them.
    """

    def __init__(self) -> None:
        self._owner_pid = os.getpid()
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._trace_manifests: WeakKeyDictionary = WeakKeyDictionary()
        self._batch_manifests: WeakKeyDictionary = WeakKeyDictionary()
        self._counter = 0
        self._unavailable_reason: str | None = None
        # Reentrant: the SIGINT/SIGTERM cleanup runs release() on the main
        # thread and must not deadlock against an interrupted publish that
        # already holds the lock.
        self._lock = threading.RLock()

    @property
    def available(self) -> bool:
        """Whether shared memory works here (False after the first failed
        segment creation; the store never retries a broken platform)."""
        return self._unavailable_reason is None

    @property
    def segments(self) -> tuple[str, ...]:
        """Names of the segments this store currently owns."""
        return tuple(self._segments)

    def publish_trace(self, trace: Trace) -> PlaneManifest | None:
        """Publish the trace's columns; returns its manifest (cached per
        trace object) or ``None`` when shared memory is unavailable."""
        with self._lock:
            manifest = self._trace_manifests.get(trace)
            if manifest is not None:
                return manifest
            manifest = self._publish(trace_columns(trace), kind="trace",
                                     label=trace.name)
            if manifest is not None:
                self._trace_manifests[trace] = manifest
            return manifest

    def publish_batch(self, trace: Trace,
                      provider: HistoryProvider) -> PlaneManifest | None:
        """Materialize ``provider``'s planes for ``trace`` (at most once
        per (trace, provider configuration), process-wide) and publish
        them.  Returns ``None`` when the provider cannot be keyed or
        materialized, or when shared memory is unavailable — consumers then
        materialize locally, exactly as before the fabric existed."""
        key = provider.plane_key()
        if key is None:
            return None
        with self._lock:
            per_trace = self._batch_manifests.setdefault(trace, {})
            if key in per_trace:
                return per_trace[key]
            batch = provider.materialize(trace)
            if batch is None:
                per_trace[key] = None  # don't retry a hopeless materialize
                return None
            columns = [(name, getattr(batch, name))
                       for name in _BATCH_COLUMNS
                       if getattr(batch, name) is not None]
            manifest = self._publish(columns, kind="batch", label=trace.name,
                                     provider_key=key)
            per_trace[key] = manifest
            return manifest

    def _publish(self, columns, kind: str, label: str,
                 provider_key: tuple | None = None) -> PlaneManifest | None:
        if not self.available:
            return None
        layout = []
        offset = 0
        for name, array in columns:
            array = np.ascontiguousarray(array)
            offset = (offset + _ALIGN - 1) & ~(_ALIGN - 1)
            layout.append((name, array, offset))
            offset += array.nbytes
        total = max(offset, 1)
        segment_name = f"{SEGMENT_PREFIX}-{self._owner_pid}-{self._counter}"
        self._counter += 1
        # The name is claimed BEFORE construction: the /dev/shm file exists
        # as soon as SharedMemory.__init__ calls shm_open, so a signal
        # landing inside the constructor (e.g. during its resource-tracker
        # registration) would otherwise strand a segment release() has
        # never heard of.  release() unlinks a still-None entry by name.
        self._segments[segment_name] = None
        try:
            segment = shared_memory.SharedMemory(name=segment_name,
                                                 create=True, size=total)
        except (OSError, ValueError) as error:
            self._segments.pop(segment_name, None)
            self._unavailable_reason = repr(error)
            return None
        # Replaced before the copy loop, so a signal-triggered release()
        # that interrupts it still unlinks this (half-filled) segment.
        self._segments[segment_name] = segment
        specs = []
        for name, array, start in layout:
            view = np.ndarray(array.shape, dtype=array.dtype,
                              buffer=segment.buf, offset=start)
            view[...] = array
            specs.append(PlaneSpec(name=name, dtype=str(array.dtype),
                                   shape=tuple(array.shape), offset=start,
                                   digest=_digest(array.tobytes())))
        sink = get_telemetry(None)
        if sink.enabled:
            sink.count(f"planes.{kind}_published")
            sink.count("planes.bytes_published", total)
        return PlaneManifest(segment=segment_name, nbytes=total, kind=kind,
                             label=label, planes=tuple(specs),
                             provider_key=provider_key)

    def release(self) -> None:
        """Close and unlink every owned segment (idempotent).

        Pid-guarded: a fork-inherited copy of the store only drops its
        bookkeeping — unlinking is the creating process's job alone.
        """
        owner = os.getpid() == self._owner_pid
        with self._lock:
            segments = list(self._segments.items())
            self._segments.clear()
            self._trace_manifests = WeakKeyDictionary()
            self._batch_manifests = WeakKeyDictionary()
        for name, segment in segments:
            if segment is None:
                # Claimed in _publish but interrupted inside the
                # SharedMemory constructor: no object to close, but the
                # shm file may already exist — unlink it by name.
                if owner and _posixshmem is not None:
                    try:
                        _posixshmem.shm_unlink("/" + name)
                    except (FileNotFoundError, OSError):
                        pass
                continue
            try:
                segment.close()
            except (BufferError, OSError):  # pragma: no cover - defensive
                pass
            if owner:
                try:
                    segment.unlink()
                except (FileNotFoundError, OSError):
                    pass


_STORE: PlaneStore | None = None
_STORE_LOCK = threading.RLock()


def get_plane_store() -> PlaneStore:
    """The process-wide plane store (created on first use, released at
    interpreter exit and on SIGINT/SIGTERM)."""
    global _STORE
    with _STORE_LOCK:
        if _STORE is None or _STORE._owner_pid != os.getpid():
            _STORE = PlaneStore()
            atexit.register(_STORE.release)
            _install_signal_cleanup()
        return _STORE


def release_plane_store() -> None:
    """Release the process-wide store's segments now (safe to call when no
    store exists; a later :func:`get_plane_store` starts a fresh one)."""
    global _STORE
    with _STORE_LOCK:
        store, _STORE = _STORE, None
    if store is not None:
        atexit.unregister(store.release)
        store.release()


_SIGNAL_CLEANUP_INSTALLED = False


def _install_signal_cleanup() -> None:
    """Chain a cleanup step onto SIGINT/SIGTERM so interrupted sweeps never
    leak ``/dev/shm`` segments.  The previous handler (or default
    behaviour) still runs afterwards; installation is best-effort — off the
    main thread (where ``signal.signal`` raises) the ``atexit`` hook is the
    only cleanup, which still covers SIGINT's KeyboardInterrupt unwind."""
    global _SIGNAL_CLEANUP_INSTALLED
    if _SIGNAL_CLEANUP_INSTALLED:
        return
    _SIGNAL_CLEANUP_INSTALLED = True

    def chain(signum, frame, previous):
        release_plane_store()
        release_attachments()
        if callable(previous):
            previous(signum, frame)
        else:  # SIG_DFL (or SIG_IGN on a signal we should die from anyway)
            signal.signal(signum, signal.SIG_DFL)
            signal.raise_signal(signum)

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous = signal.getsignal(signum)
            signal.signal(
                signum,
                lambda num, frame, prev=previous: chain(num, frame, prev))
        except (ValueError, OSError):  # non-main thread / unsupported
            pass


# -- consumer side -----------------------------------------------------------


class _Attachment:
    __slots__ = ("segment", "arrays", "refs")

    def __init__(self, segment, arrays) -> None:
        self.segment = segment
        self.arrays = arrays
        self.refs = 1


_ATTACH_LOCK = threading.RLock()
_ATTACHMENTS: dict[str, _Attachment] = {}
_ATTACHED_TRACES: dict[str, Trace] = {}
_ATTACHED_BATCHES: dict[str, VectorBatch] = {}


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering it with the
    resource tracker.

    Until Python 3.13's ``track=False``, attaching registers the segment
    exactly like creating it does (bpo-39959) — so a spawn-started worker's
    private tracker would unlink the segment when the worker exits, while
    the publisher still uses it, and an explicit ``unregister`` from a
    fork-started worker would instead delete the *publisher's* entry from
    the shared tracker.  Suppressing the registration for the duration of
    the attach sidesteps both: only the publishing process ever holds a
    tracker entry, matching the ownership rule (publisher unlinks,
    consumers only close).
    """
    from multiprocessing import resource_tracker
    original = resource_tracker.register

    def register(path, rtype):  # pragma: no cover - trivial shim
        if rtype != "shared_memory":
            original(path, rtype)

    with _TRACKER_PATCH_LOCK:
        resource_tracker.register = register
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


_TRACKER_PATCH_LOCK = threading.Lock()


def attach(manifest: PlaneManifest, verify: bool = True) -> dict[str, np.ndarray]:
    """Map the manifest's segment and return its planes as read-only,
    zero-copy arrays.  Repeated attaches of the same segment share one
    mapping and bump its refcount; content digests are verified on the
    first attach only (the planes are immutable afterwards by contract).

    Raises :class:`PlaneError` when the segment is missing or a plane's
    content does not match its manifest digest.
    """
    with _ATTACH_LOCK:
        attachment = _ATTACHMENTS.get(manifest.segment)
        if attachment is not None:
            attachment.refs += 1
            return attachment.arrays
    try:
        segment = _attach_untracked(manifest.segment)
    except (FileNotFoundError, OSError, ValueError) as error:
        raise PlaneError(
            f"cannot attach plane segment {manifest.segment!r}: "
            f"{error!r}") from error
    arrays: dict[str, np.ndarray] = {}
    try:
        if segment.size < manifest.nbytes:
            raise PlaneError(
                f"plane segment {manifest.segment!r} is "
                f"{segment.size} bytes, manifest says {manifest.nbytes}")
        for spec in manifest.planes:
            view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                              buffer=segment.buf, offset=spec.offset)
            if verify and _digest(view.tobytes()) != spec.digest:
                raise PlaneError(
                    f"plane {spec.name!r} in segment {manifest.segment!r} "
                    f"does not match its manifest digest")
            view.setflags(write=False)  # shared planes are immutable
            arrays[spec.name] = view
    except PlaneError:
        arrays.clear()
        segment.close()
        raise
    with _ATTACH_LOCK:
        racing = _ATTACHMENTS.get(manifest.segment)
        if racing is not None:  # pragma: no cover - concurrent attach race
            racing.refs += 1
            arrays = racing.arrays
        else:
            _ATTACHMENTS[manifest.segment] = _Attachment(segment, arrays)
    return arrays


def detach(segment_name: str) -> None:
    """Drop one reference to an attached segment; the mapping closes when
    the count reaches zero.  Unknown segments are ignored."""
    with _ATTACH_LOCK:
        attachment = _ATTACHMENTS.get(segment_name)
        if attachment is None:
            return
        attachment.refs -= 1
        if attachment.refs > 0:
            return
        del _ATTACHMENTS[segment_name]
        _ATTACHED_TRACES.pop(segment_name, None)
        _ATTACHED_BATCHES.pop(segment_name, None)
    attachment.arrays.clear()
    try:
        attachment.segment.close()
    except BufferError:  # a consumer still holds a view; OS cleanup wins
        pass


def attach_trace(manifest: PlaneManifest) -> Trace:
    """The :class:`Trace` built zero-copy over an attached trace-plane
    segment, cached per segment (so every work unit of a sweep sees the
    same object — which is what keys the materialization caches)."""
    with _ATTACH_LOCK:
        cached = _ATTACHED_TRACES.get(manifest.segment)
    if cached is not None:
        return cached
    arrays = attach(manifest)
    trace = Trace(manifest.label, arrays["starts"],
                  arrays["num_instructions"], arrays["kinds"],
                  arrays["takens"], arrays["next_starts"])
    with _ATTACH_LOCK:
        _ATTACHED_TRACES.setdefault(manifest.segment, trace)
        return _ATTACHED_TRACES[manifest.segment]


def attach_batch(manifest: PlaneManifest) -> VectorBatch:
    """The :class:`~repro.history.providers.VectorBatch` over an attached
    batch-plane segment, cached per segment."""
    with _ATTACH_LOCK:
        cached = _ATTACHED_BATCHES.get(manifest.segment)
    if cached is not None:
        return cached
    arrays = attach(manifest)
    batch = VectorBatch(history=arrays["history"], address=arrays["address"],
                        branch_pc=arrays["branch_pc"], path=arrays["path"],
                        takens=arrays["takens"], bank=arrays.get("bank"))
    with _ATTACH_LOCK:
        _ATTACHED_BATCHES.setdefault(manifest.segment, batch)
        return _ATTACHED_BATCHES[manifest.segment]


def release_attachments() -> None:
    """Close every attachment this process holds (idempotent; used by the
    signal cleanup path and tests)."""
    with _ATTACH_LOCK:
        attachments = list(_ATTACHMENTS.values())
        _ATTACHMENTS.clear()
        _ATTACHED_TRACES.clear()
        _ATTACHED_BATCHES.clear()
    for attachment in attachments:
        attachment.arrays.clear()
        try:
            attachment.segment.close()
        except BufferError:  # pragma: no cover - stray consumer views
            pass


atexit.register(release_attachments)
