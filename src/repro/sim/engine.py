"""Pluggable simulation engines: the predict/update hot path.

Every experiment in the reproduction funnels through one (predictor, trace)
simulation.  This module makes that hot path a swappable component:

* :class:`ScalarEngine` — the reference.  Walks the fetch-block stream one
  branch at a time through ``predictor.access`` with immediate update,
  exactly the paper's Section 8.1.1 methodology.
* :class:`BatchedEngine` — the throughput engine.  For predictors that opt
  in via :class:`~repro.predictors.base.BatchCapable` and providers that can
  materialize their information vectors trace-side
  (:meth:`~repro.history.providers.HistoryProvider.materialize`), the whole
  trace's index streams are precomputed over numpy arrays and the counter
  traffic is resolved in vectorized passes (see
  :meth:`repro.common.counters.SplitCounterArray.batch_access`), falling
  back to scalar replay only where true sequential dependence exists.

The contract is strict: ``BatchedEngine`` must produce **bit-identical**
``mispredictions``/``branches`` to ``ScalarEngine`` (and equivalent final
table state) for every opted-in predictor; configurations that cannot honor
that guarantee transparently fall back to the scalar path (or raise when the
engine was constructed with ``strict=True``).

Engines are registered by name; :func:`get_engine` resolves names, instances
and the ``REPRO_SIM_ENGINE`` environment variable (the hook through which
the experiment and bench layers route every run).
"""

from __future__ import annotations

import os
import time
from typing import Callable

import numpy as np

from repro.history.providers import BranchGhistProvider, HistoryProvider
from repro.obs import NULL_TELEMETRY, NullTelemetry, get_telemetry
from repro.predictors.base import BatchCapable, Predictor
from repro.sim.metrics import SimulationResult
from repro.traces.fetch import fetch_blocks_for
from repro.traces.model import Trace

__all__ = ["SimulationEngine", "ScalarEngine", "BatchedEngine", "ENGINES",
           "register_engine", "get_engine", "default_engine_name"]

ENGINE_ENV_VAR = "REPRO_SIM_ENGINE"


class SimulationEngine:
    """Protocol: run one predictor over one trace, returning the result.

    ``run`` owns the whole simulation — history/provider walking, the
    predict/update loop, misprediction accounting, and wall-clock
    bookkeeping.  Engines must be semantically interchangeable: same
    (predictor, trace, provider, warmup) in, same counts out.
    """

    name: str = "engine"

    def run(self, predictor: Predictor, trace: Trace,
            provider: HistoryProvider | None = None,
            warmup_branches: int = 0,
            telemetry: NullTelemetry | None = None) -> SimulationResult:
        """Run one simulation.

        ``telemetry`` is an opt-in observability sink (``None`` resolves the
        process-global active sink, which defaults to disabled).  When a
        recording sink is active the engine attaches it to the predictor for
        the duration of the run, times its phases as spans, and stamps the
        sink's snapshot onto ``SimulationResult.telemetry``.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class ScalarEngine(SimulationEngine):
    """The reference engine: per-branch immediate update, branch order.

    This is the original ``simulate`` loop; every other engine is measured
    against its counts.
    """

    name = "scalar"

    def run(self, predictor: Predictor, trace: Trace,
            provider: HistoryProvider | None = None,
            warmup_branches: int = 0,
            telemetry: NullTelemetry | None = None) -> SimulationResult:
        if provider is None:
            provider = BranchGhistProvider()
        sink = get_telemetry(telemetry)
        if sink.enabled:
            predictor.attach_telemetry(sink)
        started = time.perf_counter()
        mispredictions = 0
        branches = 0
        begin_block = provider.begin_block
        end_block = provider.end_block
        access = predictor.access
        try:
            with sink.span("scalar_run"):
                for block in fetch_blocks_for(trace):
                    if block.branch_pcs:
                        vectors = begin_block(block)
                        for vector, taken in zip(vectors,
                                                 block.branch_outcomes):
                            prediction = access(vector, taken)
                            branches += 1
                            if (branches > warmup_branches
                                    and prediction != taken):
                                mispredictions += 1
                    end_block(block)
        finally:
            if sink.enabled:
                predictor.attach_telemetry(NULL_TELEMETRY)
        wall_seconds = time.perf_counter() - started
        if sink.enabled:
            sink.count("engine.scalar_runs")
            sink.count("engine.branches", branches)
        return SimulationResult(
            predictor_name=predictor.name,
            trace_name=trace.name,
            branches=branches - min(warmup_branches, branches),
            mispredictions=mispredictions,
            instructions=trace.instruction_count,
            wall_seconds=wall_seconds,
            engine=self.name,
            telemetry=sink.snapshot() if sink.enabled else None,
        )


class BatchedEngine(SimulationEngine):
    """Vectorized engine for :class:`BatchCapable` predictors.

    The provider materializes the whole trace's information vectors as
    numpy columns (history self-dependence is a pure function of earlier
    trace outcomes, so it is resolved trace-side); the predictor then
    replays the batch with vectorized index computation and chunked numpy
    counter passes.  Configurations outside the batchable envelope fall back
    to :class:`ScalarEngine` — or raise if ``strict``.
    """

    name = "batched"

    def __init__(self, strict: bool = False,
                 replay_kernel: str = "fast") -> None:
        self.strict = strict
        self.replay_kernel = replay_kernel
        self._fallback = ScalarEngine()

    def _explain_fallback(self, predictor: Predictor,
                          provider: HistoryProvider) -> str | None:
        if not isinstance(predictor, BatchCapable):
            return f"{predictor.name} does not implement BatchCapable"
        if not predictor.batch_supported():
            return (f"{predictor.name} configuration cannot run batched "
                    f"(e.g. non-vectorized index scheme or an extreme "
                    f"hysteresis sharing ratio)")
        return None

    def run(self, predictor: Predictor, trace: Trace,
            provider: HistoryProvider | None = None,
            warmup_branches: int = 0,
            telemetry: NullTelemetry | None = None) -> SimulationResult:
        if provider is None:
            provider = BranchGhistProvider()
        sink = get_telemetry(telemetry)
        started = time.perf_counter()
        with sink.span("batched_run"):
            reason = self._explain_fallback(predictor, provider)
            if reason:
                batch = None
            else:
                with sink.span("materialize"):
                    batch = provider.materialize(trace)
            if batch is None:
                if reason is None:
                    reason = (f"{type(provider).__name__} cannot materialize "
                              f"its information vectors")
                if self.strict:
                    raise ValueError(f"batched engine unavailable: {reason}")
                if sink.enabled:
                    sink.count("engine.batched_fallbacks")
                return self._fallback.run(predictor, trace, provider,
                                          warmup_branches, telemetry=sink)
            if sink.enabled:
                predictor.attach_telemetry(sink)
            predictor.set_replay_kernel(self.replay_kernel)
            try:
                with sink.span("replay"):
                    predictions = predictor.batch_access(batch)
            finally:
                if sink.enabled:
                    predictor.attach_telemetry(NULL_TELEMETRY)
        branches = len(batch)
        counted = predictions[warmup_branches:] != batch.takens[warmup_branches:]
        mispredictions = int(np.count_nonzero(counted))
        wall_seconds = time.perf_counter() - started
        if sink.enabled:
            sink.count("engine.batched_runs")
            sink.count("engine.branches", branches)
        return SimulationResult(
            predictor_name=predictor.name,
            trace_name=trace.name,
            branches=branches - min(warmup_branches, branches),
            mispredictions=mispredictions,
            instructions=trace.instruction_count,
            wall_seconds=wall_seconds,
            engine=self.name,
            telemetry=sink.snapshot() if sink.enabled else None,
        )


def _batched_compat_engine() -> BatchedEngine:
    """The batched engine pinned to the original (pre-fabric) replay
    kernel.  Count-identical to ``"batched"`` by contract; it exists so
    benchmarks can measure the fast kernel against an honest reproduction
    of the previous hot path, and keys result-cache entries under its own
    engine name for provenance."""
    engine = BatchedEngine(replay_kernel="compat")
    engine.name = "batched-compat"
    return engine


ENGINES: dict[str, Callable[[], SimulationEngine]] = {
    "scalar": ScalarEngine,
    "batched": BatchedEngine,
    "batched-compat": _batched_compat_engine,
}


def register_engine(name: str,
                    factory: Callable[[], SimulationEngine]) -> None:
    """Register an engine factory under ``name`` (overwrites allowed, so
    tests and extensions can shadow the built-ins)."""
    ENGINES[name] = factory


def default_engine_name() -> str:
    """The engine used when callers do not choose one: the
    ``REPRO_SIM_ENGINE`` environment variable, defaulting to ``scalar``."""
    return os.environ.get(ENGINE_ENV_VAR, "").strip() or "scalar"


def get_engine(engine: str | SimulationEngine | None = None
               ) -> SimulationEngine:
    """Resolve an engine argument: an instance passes through, a name is
    looked up in the registry, ``None`` resolves the environment default."""
    if isinstance(engine, SimulationEngine):
        return engine
    name = engine if engine is not None else default_engine_name()
    try:
        factory = ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown simulation engine {name!r}; registered engines: "
            f"{sorted(ENGINES)}") from None
    return factory()
