"""Persistent on-disk simulation-result cache.

A simulation's counts are a pure function of (predictor configuration,
trace content, provider configuration, warmup, engine): re-running a figure
after unrelated edits repeats work whose inputs did not change.  This
module fingerprints those five inputs into a content-addressed key and
stores each :class:`~repro.sim.metrics.SimulationResult` as a small JSON
file, so repeated experiment invocations skip simulation entirely.

Key scheme
----------
``result_key`` feeds one SHA-256 with:

* the **predictor** — structural fingerprint of the live object: type
  name plus every attribute, recursively (table sizes, history lengths,
  update policy, index-scheme parameters, and the initial counter bytes,
  so ``init_taken`` variants key differently);
* the **trace content** — the four trace columns hashed once and memoized
  per :class:`~repro.traces.model.Trace` object (the trace *name* is
  deliberately excluded: identical content keys identically);
* the **provider** — same structural fingerprint (``None`` keys as its own
  distinct value);
* ``warmup_branches`` and the resolved **engine name** (engines are
  count-equivalent by contract, but keying them separately keeps the cache
  honest if that contract is ever violated and keeps ``wall_seconds``
  provenance attributable).

Objects containing unhashable leaves (open files, callables, ...) raise
:class:`UncacheableError`; the driver then simply runs uncached.

The cache activates when ``REPRO_RESULT_CACHE`` is truthy (the experiment
runner enables it by default); files live under ``REPRO_RESULT_CACHE_DIR``
(default ``.result_cache/``).  Corrupt or unreadable entries are treated as
misses and rewritten.  Each result's ``cache`` field records provenance:
``"off"``, ``"miss"`` (simulated, then stored) or ``"hit"``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
import types
from collections import deque
from pathlib import Path
from weakref import WeakKeyDictionary

import numpy as np

from repro.obs import NullTelemetry, get_telemetry
from repro.sim.metrics import SimulationResult
from repro.traces.model import Trace

__all__ = ["CACHE_ENV_VAR", "CACHE_DIR_ENV_VAR", "UncacheableError",
           "cache_enabled", "cache_dir", "result_key", "load", "store"]

CACHE_ENV_VAR = "REPRO_RESULT_CACHE"
CACHE_DIR_ENV_VAR = "REPRO_RESULT_CACHE_DIR"
_DEFAULT_DIR = ".result_cache"
_TRUTHY = ("1", "true", "yes", "on")


class UncacheableError(TypeError):
    """An input's fingerprint cannot be computed deterministically."""


def cache_enabled() -> bool:
    """Whether the environment opts into result caching."""
    return os.environ.get(CACHE_ENV_VAR, "").strip().lower() in _TRUTHY


def cache_dir() -> Path:
    """The cache directory (not created until a result is stored)."""
    env = os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
    return Path(env) if env else Path.cwd() / _DEFAULT_DIR


# -- fingerprinting ----------------------------------------------------------

_TRACE_HASHES: WeakKeyDictionary = WeakKeyDictionary()

_TELEMETRY_ATTRS = frozenset({"_telemetry", "_tele_names", "_replay_kernel"})
"""Attribute names carrying telemetry or replay-kernel wiring.  Excluded
from structural fingerprints: attaching (or detaching) an observability
sink never changes what a simulation computes, and the replay-kernel
selector (``fast`` vs ``compat``) only picks between bit-identical
implementations — so neither may change a cache key.  (Engine *names* still
key separately: ``batched`` vs ``batched-compat`` entries stay attributable
even though their counts agree by contract.)"""


def _trace_content_digest(trace: Trace) -> bytes:
    """Content hash of the four trace columns, memoized per trace object."""
    digest = _TRACE_HASHES.get(trace)
    if digest is None:
        hasher = hashlib.sha256()
        for column in (trace.starts, trace.num_instructions, trace.kinds,
                       trace.takens):
            hasher.update(str(column.dtype).encode())
            hasher.update(np.ascontiguousarray(column).tobytes())
        digest = hasher.digest()
        _TRACE_HASHES[trace] = digest
    return digest


def _update(hasher, value, memo: dict[int, int]) -> None:
    """Feed one value into the hash, recursively and type-tagged.

    ``memo`` maps ``id`` of already-visited composite objects to their
    visit ordinal, so shared substructure and cycles hash deterministically
    (the ordinal depends only on traversal order, never on addresses).
    """
    if value is None:
        hasher.update(b"\x00N")
    elif isinstance(value, bool):
        hasher.update(b"\x00b1" if value else b"\x00b0")
    elif isinstance(value, int):
        hasher.update(b"\x00i" + str(value).encode())
    elif isinstance(value, float):
        hasher.update(b"\x00f" + repr(value).encode())
    elif isinstance(value, str):
        encoded = value.encode()
        hasher.update(b"\x00s" + str(len(encoded)).encode() + b":" + encoded)
    elif isinstance(value, (bytes, bytearray)):
        hasher.update(b"\x00y" + str(len(value)).encode() + b":")
        hasher.update(bytes(value))
    elif isinstance(value, np.ndarray):
        hasher.update(b"\x00a" + str(value.dtype).encode()
                      + repr(value.shape).encode())
        hasher.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, (list, tuple, deque)):
        tag = {list: b"\x00L", tuple: b"\x00T", deque: b"\x00D"}[type(value)]
        hasher.update(tag + str(len(value)).encode())
        for item in value:
            _update(hasher, item, memo)
    elif isinstance(value, dict):
        try:
            items = sorted(value.items())
        except TypeError as error:
            raise UncacheableError(
                f"dict with unsortable keys: {error}") from None
        hasher.update(b"\x00M" + str(len(items)).encode())
        for key, item in items:
            _update(hasher, key, memo)
            _update(hasher, item, memo)
    elif isinstance(value, NullTelemetry):
        # Observability sinks (recording or null) are bookkeeping, not a
        # simulation input: fingerprint them all as one fixed tag.
        hasher.update(b"\x00G")
    elif isinstance(value, (types.ModuleType, types.FunctionType,
                            types.BuiltinFunctionType, types.MethodType,
                            types.LambdaType, type)):
        raise UncacheableError(f"cannot fingerprint {value!r}")
    else:
        ordinal = memo.get(id(value))
        if ordinal is not None:
            hasher.update(b"\x00R" + str(ordinal).encode())
            return
        memo[id(value)] = len(memo)
        cls = type(value)
        hasher.update(b"\x00O" + cls.__module__.encode() + b"."
                      + cls.__qualname__.encode())
        attrs: dict[str, object] = {}
        for klass in cls.__mro__:
            for slot in getattr(klass, "__slots__", ()):
                if slot not in attrs and hasattr(value, slot):
                    attrs[slot] = getattr(value, slot)
        attrs.update(getattr(value, "__dict__", {}))
        for name in sorted(attrs):
            if name in _TELEMETRY_ATTRS:
                continue
            _update(hasher, name, memo)
            _update(hasher, attrs[name], memo)


def result_key(predictor, trace: Trace, provider, warmup_branches: int,
               engine_name: str) -> str:
    """The content-addressed cache key for one simulation's inputs.

    Raises :class:`UncacheableError` when any input resists deterministic
    fingerprinting; callers should then skip the cache for that run.
    """
    hasher = hashlib.sha256()
    memo: dict[int, int] = {}
    hasher.update(b"repro-result-v1")
    _update(hasher, predictor, memo)
    hasher.update(b"\x00trace")
    hasher.update(_trace_content_digest(trace))
    _update(hasher, provider, memo)
    _update(hasher, int(warmup_branches), memo)
    _update(hasher, engine_name, memo)
    return hasher.hexdigest()


# -- storage -----------------------------------------------------------------


def load(key: str,
         telemetry: NullTelemetry | None = None) -> SimulationResult | None:
    """The cached result for ``key`` (with ``cache="hit"``), or ``None``.

    Unreadable or structurally invalid entries count as misses.  Telemetry
    distinguishes the three outcomes: ``result_cache.hits`` (entry present
    and valid, with the load latency in ``result_cache.hit_seconds``),
    ``result_cache.cold_misses`` (no entry) and ``result_cache.corrupt``
    (entry present but unreadable — the driver will re-simulate and
    overwrite it).
    """
    sink = get_telemetry(telemetry)
    path = cache_dir() / f"{key}.json"
    started = time.perf_counter()
    try:
        text = path.read_text()
    except OSError:
        if sink.enabled:
            sink.count("result_cache.cold_misses")
        return None
    try:
        payload = json.loads(text)
        result = SimulationResult(
            predictor_name=payload["predictor_name"],
            trace_name=payload["trace_name"],
            branches=int(payload["branches"]),
            mispredictions=int(payload["mispredictions"]),
            instructions=int(payload["instructions"]),
            wall_seconds=float(payload["wall_seconds"]),
            engine=payload["engine"],
            cache="hit",
        )
    except (ValueError, KeyError, TypeError):
        if sink.enabled:
            sink.count("result_cache.corrupt")
        return None
    if sink.enabled:
        sink.count("result_cache.hits")
        sink.observe("result_cache.hit_seconds",
                     time.perf_counter() - started)
    return result


def store(key: str, result: SimulationResult,
          telemetry: NullTelemetry | None = None) -> None:
    """Persist one result atomically (write-to-temp, then rename)."""
    sink = get_telemetry(telemetry)
    directory = cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    payload = dataclasses.asdict(result)
    payload.pop("cache", None)  # provenance is per-invocation, not stored
    payload.pop("telemetry", None)  # snapshots describe the producing run
    path = directory / f"{key}.json"
    temporary = directory / f".{key}.{os.getpid()}.tmp"
    temporary.write_text(json.dumps(payload, indent=2, sort_keys=True))
    os.replace(temporary, path)
    if sink.enabled:
        sink.count("result_cache.stores")
