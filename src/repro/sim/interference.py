"""Aliasing / interference analysis for predictor tables.

The de-aliased predictor lineage the EV8 belongs to (e-gskew, agree,
bi-mode, YAGS — Section 4 of the paper) exists because multiple
(address, history) pairs sharing a table entry "cause the predictions for
two or more branch substreams to intermingle" [28, 24].  This module
measures that directly: for a given index function and trace, it classifies
every access as

* **cold** — first touch of the entry,
* **non-aliased** — the entry was last touched by the same
  (branch, history) pair,
* **neutral aliasing** — last touched by a different pair whose outcome
  agreed,
* **destructive aliasing** — last touched by a different pair whose
  outcome disagreed (the interference that flips counters).

The paper's design rules (Section 7.2: spread accesses uniformly; 7.5:
avoid two tables conflicting on the same pair) are quantitative claims
about exactly these categories — this is the measurement tool behind them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.history.providers import HistoryProvider, InfoVector
from repro.traces.fetch import fetch_blocks_for
from repro.traces.model import Trace

__all__ = ["InterferenceReport", "measure_interference"]

IndexFunction = Callable[[InfoVector], int]


@dataclass(frozen=True)
class InterferenceReport:
    """Access classification for one (index function, trace) pair."""

    entries: int
    accesses: int
    cold: int
    non_aliased: int
    neutral: int
    destructive: int
    entries_touched: int

    @property
    def destructive_fraction(self) -> float:
        """Share of accesses hitting an entry last owned by a disagreeing
        stream — the damage a de-aliased scheme is built to absorb."""
        if self.accesses == 0:
            return 0.0
        return self.destructive / self.accesses

    @property
    def aliased_fraction(self) -> float:
        """Share of accesses following a different (pc, history) pair."""
        if self.accesses == 0:
            return 0.0
        return (self.neutral + self.destructive) / self.accesses

    @property
    def utilization(self) -> float:
        """Fraction of table entries ever touched."""
        return self.entries_touched / self.entries

    def __str__(self) -> str:
        return (f"InterferenceReport(entries={self.entries}, "
                f"accesses={self.accesses}, "
                f"aliased={self.aliased_fraction:.1%}, "
                f"destructive={self.destructive_fraction:.1%}, "
                f"utilization={self.utilization:.1%})")


def measure_interference(index_function: IndexFunction, entries: int,
                         trace: Trace, provider: HistoryProvider,
                         history_mask: int | None = None,
                         ) -> InterferenceReport:
    """Classify every access a predictor table would see.

    Parameters
    ----------
    index_function:
        Maps an information vector to a table index (``% entries`` applied
        defensively).
    entries:
        Table size.
    trace / provider:
        The workload and its information-vector source.
    history_mask:
        Mask applied to the history when identifying a (pc, history)
        *stream* — defaults to all bits.  Streams are what "own" entries.
    """
    if entries <= 0:
        raise ValueError(f"table needs at least one entry, got {entries}")
    last_owner: dict[int, tuple[int, int]] = {}
    last_outcome: dict[int, bool] = {}
    cold = non_aliased = neutral = destructive = accesses = 0
    for block in fetch_blocks_for(trace):
        if block.branch_pcs:
            vectors = provider.begin_block(block)
            for vector, taken in zip(vectors, block.branch_outcomes):
                index = index_function(vector) % entries
                history = (vector.history if history_mask is None
                           else vector.history & history_mask)
                owner = (vector.branch_pc, history)
                accesses += 1
                previous = last_owner.get(index)
                if previous is None:
                    cold += 1
                elif previous == owner:
                    non_aliased += 1
                elif last_outcome[index] == taken:
                    neutral += 1
                else:
                    destructive += 1
                last_owner[index] = owner
                last_outcome[index] = taken
        provider.end_block(block)
    return InterferenceReport(
        entries=entries,
        accesses=accesses,
        cold=cold,
        non_aliased=non_aliased,
        neutral=neutral,
        destructive=destructive,
        entries_touched=len(last_owner),
    )
