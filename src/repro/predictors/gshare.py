"""gshare predictor (McFarling, 1993).

A single 2-bit counter table indexed by the XOR of the branch address and
the global history.  The paper's Fig 5 uses a 1M-entry (2 Mbit) gshare with
its best history length (20) as the classic "aliased" global-history
baseline that the de-aliased schemes are measured against.
"""

from __future__ import annotations

import numpy as np

from repro.common.bitops import mask
from repro.common.counters import SplitCounterArray
from repro.history.providers import InfoVector, VectorBatch
from repro.indexing.fold import gshare_index, gshare_index_vec
from repro.predictors.base import BatchCapable, Predictor

__all__ = ["GsharePredictor"]


class GsharePredictor(BatchCapable, Predictor):
    """Global-history XOR address indexed counter table."""

    def __init__(self, entries: int, history_length: int,
                 name: str | None = None) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a power of two, got {entries}")
        if history_length < 0:
            raise ValueError(
                f"history length must be >= 0, got {history_length}")
        self.entries = entries
        self.history_length = history_length
        self.index_bits = entries.bit_length() - 1
        self.name = name or f"gshare-{entries // 1024}K-h{history_length}"
        self._counters = SplitCounterArray(entries)
        self._history_mask = mask(history_length)

    def _index(self, vector: InfoVector) -> int:
        return gshare_index(vector.branch_pc, vector.history,
                            self.history_length, self.index_bits)

    def predict(self, vector: InfoVector) -> bool:
        return self._counters.predict(self._index(vector))

    def update(self, vector: InfoVector, taken: bool) -> None:
        self._counters.update(self._index(vector), taken)

    def access(self, vector: InfoVector, taken: bool) -> bool:
        index = self._index(vector)
        prediction = self._counters.predict(index)
        self._counters.update(index, taken)
        return prediction

    def batch_supported(self) -> bool:
        return self._counters.batch_supported

    def batch_access(self, batch: VectorBatch) -> np.ndarray:
        indices = gshare_index_vec(batch.branch_pc, batch.history,
                                   self.history_length, self.index_bits)
        return self._counters.batch_access(indices, batch.takens)

    @property
    def storage_bits(self) -> int:
        return self._counters.storage_bits
