"""A cascaded predictor hierarchy — the paper's forward-looking proposal.

The conclusion of the paper sketches the post-EV8 direction: "one may
consider further extending the hierarchy of predictors with increased
accuracies and delays: line predictor, global history branch prediction,
backup branch predictor. The backup branch predictor would deliver its
prediction later than the global history branch predictor."

This module implements that hierarchy as a composite predictor:

* a **primary** predictor (e.g. the EV8) answers at its pipeline latency;
* a **backup** predictor (e.g. a perceptron over longer history, or a
  local-history component) answers ``backup_delay`` cycles later;
* when the backup disagrees with the primary, the front end is redirected
  at the backup's latency — cheaper than a full misprediction if the
  backup is right, pure loss if it is wrong.

Accuracy-wise the composite predicts with the backup's answer whenever it
chooses to override (filtered by a confidence chooser, as in the cascaded
predictors of Driesen & Hölzle [3]); the cost model exposes how many
overrides were useful, so the "is a backup worth its delay" question of
the conclusion can be answered quantitatively
(:meth:`CascadePredictor.pipeline_cost`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.counters import SplitCounterArray
from repro.history.providers import InfoVector
from repro.predictors.base import Predictor

__all__ = ["CascadeStatistics", "CascadePredictor"]


@dataclass
class CascadeStatistics:
    """Override bookkeeping for one simulation."""

    predictions: int = 0
    overrides: int = 0
    good_overrides: int = 0
    """Backup overrode a wrong primary prediction."""
    bad_overrides: int = 0
    """Backup overrode a correct primary prediction."""
    primary_mispredictions: int = 0
    final_mispredictions: int = 0

    @property
    def override_precision(self) -> float:
        if self.overrides == 0:
            return 0.0
        return self.good_overrides / self.overrides


class CascadePredictor(Predictor):
    """primary + delayed backup with a confidence-gated override.

    Parameters
    ----------
    primary / backup:
        Any two predictors; the backup is only consulted architecturally
        (every prediction, as the hardware would), but only *overrides*
        when the gate counter trusts it for this branch.
    chooser_entries:
        PC-indexed 2-bit counters gating overrides: trained towards "trust
        the backup" whenever backup and primary disagree and the backup was
        right.
    primary_delay / backup_delay:
        Pipeline latencies in cycles, used by :meth:`pipeline_cost`.
    misprediction_penalty:
        Full branch misprediction penalty in cycles (the EV8's minimum is
        14, Section 1).
    """

    def __init__(self, primary: Predictor, backup: Predictor,
                 chooser_entries: int = 4096,
                 primary_delay: int = 2, backup_delay: int = 4,
                 misprediction_penalty: int = 14,
                 name: str | None = None) -> None:
        if chooser_entries <= 0 or chooser_entries & (chooser_entries - 1):
            raise ValueError(
                f"chooser_entries must be a power of two, got {chooser_entries}")
        if not primary_delay <= backup_delay <= misprediction_penalty:
            raise ValueError(
                "expected primary_delay <= backup_delay <= penalty, got "
                f"{primary_delay}/{backup_delay}/{misprediction_penalty}")
        self.primary = primary
        self.backup = backup
        self.chooser = SplitCounterArray(chooser_entries)
        self._chooser_mask = chooser_entries - 1
        self.primary_delay = primary_delay
        self.backup_delay = backup_delay
        self.misprediction_penalty = misprediction_penalty
        self.name = name or f"cascade({primary.name}->{backup.name})"
        self.statistics = CascadeStatistics()

    def _chooser_index(self, vector: InfoVector) -> int:
        return (vector.branch_pc >> 2) & self._chooser_mask

    def predict(self, vector: InfoVector) -> bool:
        primary = self.primary.predict(vector)
        backup = self.backup.predict(vector)
        if backup != primary and self.chooser.predict(
                self._chooser_index(vector)):
            return backup
        return primary

    def update(self, vector: InfoVector, taken: bool) -> None:
        self._access(vector, taken)

    def access(self, vector: InfoVector, taken: bool) -> bool:
        return self._access(vector, taken)

    def _access(self, vector: InfoVector, taken: bool) -> bool:
        chooser_index = self._chooser_index(vector)
        primary = self.primary.access(vector, taken)
        backup = self.backup.access(vector, taken)
        trust = self.chooser.predict(chooser_index)
        override = backup != primary and trust
        final = backup if override else primary
        stats = self.statistics
        stats.predictions += 1
        if primary != taken:
            stats.primary_mispredictions += 1
        if final != taken:
            stats.final_mispredictions += 1
        if override:
            stats.overrides += 1
            if backup == taken:
                stats.good_overrides += 1
            else:
                stats.bad_overrides += 1
        # Gate training: only disagreements teach the chooser anything.
        if backup != primary:
            self.chooser.update(chooser_index, backup == taken)
        return final

    def pipeline_cost(self) -> float:
        """Average branch-resolution stall cycles per prediction.

        A useful override converts a full misprediction penalty into a
        ``backup_delay`` redirect; a bad override *introduces* a redirect
        plus the eventual penalty.  This is the currency in which the
        conclusion's "increased accuracies and delays" trade-off is paid.
        """
        stats = self.statistics
        if stats.predictions == 0:
            return 0.0
        cycles = 0
        cycles += stats.final_mispredictions * self.misprediction_penalty
        # Every override redirects the front end at the backup's latency,
        # whether or not it turns out correct.
        cycles += stats.overrides * self.backup_delay
        return cycles / stats.predictions

    @property
    def storage_bits(self) -> int:
        return (self.primary.storage_bits + self.backup.storage_bits
                + self.chooser.storage_bits)
