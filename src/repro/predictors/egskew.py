"""e-gskew: the enhanced skewed branch predictor (Michaud, Seznec & Uhlig,
ISCA 1997).

Three banks of 2-bit counters vote by majority.  "Enhanced" means (a) one of
the banks — BIM — is indexed by address only, acting as a bimodal fallback,
and (b) a *partial* update policy: on a correct prediction only the banks
that voted correctly are strengthened; on a misprediction all banks train.

e-gskew is both a Fig 5-era standalone predictor and the sub-structure of
2Bc-gskew (Section 4.1: "Bank BIM is the bimodal predictor, but is also part
of the e-gskew predictor").
"""

from __future__ import annotations

import numpy as np

from repro.common.bitops import mask
from repro.common.counters import SplitCounterArray
from repro.common.replay import REPLAY_CHUNK, uncoupled_positions
from repro.history.providers import InfoVector, VectorBatch
from repro.indexing.fold import info_word, info_word_vec
from repro.indexing.skew import skew_index, skew_index_vec
from repro.predictors.base import BatchCapable, Predictor

__all__ = ["EGskewPredictor"]


class EGskewPredictor(BatchCapable, Predictor):
    """Three-bank majority-vote skewed predictor with partial update.

    Parameters
    ----------
    entries:
        Entries per bank (all three banks equal, as in the original paper).
    history_length:
        Global history length used by banks G0 and G1.  ``g0_history_length``
        optionally de-synchronises the two (Section 4.5 shows different
        lengths help slightly).
    """

    def __init__(self, entries: int, history_length: int,
                 g0_history_length: int | None = None,
                 update_policy: str = "partial",
                 name: str | None = None) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a power of two, got {entries}")
        if update_policy not in ("partial", "total"):
            raise ValueError(
                f"update_policy must be 'partial' or 'total', got "
                f"{update_policy!r}")
        self.entries = entries
        self.index_bits = entries.bit_length() - 1
        self.history_length = history_length
        self.g0_history_length = (history_length if g0_history_length is None
                                  else g0_history_length)
        self.update_policy = update_policy
        self.name = name or f"egskew-3x{entries // 1024}K-h{history_length}"
        self.bim = SplitCounterArray(entries)
        self.g0 = SplitCounterArray(entries)
        self.g1 = SplitCounterArray(entries)

    def _indices(self, vector: InfoVector) -> tuple[int, int, int]:
        bim_index = (vector.branch_pc >> 2) & mask(self.index_bits)
        g0_word = info_word(vector.address, vector.history,
                            self.g0_history_length, 2 * self.index_bits)
        g1_word = info_word(vector.address, vector.history,
                            self.history_length, 2 * self.index_bits)
        return (bim_index,
                skew_index(1, g0_word, self.index_bits),
                skew_index(2, g1_word, self.index_bits))

    def predict(self, vector: InfoVector) -> bool:
        bim_i, g0_i, g1_i = self._indices(vector)
        votes = (int(self.bim.predict(bim_i)) + int(self.g0.predict(g0_i))
                 + int(self.g1.predict(g1_i)))
        return votes >= 2

    def update(self, vector: InfoVector, taken: bool) -> None:
        indices = self._indices(vector)
        self._train(indices, taken)

    def access(self, vector: InfoVector, taken: bool) -> bool:
        indices = self._indices(vector)
        bim_i, g0_i, g1_i = indices
        p_bim = self.bim.predict(bim_i)
        p_g0 = self.g0.predict(g0_i)
        p_g1 = self.g1.predict(g1_i)
        prediction = (int(p_bim) + int(p_g0) + int(p_g1)) >= 2
        self._train_with_reads(indices, (p_bim, p_g0, p_g1), prediction, taken)
        return prediction

    def _train(self, indices, taken: bool) -> None:
        bim_i, g0_i, g1_i = indices
        reads = (self.bim.predict(bim_i), self.g0.predict(g0_i),
                 self.g1.predict(g1_i))
        prediction = sum(map(int, reads)) >= 2
        self._train_with_reads(indices, reads, prediction, taken)

    def batch_indices(self, batch: VectorBatch) -> tuple[np.ndarray,
                                                         np.ndarray,
                                                         np.ndarray]:
        """Vectorized :meth:`_indices` over a whole batch (bit-identical)."""
        bim = (batch.branch_pc >> np.uint64(2)) & np.uint64(mask(self.index_bits))
        g0_word = info_word_vec(batch.address, batch.history,
                                self.g0_history_length, 2 * self.index_bits)
        g1_word = info_word_vec(batch.address, batch.history,
                                self.history_length, 2 * self.index_bits)
        return (bim, skew_index_vec(1, g0_word, self.index_bits),
                skew_index_vec(2, g1_word, self.index_bits))

    def batch_access(self, batch: VectorBatch,
                     chunk: int = REPLAY_CHUNK) -> np.ndarray:
        """Batched replay: chunked, serializing only coupled positions.

        The index streams (the pure, expensive part) are precomputed
        vectorized.  The partial-update policy couples the three banks
        through the majority vote, but only between positions that actually
        share a counter entry: within each chunk, positions unique in all
        three banks replay in one vectorized pass and the colliding
        remainder replays scalar in stream order (see
        :mod:`repro.common.replay`).
        """
        banks = (self.bim, self.g0, self.g1)
        streams = [stream.astype(np.int64, copy=False)
                   & np.int64(bank.size - 1)
                   for stream, bank in zip(self.batch_indices(batch), banks)]
        takens = batch.takens
        n = len(batch)
        predictions = np.empty(n, dtype=np.bool_)
        for lo in range(0, n, max(chunk, 1)):
            hi = min(lo + max(chunk, 1), n)
            self._replay_chunk([stream[lo:hi] for stream in streams],
                               takens[lo:hi], predictions[lo:hi])
        return predictions

    def _replay_chunk(self, indices: list[np.ndarray], takens: np.ndarray,
                      out: np.ndarray) -> None:
        banks = (self.bim, self.g0, self.g1)
        uncoupled = uncoupled_positions(*(
            stream & np.int64(bank.hysteresis_size - 1)
            for stream, bank in zip(indices, banks)))
        telemetry = self._telemetry
        if telemetry.enabled:
            telemetry.count("replay.positions", len(takens))
            telemetry.count("replay.coupled",
                            len(takens) - int(np.count_nonzero(uncoupled)))
        if uncoupled.any():
            selected = [stream[uncoupled] for stream in indices]
            taken_u = takens[uncoupled]
            reads = [bank.predict_many(stream)
                     for bank, stream in zip(banks, selected)]
            prediction = (reads[0].astype(np.int8) + reads[1]
                          + reads[2]) >= 2
            if self.update_policy == "total":
                update = np.ones(len(taken_u), dtype=np.bool_)
            else:
                update = prediction != taken_u
            for bank, stream, read in zip(banks, selected, reads):
                bank.train_many_unique(stream, taken_u,
                                       strengthen=~update & (read == taken_u),
                                       update=update)
            out[uncoupled] = prediction
        coupled = np.nonzero(~uncoupled)[0]
        if not len(coupled):
            return
        train = self._train_with_reads
        bim_predict = self.bim.predict
        g0_predict = self.g0.predict
        g1_predict = self.g1.predict
        for position, bim_i, g0_i, g1_i, taken in zip(
                coupled.tolist(), indices[0][coupled].tolist(),
                indices[1][coupled].tolist(), indices[2][coupled].tolist(),
                takens[coupled].tolist()):
            p_bim = bim_predict(bim_i)
            p_g0 = g0_predict(g0_i)
            p_g1 = g1_predict(g1_i)
            prediction = (int(p_bim) + int(p_g0) + int(p_g1)) >= 2
            train((bim_i, g0_i, g1_i), (p_bim, p_g0, p_g1), prediction,
                  taken)
            out[position] = prediction
        return

    def _train_with_reads(self, indices, reads, prediction: bool,
                          taken: bool) -> None:
        banks = (self.bim, self.g0, self.g1)
        if self.update_policy == "total" or prediction != taken:
            for bank, index in zip(banks, indices):
                bank.update(index, taken)
            return
        # Partial update on a correct prediction: strengthen only the banks
        # that participated in the correct majority.
        for bank, index, read in zip(banks, indices, reads):
            if read == taken:
                bank.strengthen(index, taken)

    @property
    def storage_bits(self) -> int:
        return (self.bim.storage_bits + self.g0.storage_bits
                + self.g1.storage_bits)
