"""GAs: global two-level adaptive predictor (Yeh & Patt, 1992).

The global history register selects, concatenated with low PC bits, an entry
in a table of 2-bit counters: the history occupies the high index bits and
the address the low bits (no XOR — this is the pre-gshare "concatenation"
scheme the paper cites as a conventional aliased predictor [27]).
"""

from __future__ import annotations

import numpy as np

from repro.common.bitops import mask, xor_fold
from repro.common.counters import SplitCounterArray
from repro.history.providers import InfoVector, VectorBatch
from repro.indexing.fold import xor_fold_vec
from repro.predictors.base import BatchCapable, Predictor

__all__ = ["GAsPredictor"]


class GAsPredictor(BatchCapable, Predictor):
    """Two-level GAs: index = history bits concatenated with PC bits."""

    def __init__(self, entries: int, history_length: int,
                 name: str | None = None) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a power of two, got {entries}")
        self.entries = entries
        self.index_bits = entries.bit_length() - 1
        if not 0 <= history_length <= self.index_bits:
            raise ValueError(
                f"GAs history length must be in 0..{self.index_bits} "
                f"(the history is concatenated, not hashed), got "
                f"{history_length}")
        self.history_length = history_length
        self.address_bits = self.index_bits - history_length
        self.name = name or f"gas-{entries // 1024}K-h{history_length}"
        self._counters = SplitCounterArray(entries)

    def _index(self, vector: InfoVector) -> int:
        address_part = (vector.branch_pc >> 2) & mask(self.address_bits)
        if self.address_bits < 20:
            # Fold the rest of the PC in so small partitions still
            # discriminate addresses (standard set-index folding).
            address_part = xor_fold((vector.branch_pc >> 2),
                                    self.address_bits) if self.address_bits else 0
        history_part = vector.history & mask(self.history_length)
        return (history_part << self.address_bits) | address_part

    def predict(self, vector: InfoVector) -> bool:
        return self._counters.predict(self._index(vector))

    def update(self, vector: InfoVector, taken: bool) -> None:
        self._counters.update(self._index(vector), taken)

    def access(self, vector: InfoVector, taken: bool) -> bool:
        index = self._index(vector)
        prediction = self._counters.predict(index)
        self._counters.update(index, taken)
        return prediction

    def batch_supported(self) -> bool:
        return self._counters.batch_supported

    def batch_access(self, batch: VectorBatch) -> np.ndarray:
        pc_words = batch.branch_pc >> np.uint64(2)
        if self.address_bits >= 20:
            address_part = pc_words & np.uint64(mask(self.address_bits))
        elif self.address_bits:
            address_part = xor_fold_vec(pc_words, self.address_bits)
        else:
            address_part = np.zeros_like(pc_words)
        history_part = batch.history & np.uint64(mask(self.history_length))
        indices = (history_part << np.uint64(self.address_bits)) | address_part
        return self._counters.batch_access(indices, batch.takens)

    @property
    def storage_bits(self) -> int:
        return self._counters.storage_bits
