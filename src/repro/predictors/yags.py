"""YAGS: Yet Another Global Scheme (Eden & Mudge, MICRO 1998).

Section 8.2 of the EV8 paper describes the exact configuration compared in
Fig 5: a bimodal choice table and two *partially tagged* direction caches
(6-bit tags).  When the bimodal table predicts taken, the **not-taken**
cache is probed (it stores only the exceptions to the bias); on a tag hit
the cache's counter provides the prediction, on a miss the bimodal does.
Symmetrically for a not-taken bimodal prediction.

The EV8 paper finds "no clear winner between the YAGS predictor and
2Bc-gskew", but notes YAGS's tag read-and-match of 16 predictions in 1.5
cycles would have been unimplementable.
"""

from __future__ import annotations

from repro.common.bitops import mask
from repro.common.counters import SplitCounterArray
from repro.history.providers import InfoVector
from repro.indexing.fold import gshare_index
from repro.predictors.base import Predictor

__all__ = ["YagsPredictor"]


class _DirectionCache:
    """A partially tagged cache of exception counters."""

    __slots__ = ("entries", "tag_bits", "_counters", "_tags", "_valid")

    def __init__(self, entries: int, tag_bits: int, init_taken: bool) -> None:
        self.entries = entries
        self.tag_bits = tag_bits
        self._counters = SplitCounterArray(entries, init_taken=init_taken)
        self._tags = [0] * entries
        self._valid = [False] * entries

    def probe(self, index: int, tag: int) -> bool | None:
        """Counter direction on a tag hit, ``None`` on a miss."""
        if self._valid[index] and self._tags[index] == tag:
            return self._counters.predict(index)
        return None

    def train_hit(self, index: int, taken: bool) -> None:
        self._counters.update(index, taken)

    def insert(self, index: int, tag: int, taken: bool) -> None:
        """Allocate (or re-purpose) the entry for a new exception."""
        self._tags[index] = tag
        self._valid[index] = True
        self._counters.set_counter(index, 2 if taken else 1)  # weak outcome

    @property
    def storage_bits(self) -> int:
        # counters + tags + valid bits
        return (self._counters.storage_bits + self.entries * self.tag_bits
                + self.entries)


class YagsPredictor(Predictor):
    """Bimodal choice table + two partially tagged exception caches."""

    def __init__(self, cache_entries: int, choice_entries: int,
                 history_length: int, tag_bits: int = 6,
                 name: str | None = None) -> None:
        for label, value in (("cache_entries", cache_entries),
                             ("choice_entries", choice_entries)):
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{label} must be a power of two, got {value}")
        if tag_bits < 1:
            raise ValueError(f"tag_bits must be >= 1, got {tag_bits}")
        self.cache_entries = cache_entries
        self.choice_entries = choice_entries
        self.history_length = history_length
        self.tag_bits = tag_bits
        self.cache_bits = cache_entries.bit_length() - 1
        self.name = name or f"yags-{cache_entries // 1024}K-h{history_length}"
        self.choice = SplitCounterArray(choice_entries)
        # The taken cache stores exceptions to a not-taken bias and vice
        # versa; initialise each towards the direction it will store.
        self.taken_cache = _DirectionCache(cache_entries, tag_bits,
                                           init_taken=True)
        self.not_taken_cache = _DirectionCache(cache_entries, tag_bits,
                                               init_taken=False)

    def _indices(self, vector: InfoVector) -> tuple[int, int, int]:
        choice_index = (vector.branch_pc >> 2) & (self.choice_entries - 1)
        cache_index = gshare_index(vector.branch_pc, vector.history,
                                   self.history_length, self.cache_bits)
        tag = (vector.branch_pc >> 2) & mask(self.tag_bits)
        return choice_index, cache_index, tag

    def _consult(self, choice: bool, cache_index: int, tag: int):
        """The cache probed for a given choice, and its probe result."""
        cache = self.not_taken_cache if choice else self.taken_cache
        return cache, cache.probe(cache_index, tag)

    def predict(self, vector: InfoVector) -> bool:
        choice_index, cache_index, tag = self._indices(vector)
        choice = self.choice.predict(choice_index)
        _, cached = self._consult(choice, cache_index, tag)
        return choice if cached is None else cached

    def update(self, vector: InfoVector, taken: bool) -> None:
        self._access(vector, taken)

    def access(self, vector: InfoVector, taken: bool) -> bool:
        return self._access(vector, taken)

    def _access(self, vector: InfoVector, taken: bool) -> bool:
        choice_index, cache_index, tag = self._indices(vector)
        choice = self.choice.predict(choice_index)
        cache, cached = self._consult(choice, cache_index, tag)
        prediction = choice if cached is None else cached
        # -- update rules (YAGS paper):
        # The probed cache trains on a hit; it allocates when the bimodal
        # choice mispredicted (the branch is an exception to its bias).
        if cached is not None:
            cache.train_hit(cache_index, taken)
        elif choice != taken:
            cache.insert(cache_index, tag, taken)
        # The choice table trains towards the outcome, except when it was
        # wrong but the cache corrected it (leave the bias in place).
        if not (choice != taken and cached is not None and cached == taken):
            self.choice.update(choice_index, taken)
        return prediction

    @property
    def storage_bits(self) -> int:
        return (self.choice.storage_bits + self.taken_cache.storage_bits
                + self.not_taken_cache.storage_bits)
