"""Branch predictor library: the paper's comparison set plus extensions."""

from repro.predictors.agree import AgreePredictor
from repro.predictors.base import BatchCapable, Predictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.cascade import CascadePredictor, CascadeStatistics
from repro.predictors.bimode import BiModePredictor
from repro.predictors.egskew import EGskewPredictor
from repro.predictors.gas import GAsPredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.local import LocalPredictor
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.tournament import TournamentPredictor
from repro.predictors.twobcgskew import (
    IndexScheme,
    SkewedIndexScheme,
    TableConfig,
    TwoBcGskewPredictor,
)
from repro.predictors.yags import YagsPredictor

__all__ = [
    "AgreePredictor",
    "BatchCapable",
    "Predictor",
    "BimodalPredictor",
    "CascadePredictor",
    "CascadeStatistics",
    "BiModePredictor",
    "EGskewPredictor",
    "GAsPredictor",
    "GsharePredictor",
    "LocalPredictor",
    "PerceptronPredictor",
    "TournamentPredictor",
    "IndexScheme",
    "SkewedIndexScheme",
    "TableConfig",
    "TwoBcGskewPredictor",
    "YagsPredictor",
]
