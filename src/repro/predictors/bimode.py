"""Bi-mode predictor (Lee, Chen & Mudge, MICRO 1997).

A de-aliased global-history scheme: branches are dynamically sorted into a
taken-biased and a not-taken-biased stream by a PC-indexed *choice* table;
each stream has its own gshare-indexed *direction* table, so branches of
opposite bias no longer destructively alias.

The paper's Fig 5 configuration: two 128K-entry direction tables plus a
16K-entry bimodal choice table — 544 Kbits total (footnote 1 notes that for
large predictors a choice table smaller than the direction tables is more
cost-effective; above 16K entries added nothing on their benchmarks).
"""

from __future__ import annotations

from repro.common.bitops import mask
from repro.common.counters import SplitCounterArray
from repro.history.providers import InfoVector
from repro.indexing.fold import gshare_index
from repro.predictors.base import Predictor

__all__ = ["BiModePredictor"]


class BiModePredictor(Predictor):
    """Choice table + two direction tables.

    Parameters
    ----------
    direction_entries:
        Entries in each of the two direction tables.
    choice_entries:
        Entries in the PC-indexed choice table.
    history_length:
        Global history length for the direction tables' gshare index.
    """

    def __init__(self, direction_entries: int, choice_entries: int,
                 history_length: int, name: str | None = None) -> None:
        for label, value in (("direction_entries", direction_entries),
                             ("choice_entries", choice_entries)):
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{label} must be a power of two, got {value}")
        self.direction_entries = direction_entries
        self.choice_entries = choice_entries
        self.history_length = history_length
        self.direction_bits = direction_entries.bit_length() - 1
        self.name = name or (f"bimode-{direction_entries // 1024}K"
                             f"-h{history_length}")
        self.choice = SplitCounterArray(choice_entries)
        self.taken_table = SplitCounterArray(direction_entries,
                                             init_taken=True)
        self.not_taken_table = SplitCounterArray(direction_entries)

    def _indices(self, vector: InfoVector) -> tuple[int, int]:
        choice_index = (vector.branch_pc >> 2) & (self.choice_entries - 1)
        direction_index = gshare_index(vector.branch_pc, vector.history,
                                       self.history_length,
                                       self.direction_bits)
        return choice_index, direction_index

    def predict(self, vector: InfoVector) -> bool:
        choice_index, direction_index = self._indices(vector)
        if self.choice.predict(choice_index):
            return self.taken_table.predict(direction_index)
        return self.not_taken_table.predict(direction_index)

    def update(self, vector: InfoVector, taken: bool) -> None:
        indices = self._indices(vector)
        choice = self.choice.predict(indices[0])
        table = self.taken_table if choice else self.not_taken_table
        prediction = table.predict(indices[1])
        self._train(indices, choice, table, prediction, taken)

    def access(self, vector: InfoVector, taken: bool) -> bool:
        indices = self._indices(vector)
        choice = self.choice.predict(indices[0])
        table = self.taken_table if choice else self.not_taken_table
        prediction = table.predict(indices[1])
        self._train(indices, choice, table, prediction, taken)
        return prediction

    def _train(self, indices, choice: bool, table: SplitCounterArray,
               prediction: bool, taken: bool) -> None:
        """Bi-mode update rules:

        * only the *selected* direction table trains (the other stream's
          state is untouched — that is the de-aliasing),
        * the choice table trains towards the outcome, except when it
          disagreed with the outcome but the selected direction table still
          predicted correctly (the choice is then doing its job of stream
          assignment and is left alone).
        """
        choice_index, direction_index = indices
        table.update(direction_index, taken)
        if not (choice != taken and prediction == taken):
            self.choice.update(choice_index, taken)

    @property
    def storage_bits(self) -> int:
        return (self.choice.storage_bits + self.taken_table.storage_bits
                + self.not_taken_table.storage_bits)
