"""Bimodal predictor (J. Smith, 1981).

A single table of 2-bit saturating counters indexed by branch address.
Captures per-branch bias, nothing else.  It is both the paper's simplest
baseline and the BIM component of 2Bc-gskew (Section 4.1), where it
"accurately predicts strongly biased static branches".
"""

from __future__ import annotations

import numpy as np

from repro.common.counters import SplitCounterArray
from repro.history.providers import InfoVector, VectorBatch
from repro.predictors.base import BatchCapable, Predictor

__all__ = ["BimodalPredictor"]


class BimodalPredictor(BatchCapable, Predictor):
    """PC-indexed 2-bit counter table.

    Parameters
    ----------
    entries:
        Table size (power of two).
    hysteresis_entries:
        Optional smaller hysteresis array (Section 4.4 sharing).
    """

    def __init__(self, entries: int, hysteresis_entries: int | None = None,
                 name: str = "bimodal") -> None:
        self.name = name
        self.entries = entries
        self._counters = SplitCounterArray(entries, hysteresis_entries)
        self._mask = entries - 1

    def _index(self, vector: InfoVector) -> int:
        return (vector.branch_pc >> 2) & self._mask

    def predict(self, vector: InfoVector) -> bool:
        return self._counters.predict(self._index(vector))

    def update(self, vector: InfoVector, taken: bool) -> None:
        self._counters.update(self._index(vector), taken)

    def access(self, vector: InfoVector, taken: bool) -> bool:
        index = (vector.branch_pc >> 2) & self._mask
        prediction = self._counters.predict(index)
        self._counters.update(index, taken)
        return prediction

    def batch_supported(self) -> bool:
        # Shared hysteresis couples table entries; only the private-hysteresis
        # configuration decomposes per index.
        return self._counters.batch_supported

    def batch_access(self, batch: VectorBatch) -> np.ndarray:
        indices = (batch.branch_pc >> np.uint64(2)) & np.uint64(self._mask)
        return self._counters.batch_access(indices, batch.takens)

    @property
    def storage_bits(self) -> int:
        return self._counters.storage_bits
