"""21264-style tournament (hybrid) predictor.

"The previous generation Alpha microprocessor [7] incorporated a hybrid
predictor using both global and local branch history information"
(Section 3).  The 21264 scheme: a local two-level predictor, a global
(GAs-style) predictor, and a global-history-indexed chooser.  This is the
predictor the EV8 design consciously moved away from — kept here as the
lineage baseline and for the global-vs-local experiments.

Default sizes follow the real 21264: 1K x 10-bit local histories,
1K x 3-bit local counters (modelled as 2-bit), 4K x 2-bit global counters,
4K x 2-bit choosers, 12-bit global history.
"""

from __future__ import annotations

from repro.common.bitops import mask
from repro.common.counters import SplitCounterArray
from repro.history.providers import InfoVector
from repro.predictors.base import Predictor
from repro.predictors.local import LocalPredictor

__all__ = ["TournamentPredictor"]


class TournamentPredictor(Predictor):
    """Local + global components with a global-history-indexed chooser."""

    def __init__(self, local_history_entries: int = 1024,
                 local_history_width: int = 10,
                 local_counter_entries: int = 1024,
                 global_entries: int = 4096,
                 chooser_entries: int = 4096,
                 global_history_length: int = 12,
                 name: str = "tournament-21264") -> None:
        self.name = name
        self.local = LocalPredictor(local_history_entries,
                                    local_history_width,
                                    local_counter_entries)
        if global_entries <= 0 or global_entries & (global_entries - 1):
            raise ValueError(
                f"global_entries must be a power of two, got {global_entries}")
        if chooser_entries <= 0 or chooser_entries & (chooser_entries - 1):
            raise ValueError(
                f"chooser_entries must be a power of two, got {chooser_entries}")
        self.global_history_length = global_history_length
        self._global = SplitCounterArray(global_entries)
        self._global_mask = global_entries - 1
        self._chooser = SplitCounterArray(chooser_entries)
        self._chooser_mask = chooser_entries - 1

    def _global_index(self, vector: InfoVector) -> int:
        return vector.history & mask(self.global_history_length) & self._global_mask

    def _chooser_index(self, vector: InfoVector) -> int:
        return vector.history & mask(self.global_history_length) & self._chooser_mask

    def predict(self, vector: InfoVector) -> bool:
        use_global = self._chooser.predict(self._chooser_index(vector))
        if use_global:
            return self._global.predict(self._global_index(vector))
        return self.local.predict(vector)

    def update(self, vector: InfoVector, taken: bool) -> None:
        self._access(vector, taken)

    def access(self, vector: InfoVector, taken: bool) -> bool:
        return self._access(vector, taken)

    def _access(self, vector: InfoVector, taken: bool) -> bool:
        global_index = self._global_index(vector)
        chooser_index = self._chooser_index(vector)
        local_prediction = self.local.predict(vector)
        global_prediction = self._global.predict(global_index)
        use_global = self._chooser.predict(chooser_index)
        prediction = global_prediction if use_global else local_prediction
        # Train: both components always (the 21264 trains both), chooser
        # only when they disagree.
        if local_prediction != global_prediction:
            self._chooser.update(chooser_index, global_prediction == taken)
        self._global.update(global_index, taken)
        self.local.update(vector, taken)
        return prediction

    @property
    def storage_bits(self) -> int:
        return (self.local.storage_bits + self._global.storage_bits
                + self._chooser.storage_bits)
