"""Perceptron predictor (Jiménez & Lin, HPCA 2001).

The paper's conclusion names the perceptron as a candidate *backup*
predictor for hard-to-predict branches in a future hierarchy (line
predictor -> global predictor -> backup predictor).  Implemented here to
support that forward-looking experiment.

Each branch (hashed by PC) owns a vector of signed integer weights over the
global history bits plus a bias weight; the prediction is the sign of the
dot product, and training adjusts weights when the prediction is wrong or
the magnitude is below the threshold.
"""

from __future__ import annotations

from repro.history.providers import InfoVector
from repro.predictors.base import Predictor

__all__ = ["PerceptronPredictor"]


class PerceptronPredictor(Predictor):
    """Global-history perceptron table."""

    def __init__(self, entries: int, history_length: int,
                 weight_bits: int = 8, threshold: int | None = None,
                 name: str | None = None) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a power of two, got {entries}")
        if history_length < 1:
            raise ValueError(
                f"history length must be >= 1, got {history_length}")
        if weight_bits < 2:
            raise ValueError(f"weight_bits must be >= 2, got {weight_bits}")
        self.entries = entries
        self.history_length = history_length
        self.weight_bits = weight_bits
        self.weight_limit = (1 << (weight_bits - 1)) - 1
        # Jimenez & Lin's empirically optimal threshold: 1.93h + 14.
        self.threshold = (threshold if threshold is not None
                          else int(1.93 * history_length + 14))
        self.name = name or f"perceptron-{entries}x{history_length}"
        # weights[i] is the weight row of table entry i: bias weight first,
        # then one weight per history bit.
        self._weights = [[0] * (history_length + 1) for _ in range(entries)]

    def _row(self, vector: InfoVector) -> list[int]:
        return self._weights[(vector.branch_pc >> 2) & (self.entries - 1)]

    def _dot(self, row: list[int], history: int) -> int:
        total = row[0]
        for position in range(self.history_length):
            weight = row[position + 1]
            if (history >> position) & 1:
                total += weight
            else:
                total -= weight
        return total

    def predict(self, vector: InfoVector) -> bool:
        return self._dot(self._row(vector), vector.history) >= 0

    def update(self, vector: InfoVector, taken: bool) -> None:
        row = self._row(vector)
        output = self._dot(row, vector.history)
        self._train(row, vector.history, output, taken)

    def access(self, vector: InfoVector, taken: bool) -> bool:
        row = self._row(vector)
        output = self._dot(row, vector.history)
        self._train(row, vector.history, output, taken)
        return output >= 0

    def _train(self, row: list[int], history: int, output: int,
               taken: bool) -> None:
        prediction = output >= 0
        if prediction == taken and abs(output) > self.threshold:
            return
        limit = self.weight_limit
        step = 1 if taken else -1
        row[0] = _clamp(row[0] + step, limit)
        for position in range(self.history_length):
            agrees = bool((history >> position) & 1) == taken
            delta = 1 if agrees else -1
            row[position + 1] = _clamp(row[position + 1] + delta, limit)

    @property
    def storage_bits(self) -> int:
        return self.entries * (self.history_length + 1) * self.weight_bits


def _clamp(value: int, limit: int) -> int:
    if value > limit:
        return limit
    if value < -limit - 1:
        return -limit - 1
    return value
