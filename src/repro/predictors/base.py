"""Common predictor interface.

Every predictor consumes an :class:`~repro.history.providers.InfoVector`
(address + history + path) and answers taken/not-taken.  The simulation
driver performs trace-driven *immediate update* — the paper's validated
methodology (Section 8.1.1) — through :meth:`Predictor.access`, which
predictors may override with a fused fast path that computes table indices
once for both the prediction and the update.
"""

from __future__ import annotations

import numpy as np

from repro.common.counters import SplitCounterArray
from repro.history.providers import InfoVector, VectorBatch
from repro.obs import NULL_TELEMETRY, NullTelemetry

__all__ = ["Predictor", "BatchCapable"]


class Predictor:
    """Base class for all branch predictors.

    Subclasses implement :meth:`predict` and :meth:`update`, expose their
    memory budget through :attr:`storage_bits`, and carry a human-readable
    ``name`` used in experiment reports.
    """

    name: str = "predictor"

    #: The telemetry sink instrumented predictors record into.  The class
    #: default is the shared null sink, so un-instrumented simulations pay
    #: only an ``enabled`` flag test per instrumented block; the engines
    #: call :meth:`attach_telemetry` when a recording sink is active.
    _telemetry: NullTelemetry = NULL_TELEMETRY

    def attach_telemetry(self, sink: NullTelemetry) -> None:
        """Route this predictor's instrumentation into ``sink``.

        The default implementation also attaches every
        :class:`~repro.common.counters.SplitCounterArray` attribute under
        its attribute name (so 2Bc-gskew's banks report as ``bank.bim.*``,
        ``bank.g0.*``, ``bank.g1.*``, ``bank.meta.*``).  Telemetry never
        changes predictions or table state — only what is recorded about
        them.
        """
        self._telemetry = sink
        for attr, value in vars(self).items():
            if isinstance(value, SplitCounterArray):
                value.attach_telemetry(sink, attr.lstrip("_"))

    def predict(self, vector: InfoVector) -> bool:
        """Predict the branch described by ``vector`` (True = taken)."""
        raise NotImplementedError

    def update(self, vector: InfoVector, taken: bool) -> None:
        """Train on the architectural outcome."""
        raise NotImplementedError

    def access(self, vector: InfoVector, taken: bool) -> bool:
        """Predict-then-train in one call (immediate update).

        The default implementation composes :meth:`predict` and
        :meth:`update`; stateful multi-table predictors override it to reuse
        the index computation.
        """
        prediction = self.predict(vector)
        self.update(vector, taken)
        return prediction

    @property
    def storage_bits(self) -> int:
        """Total predictor memory in bits (as the paper accounts sizes)."""
        raise NotImplementedError

    @property
    def storage_kbits(self) -> float:
        """Storage in Kbits (1 Kbit = 1024 bits), the paper's unit."""
        return self.storage_bits / 1024.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class BatchCapable:
    """Mixin for predictors that can replay a whole trace in bulk.

    Opting in means implementing :meth:`batch_access`: given a
    :class:`~repro.history.providers.VectorBatch` (the trace's information
    vectors and outcomes as parallel arrays), return the per-branch
    predictions the scalar ``access`` loop would have produced, **bit for
    bit**, and leave the predictor tables in the same final state.  The
    batched engine (:class:`repro.sim.engine.BatchedEngine`) verifies
    :meth:`batch_supported` first and falls back to the scalar engine when a
    configuration cannot honor the equivalence guarantee (e.g. shared
    hysteresis, a non-vectorizable index scheme).

    Implementations typically precompute their table-index streams with the
    vectorized helpers in :mod:`repro.indexing.fold` /
    :mod:`repro.indexing.skew`, then either resolve counter updates with
    :meth:`repro.common.counters.SplitCounterArray.batch_access` (single
    independent table) or replay the precomputed indices through a tight
    scalar loop (multiple update-coupled tables).
    """

    #: Replay-kernel selector: ``"fast"`` lets the predictor use its
    #: quickest bit-identical replay path; ``"compat"`` pins the original
    #: accounting path (the one that records per-bank telemetry), which is
    #: what the ``"batched-compat"`` engine uses to reproduce pre-fabric
    #: behaviour for honest benchmarking.  Predictors with a single replay
    #: path may ignore it.
    _replay_kernel: str = "fast"

    def set_replay_kernel(self, kernel: str) -> None:
        """Select the replay kernel for subsequent :meth:`batch_access`
        calls.  Every kernel is bit-identical by contract; the choice only
        affects throughput and telemetry detail."""
        self._replay_kernel = kernel

    def batch_supported(self) -> bool:
        """Whether this instance's configuration can run batched."""
        return True

    def batch_access(self, batch: VectorBatch) -> np.ndarray:
        """Predict-then-train over the whole batch; returns predictions."""
        raise NotImplementedError
