"""Agree predictor (Sprangle, Chappell, Alsup & Patt, ISCA 1997).

One of the de-aliased schemes the paper cites (Section 4, [22]).  Each
static branch records a *bias* on first execution; a gshare-indexed table
then predicts whether the branch will *agree* with its bias.  Two branches
aliasing in the agree table interfere destructively only when one agrees and
the other disagrees with their respective biases — much rarer than opposite
outcomes — converting most negative interference into neutral/positive.
"""

from __future__ import annotations

from repro.common.counters import SplitCounterArray
from repro.history.providers import InfoVector
from repro.indexing.fold import gshare_index
from repro.predictors.base import Predictor

__all__ = ["AgreePredictor"]


class AgreePredictor(Predictor):
    """First-outcome bias bits + agree/disagree counter table."""

    def __init__(self, agree_entries: int, bias_entries: int,
                 history_length: int, name: str | None = None) -> None:
        for label, value in (("agree_entries", agree_entries),
                             ("bias_entries", bias_entries)):
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{label} must be a power of two, got {value}")
        self.agree_entries = agree_entries
        self.bias_entries = bias_entries
        self.history_length = history_length
        self.agree_bits = agree_entries.bit_length() - 1
        self.name = name or f"agree-{agree_entries // 1024}K-h{history_length}"
        # Agree counters start "strongly agree" — a fresh branch follows its
        # recorded bias.
        self.agree = SplitCounterArray(agree_entries, init_taken=True)
        self._bias = [False] * bias_entries
        self._bias_valid = [False] * bias_entries

    def _indices(self, vector: InfoVector) -> tuple[int, int]:
        bias_index = (vector.branch_pc >> 2) & (self.bias_entries - 1)
        agree_index = gshare_index(vector.branch_pc, vector.history,
                                   self.history_length, self.agree_bits)
        return bias_index, agree_index

    def predict(self, vector: InfoVector) -> bool:
        bias_index, agree_index = self._indices(vector)
        bias = self._bias[bias_index] if self._bias_valid[bias_index] else True
        agrees = self.agree.predict(agree_index)
        return bias if agrees else not bias

    def update(self, vector: InfoVector, taken: bool) -> None:
        self._access(vector, taken)

    def access(self, vector: InfoVector, taken: bool) -> bool:
        return self._access(vector, taken)

    def _access(self, vector: InfoVector, taken: bool) -> bool:
        bias_index, agree_index = self._indices(vector)
        if self._bias_valid[bias_index]:
            bias = self._bias[bias_index]
        else:
            # First encounter: record the outcome as the branch's bias
            # (the hardware sets it at allocation into the BTB/I-cache).
            self._bias[bias_index] = taken
            self._bias_valid[bias_index] = True
            bias = taken
        agrees = self.agree.predict(agree_index)
        prediction = bias if agrees else not bias
        self.agree.update(agree_index, taken == bias)
        return prediction

    @property
    def storage_bits(self) -> int:
        # agree counters + (bias + valid) bits
        return self.agree.storage_bits + 2 * self.bias_entries
