"""Local-history two-level predictor (Yeh & Patt's PAg/PAs family).

Section 3 of the paper explains why the EV8 could *not* use local history
(16 predictions/cycle would need a 16-ported second-level table, speculative
local history for >256 in-flight branches, and SMT threads would pollute the
history table).  We implement it anyway: it is the reference point for the
global-vs-local discussion and one half of the 21264 tournament predictor.

Structure: a first-level table of per-branch history registers (indexed by
PC), and a second-level table of 2-bit counters indexed by the local
history (PAg) optionally hashed with the PC (PAs flavour).
"""

from __future__ import annotations

from repro.common.bitops import mask, xor_fold
from repro.common.counters import SplitCounterArray
from repro.history.providers import InfoVector
from repro.history.registers import LocalHistoryTable
from repro.predictors.base import Predictor

__all__ = ["LocalPredictor"]


class LocalPredictor(Predictor):
    """Two-level local predictor.

    Parameters
    ----------
    history_entries:
        First-level per-branch history registers.
    history_width:
        Bits of local history per branch (the 21264 used 10).
    counter_entries:
        Second-level counter table size.
    hash_pc:
        If True, XOR PC bits into the second-level index (PAs style) to
        reduce inter-branch second-level aliasing.
    """

    def __init__(self, history_entries: int, history_width: int,
                 counter_entries: int, hash_pc: bool = False,
                 name: str | None = None) -> None:
        if counter_entries <= 0 or counter_entries & (counter_entries - 1):
            raise ValueError(
                f"counter_entries must be a power of two, got {counter_entries}")
        self.histories = LocalHistoryTable(history_entries, history_width)
        self.counter_entries = counter_entries
        self.counter_bits = counter_entries.bit_length() - 1
        self.hash_pc = hash_pc
        self.name = name or (f"local-{history_entries}x{history_width}"
                             f"-{counter_entries // 1024}K")
        self._counters = SplitCounterArray(counter_entries)

    def _index(self, vector: InfoVector) -> int:
        local = self.histories.read(vector.branch_pc)
        if self.histories.width > self.counter_bits:
            index = xor_fold(local, self.counter_bits)
        else:
            index = local & mask(self.counter_bits)
        if self.hash_pc:
            index ^= (vector.branch_pc >> 2) & mask(self.counter_bits)
        return index

    def predict(self, vector: InfoVector) -> bool:
        return self._counters.predict(self._index(vector))

    def update(self, vector: InfoVector, taken: bool) -> None:
        index = self._index(vector)
        self._counters.update(index, taken)
        self.histories.push(vector.branch_pc, taken)

    def access(self, vector: InfoVector, taken: bool) -> bool:
        index = self._index(vector)
        prediction = self._counters.predict(index)
        self._counters.update(index, taken)
        self.histories.push(vector.branch_pc, taken)
        return prediction

    @property
    def storage_bits(self) -> int:
        return self.histories.storage_bits + self._counters.storage_bits
