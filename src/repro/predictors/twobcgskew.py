"""2Bc-gskew: the hybrid skewed predictor the EV8 implements (Section 4).

Structure (Fig 2 of the paper): four banks of 2-bit counters —

* **BIM**, a bimodal table (also one of the three e-gskew banks),
* **G0** and **G1**, the two other e-gskew banks,
* **Meta**, the meta-predictor choosing, per prediction, between BIM alone
  and the majority vote of {BIM, G0, G1}.

This class is the *generic, fully configurable* engine used across the
paper's design-space exploration: per-table sizes (Section 4.6), per-table
history lengths (Section 4.5), half-size shared hysteresis (Section 4.4),
partial vs total update (Section 4.2), and a pluggable index scheme
(Section 7 constraints are a different scheme, injected by
:mod:`repro.ev8`).  The flagship EV8 configuration is built on top of it in
:mod:`repro.ev8.predictor`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.bitops import mask
from repro.common.counters import (_STEP_NOT_TAKEN, _STEP_TAKEN,
                                   SplitCounterArray)
from repro.common.replay import REPLAY_CHUNK, uncoupled_positions
from repro.history.providers import InfoVector, VectorBatch
from repro.indexing.fold import info_word, info_word_vec
from repro.indexing.skew import skew_index, skew_index_vec
from repro.predictors.base import BatchCapable, Predictor

__all__ = ["TableConfig", "IndexScheme", "SkewedIndexScheme",
           "TwoBcGskewPredictor"]

_UNCOUPLED_VECTOR_THRESHOLD = 0.25
"""Minimum uncoupled fraction (measured on the first chunk) for the fast
replay path to keep running the vectorized uncoupled pass.  Long-history
configurations like Table 1 leave only a few percent of positions uncoupled,
where the inlined scalar kernel is just as fast on the whole chunk and
computing :func:`~repro.common.replay.uncoupled_positions` is pure
overhead; short-history configurations collide constantly the other way
around and want the vectorized pass."""

_PATH_BITS_PER_BLOCK = 2
"""Address bits taken from each previous-block address when the index scheme
embeds path information (Section 5.2).  Kept deliberately small: the real
EV8 consumes only a handful of path bits (z6, z5 in the column/unshuffle
functions, y6, y5 through the bank number) — path information disambiguates
aliased histories, but every extra bit also fragments the index space."""


@dataclass(frozen=True)
class TableConfig:
    """Size and history length of one logical predictor table.

    ``hysteresis_entries`` defaults to ``entries`` (private hysteresis); the
    EV8 halves it for G0 and Meta (Table 1).
    """

    entries: int
    history_length: int
    hysteresis_entries: int | None = None

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.entries & (self.entries - 1):
            raise ValueError(
                f"table entries must be a power of two, got {self.entries}")
        if self.history_length < 0:
            raise ValueError(
                f"history length must be >= 0, got {self.history_length}")

    @property
    def index_bits(self) -> int:
        return self.entries.bit_length() - 1


class IndexScheme:
    """Maps an :class:`InfoVector` to the four table indices
    (BIM, G0, G1, Meta).

    Injected into :class:`TwoBcGskewPredictor`; the default is the academic
    skewed family below, and :mod:`repro.ev8.indexfuncs` provides the
    hardware-constrained EV8 functions.
    """

    #: Whether :meth:`compute_batch` is implemented (the batched engine
    #: falls back to scalar for schemes that stay False, e.g. the
    #: hardware-constrained EV8 functions).
    vectorized = False

    def compute(self, vector: InfoVector,
                configs: tuple[TableConfig, TableConfig, TableConfig,
                               TableConfig]) -> tuple[int, int, int, int]:
        raise NotImplementedError

    def compute_batch(self, batch: VectorBatch,
                      configs: tuple[TableConfig, TableConfig, TableConfig,
                                     TableConfig]
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                 np.ndarray]:
        """Vectorized :meth:`compute` over a whole batch (bit-identical)."""
        raise NotImplementedError


class SkewedIndexScheme(IndexScheme):
    """Unconstrained indexing: BIM by address; G0/G1/Meta by distinct
    members of the skewing family over (address, history[, path]) words.

    ``use_path_addresses`` additionally folds
    :data:`_PATH_BITS_PER_BLOCK` bits of each previous fetch-block address
    into the information words — the "path information from the three last
    fetch blocks" of Section 5.2.
    """

    def __init__(self, use_path_addresses: bool = False) -> None:
        self.use_path_addresses = use_path_addresses

    def _path_word(self, vector: InfoVector) -> tuple[int, int]:
        if not self.use_path_addresses or not vector.path:
            return 0, 0
        word = 0
        offset = 0
        for address in vector.path:
            word |= ((address >> 2) & mask(_PATH_BITS_PER_BLOCK)) << offset
            offset += _PATH_BITS_PER_BLOCK
        return word, offset

    vectorized = True

    def compute(self, vector, configs):
        bim, g0, g1, meta = configs
        path_word, path_bits = self._path_word(vector)
        address = vector.address
        history = vector.history
        # BIM: bimodal component — address-only unless configured with
        # history (the EV8's BIM uses 4 bits, Section 7.3).
        if bim.history_length:
            bim_index = info_word(vector.branch_pc, history,
                                  bim.history_length, bim.index_bits)
        else:
            bim_index = (vector.branch_pc >> 2) & mask(bim.index_bits)
        indices = [bim_index]
        for rank, config in ((1, g0), (2, g1), (3, meta)):
            word = info_word(address, history, config.history_length,
                             2 * config.index_bits, path_word, path_bits)
            indices.append(skew_index(rank, word, config.index_bits))
        return tuple(indices)

    def _path_word_batch(self, batch: VectorBatch) -> tuple[np.ndarray | None,
                                                            int]:
        if not self.use_path_addresses or batch.path_depth == 0:
            return None, 0
        word = np.zeros(len(batch), dtype=np.uint64)
        offset = 0
        for age in range(batch.path_depth):
            field = ((batch.path[age] >> np.uint64(2))
                     & np.uint64(mask(_PATH_BITS_PER_BLOCK)))
            word |= field << np.uint64(offset)
            offset += _PATH_BITS_PER_BLOCK
        return word, offset

    def compute_batch(self, batch, configs):
        bim, g0, g1, meta = configs
        path_word, path_bits = self._path_word_batch(batch)
        if bim.history_length:
            bim_index = info_word_vec(batch.branch_pc, batch.history,
                                      bim.history_length, bim.index_bits)
        else:
            bim_index = ((batch.branch_pc >> np.uint64(2))
                         & np.uint64(mask(bim.index_bits)))
        indices = [bim_index]
        for rank, config in ((1, g0), (2, g1), (3, meta)):
            word = info_word_vec(batch.address, batch.history,
                                 config.history_length,
                                 2 * config.index_bits, path_word, path_bits)
            indices.append(skew_index_vec(rank, word, config.index_bits))
        return tuple(indices)


class TwoBcGskewPredictor(BatchCapable, Predictor):
    """The 2Bc-gskew hybrid skewed predictor.

    Parameters
    ----------
    bim, g0, g1, meta:
        Per-table configurations (sizes, history lengths, hysteresis sizes).
    index_scheme:
        An :class:`IndexScheme`; defaults to the unconstrained skewed family.
    update_policy:
        ``"partial"`` (the EV8 policy of Section 4.2) or ``"total"``
        (conventional always-update, for the ablation).
    """

    #: Meta polarity: a taken meta-prediction selects the e-gskew majority.
    USE_MAJORITY = True

    def __init__(self, bim: TableConfig, g0: TableConfig, g1: TableConfig,
                 meta: TableConfig, index_scheme: IndexScheme | None = None,
                 update_policy: str = "partial",
                 name: str = "2bc-gskew") -> None:
        if update_policy not in ("partial", "total"):
            raise ValueError(
                f"update_policy must be 'partial' or 'total', got "
                f"{update_policy!r}")
        self.name = name
        self.configs = (bim, g0, g1, meta)
        self.index_scheme = index_scheme or SkewedIndexScheme()
        self.update_policy = update_policy
        self.bim = SplitCounterArray(bim.entries, bim.hysteresis_entries)
        self.g0 = SplitCounterArray(g0.entries, g0.hysteresis_entries)
        self.g1 = SplitCounterArray(g1.entries, g1.hysteresis_entries)
        self.meta = SplitCounterArray(meta.entries, meta.hysteresis_entries)
        self._banks = (self.bim, self.g0, self.g1)

    # -- prediction --------------------------------------------------------

    def indices(self, vector: InfoVector) -> tuple[int, int, int, int]:
        """The four table indices for an information vector."""
        return self.index_scheme.compute(vector, self.configs)

    def _read(self, indices):
        bim_i, g0_i, g1_i, meta_i = indices
        p_bim = self.bim.predict(bim_i)
        p_g0 = self.g0.predict(g0_i)
        p_g1 = self.g1.predict(g1_i)
        use_majority = self.meta.predict(meta_i)
        majority = (int(p_bim) + int(p_g0) + int(p_g1)) >= 2
        overall = majority if use_majority else p_bim
        return p_bim, p_g0, p_g1, use_majority, majority, overall

    def predict(self, vector: InfoVector) -> bool:
        return self._read(self.indices(vector))[-1]

    def update(self, vector: InfoVector, taken: bool) -> None:
        indices = self.indices(vector)
        state = self._read(indices)
        self._train(indices, state, taken)

    def access(self, vector: InfoVector, taken: bool) -> bool:
        indices = self.indices(vector)
        state = self._read(indices)
        self._train(indices, state, taken)
        return state[-1]

    def batch_supported(self) -> bool:
        return self.index_scheme.vectorized

    def batch_access(self, batch: VectorBatch,
                     chunk: int = REPLAY_CHUNK) -> np.ndarray:
        """Batched replay: chunked, serializing only coupled positions.

        All four index streams are precomputed with the vectorized index
        scheme.  The partial-update policy couples BIM/G0/G1/Meta through
        the majority vote and the chooser, so the counter traffic cannot be
        scanned like a single table's — but the coupling is sparse: within
        each chunk, positions whose four hysteresis groups are touched by no
        other position replay in one vectorized pass
        (:meth:`_train_many_uncoupled`), and only the colliding remainder
        replays scalar, in stream order (see :mod:`repro.common.replay`).

        Two bit-identical replay kernels back the scalar remainder:

        * the **fast** kernel (:meth:`_replay_coupled_fast`) inlines the
          four banks' split-counter transitions over their raw byte arrays
          — no per-position method calls, no telemetry sites; it is the
          default whenever no recording sink is attached.  When the first
          chunk shows the uncoupled fraction below
          :data:`_UNCOUPLED_VECTOR_THRESHOLD`, subsequent chunks skip the
          uncoupled scan entirely and replay all-scalar through the same
          kernel (equally fast at that collision rate, and the scan itself
          is then pure overhead);
        * the **compat** kernel (:meth:`_replay_chunk`) routes through
          :meth:`_read`/:meth:`_train`, preserving per-bank telemetry
          accounting.  Selected when a recording sink is attached or when
          the engine pins ``replay_kernel="compat"`` (the
          ``"batched-compat"`` engine, kept as the honest pre-fabric
          baseline for benchmarks).
        """
        tables = (self.bim, self.g0, self.g1, self.meta)
        streams = [stream.astype(np.int64, copy=False)
                   & np.int64(table.size - 1)
                   for stream, table in zip(
                       self.index_scheme.compute_batch(batch, self.configs),
                       tables)]
        takens = batch.takens
        n = len(batch)
        predictions = np.empty(n, dtype=np.bool_)
        fast = self._replay_kernel != "compat" and not self._telemetry.enabled
        scan_uncoupled = True
        step = max(chunk, 1)
        for lo in range(0, n, step):
            hi = min(lo + step, n)
            sliced = [stream[lo:hi] for stream in streams]
            if not fast:
                self._replay_chunk(sliced, takens[lo:hi], predictions[lo:hi])
            elif scan_uncoupled:
                fraction = self._replay_chunk_fast(sliced, takens[lo:hi],
                                                   predictions[lo:hi])
                if lo == 0 and fraction < _UNCOUPLED_VECTOR_THRESHOLD:
                    scan_uncoupled = False
            else:
                predictions[lo:hi] = self._replay_coupled_fast(
                    sliced[0].tolist(), sliced[1].tolist(),
                    sliced[2].tolist(), sliced[3].tolist(),
                    takens[lo:hi].view(np.uint8).tolist())
        return predictions

    def _replay_chunk(self, indices: list[np.ndarray], takens: np.ndarray,
                      out: np.ndarray) -> None:
        tables = (self.bim, self.g0, self.g1, self.meta)
        uncoupled = uncoupled_positions(*(
            stream & np.int64(table.hysteresis_size - 1)
            for stream, table in zip(indices, tables)))
        if uncoupled.any():
            out[uncoupled] = self._train_many_uncoupled(
                [stream[uncoupled] for stream in indices], takens[uncoupled])
        telemetry = self._telemetry
        if telemetry.enabled:
            telemetry.count("replay.positions", len(takens))
            telemetry.count("replay.coupled",
                            len(takens) - int(np.count_nonzero(uncoupled)))
        coupled = np.nonzero(~uncoupled)[0]
        if not len(coupled):
            return
        read = self._read
        train = self._train
        for position, bim_i, g0_i, g1_i, meta_i, taken in zip(
                coupled.tolist(), indices[0][coupled].tolist(),
                indices[1][coupled].tolist(), indices[2][coupled].tolist(),
                indices[3][coupled].tolist(), takens[coupled].tolist()):
            four = (bim_i, g0_i, g1_i, meta_i)
            state = read(four)
            train(four, state, taken)
            out[position] = state[-1]

    def _replay_chunk_fast(self, indices: list[np.ndarray],
                           takens: np.ndarray, out: np.ndarray) -> float:
        """:meth:`_replay_chunk` without telemetry sites, with the coupled
        remainder replayed by :meth:`_replay_coupled_fast`.  Returns the
        chunk's uncoupled fraction (the adaptive hint consumed by
        :meth:`batch_access`)."""
        tables = (self.bim, self.g0, self.g1, self.meta)
        uncoupled = uncoupled_positions(*(
            stream & np.int64(table.hysteresis_size - 1)
            for stream, table in zip(indices, tables)))
        count = int(np.count_nonzero(uncoupled))
        if count:
            out[uncoupled] = self._train_many_uncoupled(
                [stream[uncoupled] for stream in indices], takens[uncoupled])
        if count < len(takens):
            coupled = np.nonzero(~uncoupled)[0]
            out[coupled] = self._replay_coupled_fast(
                indices[0][coupled].tolist(), indices[1][coupled].tolist(),
                indices[2][coupled].tolist(), indices[3][coupled].tolist(),
                takens[coupled].view(np.uint8).tolist())
        return count / len(takens) if len(takens) else 1.0

    def _replay_coupled_fast(self, bim_idx: list, g0_idx: list, g1_idx: list,
                             meta_idx: list, takens: list) -> list:
        """The inlined coupled-replay kernel: predict-then-train over python
        lists of precomputed indices, touching the four banks' prediction and
        hysteresis byte arrays directly.

        Every branch below restates one arm of :meth:`_train_partial` /
        :meth:`_train_total` composed with the
        :class:`~repro.common.counters.SplitCounterArray` transitions
        (``strengthen`` on the participating correct side collapses to
        setting the hysteresis bit because it is only reached with direction
        == target; every other write is ``_step_towards`` spelled out).  The
        monolithic loop exists because the coupled remainder dominates
        long-history replay (~96% of Table 1 positions) and per-position
        method dispatch through :meth:`_read`/:meth:`_train` costs ~3x the
        transitions themselves.  Bit-identity against the scalar walk is
        locked by the differential fuzzer (``tests/test_differential.py``).
        """
        bim, g0, g1, meta = self.bim, self.g0, self.g1, self.meta
        bp, bh = bim._prediction, bim._hysteresis
        p0, h0 = g0._prediction, g0._hysteresis
        p1, h1 = g1._prediction, g1._hysteresis
        mp, mh = meta._prediction, meta._hysteresis
        bhm = bim.hysteresis_size - 1
        g0hm = g0.hysteresis_size - 1
        g1hm = g1.hysteresis_size - 1
        mhm = meta.hysteresis_size - 1
        partial = self.update_policy == "partial"
        res = []
        append = res.append
        for bi, g0i, g1i, mi, t in zip(bim_idx, g0_idx, g1_idx, meta_idx,
                                       takens):
            p_b = bp[bi]
            p_0 = p0[g0i]
            p_1 = p1[g1i]
            um = mp[mi]
            maj = 1 if (p_b + p_0 + p_1) >= 2 else 0
            ov = maj if um else p_b
            append(ov)
            if not partial:
                if p_b != maj:
                    mt = 1 if maj == t else 0
                    mhi = mi & mhm
                    if mp[mi] == mt:
                        mh[mhi] = 1
                    elif mh[mhi]:
                        mh[mhi] = 0
                    else:
                        mp[mi] = mt
                if p_b == t:
                    bh[bi & bhm] = 1
                elif bh[bi & bhm]:
                    bh[bi & bhm] = 0
                else:
                    bp[bi] = t
                if p_0 == t:
                    h0[g0i & g0hm] = 1
                elif h0[g0i & g0hm]:
                    h0[g0i & g0hm] = 0
                else:
                    p0[g0i] = t
                if p_1 == t:
                    h1[g1i & g1hm] = 1
                elif h1[g1i & g1hm]:
                    h1[g1i & g1hm] = 0
                else:
                    p1[g1i] = t
                continue
            if ov == t:
                if p_b == p_0 == p_1:
                    continue  # Rationale 1: leave the counters stealable
                if p_b != maj:
                    mt = 1 if maj == t else 0
                    mhi = mi & mhm
                    if mp[mi] == mt:
                        mh[mhi] = 1
                    elif mh[mhi]:
                        mh[mhi] = 0
                    else:
                        mp[mi] = mt
                if um:
                    if p_b == t:
                        bh[bi & bhm] = 1
                    if p_0 == t:
                        h0[g0i & g0hm] = 1
                    if p_1 == t:
                        h1[g1i & g1hm] = 1
                else:
                    bh[bi & bhm] = 1
                continue
            # Misprediction.
            if p_b != maj:
                mt = 1 if maj == t else 0
                mhi = mi & mhm
                if mp[mi] == mt:
                    mh[mhi] = 1
                elif mh[mhi]:
                    mh[mhi] = 0
                else:
                    mp[mi] = mt
                if mp[mi]:  # the chooser re-read (peek) after its update
                    if maj == t:
                        if p_b == t:
                            bh[bi & bhm] = 1
                        if p_0 == t:
                            h0[g0i & g0hm] = 1
                        if p_1 == t:
                            h1[g1i & g1hm] = 1
                        continue
                elif p_b == t:
                    bh[bi & bhm] = 1
                    continue
            if p_b == t:
                bh[bi & bhm] = 1
            elif bh[bi & bhm]:
                bh[bi & bhm] = 0
            else:
                bp[bi] = t
            if p_0 == t:
                h0[g0i & g0hm] = 1
            elif h0[g0i & g0hm]:
                h0[g0i & g0hm] = 0
            else:
                p0[g0i] = t
            if p_1 == t:
                h1[g1i & g1hm] = 1
            elif h1[g1i & g1hm]:
                h1[g1i & g1hm] = 0
            else:
                p1[g1i] = t
        return res

    def _train_many_uncoupled(self, indices: list[np.ndarray],
                              takens: np.ndarray) -> np.ndarray:
        """Vectorized read + train over positions with pairwise-disjoint
        counter entries; returns the overall predictions.

        Every mask below restates one arm of :meth:`_train_partial` /
        :meth:`_train_total`; the chooser's post-update re-read is resolved
        by stepping Meta's packed state through the transition tables
        without touching the array (the actual write happens once, in
        ``train_many_unique``).
        """
        bim_i, g0_i, g1_i, meta_i = indices
        p_bim = self.bim.predict_many(bim_i)
        p_g0 = self.g0.predict_many(g0_i)
        p_g1 = self.g1.predict_many(g1_i)
        packed_meta = self.meta.packed_many(meta_i)
        use_majority = packed_meta >= 2
        majority = (p_bim.astype(np.int8) + p_g0 + p_g1) >= 2
        overall = np.where(use_majority, majority, p_bim)
        disagree = p_bim != majority
        mtaken = majority == takens

        telemetry = self._telemetry
        if telemetry.enabled:
            self._count_arbitration_many(telemetry, p_bim, use_majority,
                                         majority, overall, takens)

        if self.update_policy == "total":
            if telemetry.enabled:
                telemetry.count("update.full", len(takens))
            self.meta.train_many_unique(meta_i, mtaken, update=disagree)
            everywhere = np.ones(len(takens), dtype=np.bool_)
            self.bim.train_many_unique(bim_i, takens, update=everywhere)
            self.g0.train_many_unique(g0_i, takens, update=everywhere)
            self.g1.train_many_unique(g1_i, takens, update=everywhere)
            return overall

        correct = overall == takens
        all_agree = (p_bim == p_g0) & (p_bim == p_g1)
        meta_strengthen = correct & disagree
        meta_update = ~correct & disagree
        stepped_meta = np.where(mtaken, _STEP_TAKEN[packed_meta],
                                _STEP_NOT_TAKEN[packed_meta])
        new_use_majority = stepped_meta >= 2
        fixed = meta_update & (np.where(new_use_majority, majority, p_bim)
                               == takens)
        update_all = (~correct & ~disagree) | (meta_update & ~fixed)
        majority_side = (correct & ~all_agree & use_majority) \
            | (fixed & new_use_majority)
        bim_only = (correct & ~all_agree & ~use_majority) \
            | (fixed & ~new_use_majority)
        if telemetry.enabled:
            suppressed = int(np.count_nonzero(correct & all_agree))
            if suppressed:
                telemetry.count("update.suppressed", suppressed)
                telemetry.count("update.suppressed_writes", 3 * suppressed)
            strengthened = int(np.count_nonzero(correct & ~all_agree))
            if strengthened:
                telemetry.count("update.strengthened", strengthened)
            chooser_fixed = int(np.count_nonzero(fixed))
            if chooser_fixed:
                telemetry.count("update.chooser_fixed", chooser_fixed)
            full = int(np.count_nonzero(update_all))
            if full:
                telemetry.count("update.full", full)
        self.meta.train_many_unique(meta_i, mtaken,
                                    strengthen=meta_strengthen,
                                    update=meta_update)
        self.bim.train_many_unique(
            bim_i, takens,
            strengthen=(majority_side & (p_bim == takens)) | bim_only,
            update=update_all)
        self.g0.train_many_unique(g0_i, takens,
                                  strengthen=majority_side & (p_g0 == takens),
                                  update=update_all)
        self.g1.train_many_unique(g1_i, takens,
                                  strengthen=majority_side & (p_g1 == takens),
                                  update=update_all)
        return overall

    # -- training ------------------------------------------------------------

    @staticmethod
    def _count_arbitration_many(telemetry, p_bim, use_majority, majority,
                                overall, takens) -> None:
        """Vectorized Meta-arbitration accounting: which side the chooser
        selected per branch, and which candidates were correct.  Mirrors the
        scalar accounting in :meth:`_train` exactly (zero counts stay
        unrecorded, so scalar and batched sinks hold identical keys)."""
        n = len(takens)
        majority_chosen = int(np.count_nonzero(use_majority))
        if majority_chosen:
            telemetry.count("arbitration.majority_chosen", majority_chosen)
        if n - majority_chosen:
            telemetry.count("arbitration.bim_chosen", n - majority_chosen)
        for name, correct_mask in (
                ("arbitration.bim_correct", p_bim == takens),
                ("arbitration.majority_correct", majority == takens),
                ("arbitration.chosen_correct", overall == takens)):
            hits = int(np.count_nonzero(correct_mask))
            if hits:
                telemetry.count(name, hits)

    def _train(self, indices, state, taken: bool) -> None:
        telemetry = self._telemetry
        if telemetry.enabled:
            p_bim, _, _, use_majority, majority, overall = state
            telemetry.count("arbitration.majority_chosen" if use_majority
                            else "arbitration.bim_chosen")
            if p_bim == taken:
                telemetry.count("arbitration.bim_correct")
            if majority == taken:
                telemetry.count("arbitration.majority_correct")
            if overall == taken:
                telemetry.count("arbitration.chosen_correct")
        if self.update_policy == "partial":
            self._train_partial(indices, state, taken)
        else:
            self._train_total(indices, state, taken)

    def _strengthen_majority_side(self, indices, state, taken: bool) -> None:
        """Strengthen every e-gskew bank that predicted correctly."""
        bim_i, g0_i, g1_i, _ = indices
        p_bim, p_g0, p_g1 = state[0], state[1], state[2]
        if p_bim == taken:
            self.bim.strengthen(bim_i, taken)
        if p_g0 == taken:
            self.g0.strengthen(g0_i, taken)
        if p_g1 == taken:
            self.g1.strengthen(g1_i, taken)

    def _update_all_banks(self, indices, taken: bool) -> None:
        bim_i, g0_i, g1_i, _ = indices
        self.bim.update(bim_i, taken)
        self.g0.update(g0_i, taken)
        self.g1.update(g1_i, taken)

    def _train_partial(self, indices, state, taken: bool) -> None:
        """The EV8 partial update policy, verbatim from Section 4.2.

        On a correct prediction:
          * all three predictors agreeing -> no update (Rationale 1: leave
            the counters stealable);
          * otherwise strengthen Meta if BIM and the majority disagreed, and
            strengthen the correct prediction on the participating tables.
        On a misprediction:
          * if BIM and the majority disagreed, first update the chooser,
            recompute the overall prediction with the new chooser value,
            then either strengthen the (now correct) participating tables or
            update all banks (Rationale 2: avoid stealing entries when the
            chooser alone fixes the misprediction);
          * if both agreed (both wrong), update all banks.
        """
        bim_i, g0_i, g1_i, meta_i = indices
        p_bim, p_g0, p_g1, use_majority, majority, overall = state
        telemetry = self._telemetry
        if overall == taken:
            if p_bim == p_g0 == p_g1:
                if telemetry.enabled:
                    # Rationale 1 suppressed the three e-gskew bank writes a
                    # total-update policy would have issued.
                    telemetry.count("update.suppressed")
                    telemetry.count("update.suppressed_writes", 3)
                return
            if telemetry.enabled:
                telemetry.count("update.strengthened")
            if p_bim != majority:
                # The used side was the correct one; reinforce the choice.
                self.meta.strengthen(meta_i, majority == taken)
            if use_majority:
                self._strengthen_majority_side(indices, state, taken)
            else:
                self.bim.strengthen(bim_i, taken)
            return
        # Misprediction.
        if p_bim != majority:
            self.meta.update(meta_i, majority == taken)
            # peek, not predict: the chooser re-read is update-time logic,
            # not a fetch-port read, so it stays out of bank.meta.reads.
            new_use_majority = self.meta.peek(meta_i)
            new_overall = majority if new_use_majority else p_bim
            if new_overall == taken:
                if telemetry.enabled:
                    telemetry.count("update.chooser_fixed")
                if new_use_majority:
                    self._strengthen_majority_side(indices, state, taken)
                else:
                    self.bim.strengthen(bim_i, taken)
                return
        if telemetry.enabled:
            telemetry.count("update.full")
        self._update_all_banks(indices, taken)

    def _train_total(self, indices, state, taken: bool) -> None:
        """Conventional total update: every bank trains on every outcome,
        the chooser trains whenever its inputs disagree."""
        _, _, _, _, majority, _ = state
        p_bim = state[0]
        if self._telemetry.enabled:
            self._telemetry.count("update.full")
        if p_bim != majority:
            self.meta.update(indices[3], majority == taken)
        self._update_all_banks(indices, taken)

    # -- bookkeeping ---------------------------------------------------------

    @property
    def storage_bits(self) -> int:
        return (self.bim.storage_bits + self.g0.storage_bits
                + self.g1.storage_bits + self.meta.storage_bits)

    def table_sizes(self) -> dict[str, tuple[int, int]]:
        """(prediction entries, hysteresis entries) per logical table."""
        return {
            "BIM": (self.bim.size, self.bim.hysteresis_size),
            "G0": (self.g0.size, self.g0.hysteresis_size),
            "G1": (self.g1.size, self.g1.hysteresis_size),
            "Meta": (self.meta.size, self.meta.hysteresis_size),
        }
