"""Observability: structured telemetry sinks for the simulation stack.

See :mod:`repro.obs.telemetry` for the sink types and the process-global
active-sink plumbing, and DESIGN.md ("Telemetry schema") for the recorded
counter/histogram/span names and their stability promise.
"""

from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    get_telemetry,
    render_summary,
    set_telemetry,
    use_telemetry,
)

__all__ = [
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "get_telemetry",
    "render_summary",
    "set_telemetry",
    "use_telemetry",
]
