"""Structured telemetry: counters, histograms, and wall-clock spans.

The paper's design arguments are all *located*: partial update exists to cut
hysteresis-array write traffic (Section 4.2), Meta arbitration decides
BIM-vs-eskew per branch (Section 4.1), bank interleaving exists to bound
per-bank port pressure (Section 6).  None of that is visible in an aggregate
misprediction count, so this module provides the observability layer the
simulation stack records into:

* :class:`NullTelemetry` — the default sink.  Every hook is a no-op and the
  hot paths gate on its ``enabled`` flag, so the disabled cost is one
  attribute test per instrumented block (vectorized code paths pay it once
  per *chunk*, not per branch).
* :class:`Telemetry` — the recording sink: monotonic **counters** (event
  and traffic counts), **histograms** (latency/size observations reduced to
  count/total/min/max), and **spans** (nested wall-clock regions keyed by
  their slash-joined path, e.g. ``batched_run/materialize``).

Sinks serialize to JSON and CSV (:meth:`Telemetry.to_json` /
:meth:`Telemetry.to_csv`), merge deterministically
(:meth:`Telemetry.merge_snapshot` — the mechanism ``sweep_parallel`` uses to
fold per-worker sinks back together), and render a human summary
(:func:`render_summary`, the table ``runall`` appends to its report).

A process-global *active* sink (default: the null sink) lets deep layers —
the trace cache, the result cache, experiment modules — record without
threading a parameter through every signature: :func:`set_telemetry` /
:func:`use_telemetry` install one, :func:`get_telemetry` resolves one.

Schema stability: counter/histogram/span *names* recorded by the repro
stack are a documented interface (see DESIGN.md "Telemetry schema") —
renaming one is a breaking change to downstream consumers of the JSON/CSV
artifacts.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Mapping

__all__ = ["NullTelemetry", "Telemetry", "NULL_TELEMETRY", "get_telemetry",
           "set_telemetry", "use_telemetry", "render_summary"]


class NullTelemetry:
    """The disabled sink: every hook is a no-op.

    This is the base class of :class:`Telemetry` so instrumented code holds
    a single reference type; hot paths guard instrumentation blocks with
    ``if sink.enabled:`` and skip even the argument computation when
    disabled.
    """

    __slots__ = ()

    #: Instrumented code gates on this: False means "record nothing".
    enabled = False

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the monotonic counter ``name``."""

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a region of work; spans nest (the recorded key is the
        slash-joined path of open span names)."""
        yield

    def snapshot(self) -> dict:
        """A plain-dict copy of everything recorded so far."""
        return {"counters": {}, "histograms": {}, "spans": {}}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(enabled={self.enabled})"


NULL_TELEMETRY = NullTelemetry()
"""The shared disabled sink every instrumented object defaults to."""


class Telemetry(NullTelemetry):
    """The recording sink.

    Counters are plain integer accumulators.  Histograms reduce a stream of
    observations to ``count/total/min/max`` (enough for latency accounting
    without unbounded memory).  Spans are wall-clock timed regions keyed by
    their nesting path: opening ``span("a")`` inside ``span("b")`` records
    under ``"b/a"``, and a parent's time always covers its children's.
    """

    __slots__ = ("counters", "histograms", "spans", "_stack")

    enabled = True

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, dict[str, float]] = {}
        self.spans: dict[str, dict[str, float]] = {}
        self._stack: list[str] = []

    # -- recording -----------------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(value)

    def observe(self, name: str, value: float) -> None:
        value = float(value)
        stats = self.histograms.get(name)
        if stats is None:
            self.histograms[name] = {"count": 1, "total": value,
                                     "min": value, "max": value}
        else:
            stats["count"] += 1
            stats["total"] += value
            if value < stats["min"]:
                stats["min"] = value
            if value > stats["max"]:
                stats["max"] = value

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        if "/" in name:
            raise ValueError(f"span names must not contain '/': {name!r}")
        self._stack.append(name)
        path = "/".join(self._stack)
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            popped = self._stack.pop()
            assert popped == name  # context-manager discipline guarantees LIFO
            record = self.spans.get(path)
            if record is None:
                self.spans[path] = {"count": 1, "seconds": elapsed}
            else:
                record["count"] += 1
                record["seconds"] += elapsed

    @property
    def span_depth(self) -> int:
        """Number of currently open spans (0 when quiescent)."""
        return len(self._stack)

    # -- folding -------------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "counters": dict(self.counters),
            "histograms": {name: dict(stats)
                           for name, stats in self.histograms.items()},
            "spans": {path: dict(record)
                      for path, record in self.spans.items()},
        }

    def merge_snapshot(self, snapshot: Mapping) -> None:
        """Fold another sink's :meth:`snapshot` into this one.

        Counters and span/histogram counts add; histogram min/max widen.
        Merging is associative and, for counters, commutative — merging
        per-worker snapshots in any fixed order yields the same counters a
        serial run records.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)
        for name, stats in snapshot.get("histograms", {}).items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = dict(stats)
            else:
                mine["count"] += stats["count"]
                mine["total"] += stats["total"]
                mine["min"] = min(mine["min"], stats["min"])
                mine["max"] = max(mine["max"], stats["max"])
        for path, record in snapshot.get("spans", {}).items():
            mine = self.spans.get(path)
            if mine is None:
                self.spans[path] = dict(record)
            else:
                mine["count"] += record["count"]
                mine["seconds"] += record["seconds"]

    def merge(self, other: "Telemetry") -> None:
        """Fold another live sink into this one."""
        self.merge_snapshot(other.snapshot())

    # -- serialization -------------------------------------------------------

    def to_json(self, path: str | Path | None = None) -> str:
        """Serialize the snapshot as JSON; optionally also write ``path``."""
        text = json.dumps(self.snapshot(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(text + "\n")
        return text

    def to_csv(self, path: str | Path | None = None) -> str:
        """Serialize as flat CSV rows ``kind,name,field,value`` (one row per
        scalar, stable sort order); optionally also write ``path``."""
        rows = ["kind,name,field,value"]
        snapshot = self.snapshot()
        for name in sorted(snapshot["counters"]):
            rows.append(f"counter,{name},value,{snapshot['counters'][name]}")
        for name in sorted(snapshot["histograms"]):
            stats = snapshot["histograms"][name]
            for field in ("count", "total", "min", "max"):
                rows.append(f"histogram,{name},{field},{stats[field]!r}")
        for path_name in sorted(snapshot["spans"]):
            record = snapshot["spans"][path_name]
            rows.append(f"span,{path_name},count,{int(record['count'])}")
            rows.append(f"span,{path_name},seconds,{record['seconds']!r}")
        text = "\n".join(rows) + "\n"
        if path is not None:
            Path(path).write_text(text)
        return text

    def write(self, path: str | Path) -> None:
        """Write to ``path``, choosing the format from the extension
        (``.csv`` -> CSV, anything else -> JSON)."""
        if str(path).endswith(".csv"):
            self.to_csv(path)
        else:
            self.to_json(path)


# -- the process-global active sink ------------------------------------------

_ACTIVE: NullTelemetry = NULL_TELEMETRY


def get_telemetry(sink: NullTelemetry | None = None) -> NullTelemetry:
    """Resolve a telemetry argument: an explicit sink passes through,
    ``None`` resolves the process-global active sink (default: null)."""
    return sink if sink is not None else _ACTIVE


def set_telemetry(sink: NullTelemetry | None) -> NullTelemetry:
    """Install ``sink`` as the process-global active sink (``None`` restores
    the null sink).  Returns the previously active sink."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = sink if sink is not None else NULL_TELEMETRY
    return previous


@contextmanager
def use_telemetry(sink: NullTelemetry | None) -> Iterator[NullTelemetry]:
    """Scoped :func:`set_telemetry`: install for the block, then restore."""
    previous = set_telemetry(sink)
    try:
        yield get_telemetry()
    finally:
        set_telemetry(previous)


# -- human-readable summary --------------------------------------------------

def _bank_rows(counters: Mapping[str, int]) -> dict[str, dict[str, int]]:
    """Group ``bank.<label>.<metric>`` counters into per-bank rows."""
    banks: dict[str, dict[str, int]] = {}
    for name, value in counters.items():
        if not name.startswith("bank."):
            continue
        _, label, metric = name.split(".", 2)
        banks.setdefault(label, {})[metric] = value
    return banks


def render_summary(snapshot: Mapping) -> str:
    """Render a snapshot as the fixed-width summary table ``runall`` embeds.

    Sections: per-bank traffic (reads / prediction writes / hysteresis
    writes / sharing conflicts), then every non-bank counter, then
    histograms and spans.  Empty sections are omitted.
    """
    counters = snapshot.get("counters", {})
    lines: list[str] = []

    banks = _bank_rows(counters)
    if banks:
        metrics = ("reads", "prediction_writes", "hysteresis_writes",
                   "sharing_conflicts")
        header = f"{'bank':<10}" + "".join(f"{m:>20}" for m in metrics)
        lines.append("Per-bank counter traffic")
        lines.append(header)
        lines.append("-" * len(header))
        for label in sorted(banks):
            row = banks[label]
            lines.append(f"{label:<10}" + "".join(
                f"{row.get(m, 0):>20,}" for m in metrics))
        lines.append("")

    other = {name: value for name, value in counters.items()
             if not name.startswith("bank.")}
    if other:
        width = max(len(name) for name in other)
        lines.append("Counters")
        for name in sorted(other):
            lines.append(f"{name:<{width}}  {other[name]:>15,}")
        lines.append("")

    histograms = snapshot.get("histograms", {})
    if histograms:
        width = max(len(name) for name in histograms)
        lines.append("Histograms  (count / mean / min / max)")
        for name in sorted(histograms):
            stats = histograms[name]
            mean = stats["total"] / stats["count"] if stats["count"] else 0.0
            lines.append(f"{name:<{width}}  {int(stats['count']):>8} "
                         f"{mean:>12.6f} {stats['min']:>12.6f} "
                         f"{stats['max']:>12.6f}")
        lines.append("")

    spans = snapshot.get("spans", {})
    if spans:
        width = max(len(path) for path in spans)
        lines.append("Spans  (count / total seconds)")
        for path in sorted(spans):
            record = spans[path]
            lines.append(f"{path:<{width}}  {int(record['count']):>8} "
                         f"{record['seconds']:>12.4f}")
        lines.append("")

    if not lines:
        return "(no telemetry recorded)"
    return "\n".join(lines).rstrip()
