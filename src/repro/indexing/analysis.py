"""Index-distribution quality metrics.

Section 7.2's first design principle for the EV8 index functions is to
"spread the accesses over the predictor table as uniformly as possible", and
Section 7.3 reports that PC-only wordline selection left some regions of the
tables congested and others idle (motivating the use of history bits in the
wordline number — evaluated in Fig 9).  These helpers quantify that
uniformity for any stream of computed indices.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["index_counts", "normalized_entropy", "coefficient_of_variation",
           "hot_fraction", "IndexQuality", "assess_indices"]


def index_counts(indices, size: int) -> np.ndarray:
    """Histogram of index usage over a table of ``size`` entries."""
    if size <= 0:
        raise ValueError(f"table size must be positive, got {size}")
    counts = np.bincount(np.asarray(list(indices), dtype=np.int64) % size,
                         minlength=size)
    return counts


def normalized_entropy(counts: np.ndarray) -> float:
    """Shannon entropy of the access distribution, normalised to [0, 1]
    (1 = perfectly uniform use of all entries)."""
    total = counts.sum()
    if total == 0 or len(counts) <= 1:
        return 0.0
    probabilities = counts[counts > 0] / total
    entropy = float(-(probabilities * np.log2(probabilities)).sum())
    return entropy / math.log2(len(counts))


def coefficient_of_variation(counts: np.ndarray) -> float:
    """Std/mean of per-entry access counts (0 = perfectly uniform)."""
    mean = counts.mean()
    if mean == 0:
        return 0.0
    return float(counts.std() / mean)


def hot_fraction(counts: np.ndarray, fraction: float = 0.1) -> float:
    """Share of accesses absorbed by the hottest ``fraction`` of entries.

    A perfectly uniform distribution gives ``fraction``; congestion gives
    values approaching 1.
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    total = counts.sum()
    if total == 0:
        return 0.0
    k = max(1, int(round(len(counts) * fraction)))
    hottest = np.sort(counts)[-k:]
    return float(hottest.sum() / total)


class IndexQuality:
    """Bundle of uniformity metrics for one index stream."""

    __slots__ = ("size", "entropy", "cv", "hot10", "used_fraction")

    def __init__(self, size: int, entropy: float, cv: float, hot10: float,
                 used_fraction: float) -> None:
        self.size = size
        self.entropy = entropy
        self.cv = cv
        self.hot10 = hot10
        self.used_fraction = used_fraction

    def __repr__(self) -> str:
        return (f"IndexQuality(size={self.size}, entropy={self.entropy:.3f}, "
                f"cv={self.cv:.2f}, hot10={self.hot10:.2f}, "
                f"used={self.used_fraction:.3f})")


def assess_indices(indices, size: int) -> IndexQuality:
    """Compute all uniformity metrics for a stream of indices."""
    counts = index_counts(indices, size)
    return IndexQuality(
        size=size,
        entropy=normalized_entropy(counts),
        cv=coefficient_of_variation(counts),
        hot10=hot_fraction(counts, 0.1),
        used_fraction=float((counts > 0).sum() / size),
    )
