"""Index functions: skewing family, information-word folding, distribution
quality analysis."""

from repro.indexing.analysis import (
    IndexQuality,
    assess_indices,
    coefficient_of_variation,
    hot_fraction,
    index_counts,
    normalized_entropy,
)
from repro.indexing.fold import PC_FIELD_BITS, gshare_index, info_word
from repro.indexing.skew import (
    SKEW_FUNCTION_COUNT,
    h_function,
    h_inverse,
    skew_index,
)

__all__ = [
    "IndexQuality",
    "assess_indices",
    "coefficient_of_variation",
    "hot_fraction",
    "index_counts",
    "normalized_entropy",
    "PC_FIELD_BITS",
    "gshare_index",
    "info_word",
    "SKEW_FUNCTION_COUNT",
    "h_function",
    "h_inverse",
    "skew_index",
]
