"""Skewing functions for multi-bank predictors.

The e-gskew and 2Bc-gskew predictors index each bank with a *different*
hashing function of the same (address, history) pair, chosen so that two
information vectors colliding in one bank are unlikely to collide in the
others — the majority vote then tolerates any single-bank collision.  The
paper uses the function family of the skewed-associative cache papers
(Seznec & Bodin [17], Michaud et al. [15]); Section 8.1.1: "indexing
functions from the family presented in [17, 15] were used for all
predictors".

That family is built from a bijection ``H`` on n-bit values and its inverse:
``H`` is a one-position shift with an XOR feedback (a Galois LFSR step).  For
a 2n-bit information word split into halves ``(v2, v1)``, bank ``k`` uses one
of::

    f0 = H(v1)    ^ Hinv(v2) ^ v2
    f1 = H(v1)    ^ Hinv(v2) ^ v1
    f2 = Hinv(v1) ^ H(v2)    ^ v2
    f3 = Hinv(v1) ^ H(v2)    ^ v1

Two words that differ in either half map to different indices under at least
three of the four functions ("inter-bank dispersion").
"""

from __future__ import annotations

import numpy as np

from repro.common.bitops import mask

__all__ = ["h_function", "h_inverse", "skew_index", "SKEW_FUNCTION_COUNT",
           "h_function_vec", "h_inverse_vec", "skew_index_vec"]

SKEW_FUNCTION_COUNT = 4


def h_function(value: int, width: int) -> int:
    """The skewing bijection ``H`` on ``width``-bit values.

    Rotate left one position, feeding back the XOR of the two top bits into
    bit 0:  ``H(x_{n-1}..x_0) = (x_{n-2}, ..., x_0, x_{n-1} XOR x_{n-2})``.

    >>> h_function(0b1000, 4)
    1
    >>> all(len({h_function(x, 6) for x in range(64)}) == 64 for _ in [0])
    True
    """
    if width < 2:
        raise ValueError(f"H needs at least 2 bits, got width={width}")
    value &= mask(width)
    top = (value >> (width - 1)) & 1
    second = (value >> (width - 2)) & 1
    return ((value << 1) & mask(width)) | (top ^ second)


def h_inverse(value: int, width: int) -> int:
    """The inverse of :func:`h_function`.

    >>> all(h_inverse(h_function(x, 7), 7) == x for x in range(128))
    True
    """
    if width < 2:
        raise ValueError(f"H needs at least 2 bits, got width={width}")
    value &= mask(width)
    low = value & 1
    rest = value >> 1
    top_restored = low ^ (rest >> (width - 2))  # x_{n-1} = y_0 ^ y_{n-1}
    return rest | ((top_restored & 1) << (width - 1))


def skew_index(rank: int, info: int, width: int) -> int:
    """Bank ``rank``'s index for a 2*``width``-bit information word.

    ``rank`` selects one of the four functions of the family; callers with
    more than four banks may also vary the information word per bank.
    """
    if not 0 <= rank < SKEW_FUNCTION_COUNT:
        raise ValueError(
            f"rank must be in 0..{SKEW_FUNCTION_COUNT - 1}, got {rank}")
    v1 = info & mask(width)
    v2 = (info >> width) & mask(width)
    if rank == 0:
        return h_function(v1, width) ^ h_inverse(v2, width) ^ v2
    if rank == 1:
        return h_function(v1, width) ^ h_inverse(v2, width) ^ v1
    if rank == 2:
        return h_inverse(v1, width) ^ h_function(v2, width) ^ v2
    return h_inverse(v1, width) ^ h_function(v2, width) ^ v1


# -- vectorized variants (numpy uint64 arrays, used by the batched engine) ---

def h_function_vec(values: np.ndarray, width: int) -> np.ndarray:
    """Elementwise :func:`h_function` over a uint64 array (bit-identical)."""
    if width < 2:
        raise ValueError(f"H needs at least 2 bits, got width={width}")
    values = values.astype(np.uint64) & np.uint64(mask(width))
    top = (values >> np.uint64(width - 1)) & np.uint64(1)
    second = (values >> np.uint64(width - 2)) & np.uint64(1)
    return ((values << np.uint64(1)) & np.uint64(mask(width))) | (top ^ second)


def h_inverse_vec(values: np.ndarray, width: int) -> np.ndarray:
    """Elementwise :func:`h_inverse` over a uint64 array (bit-identical)."""
    if width < 2:
        raise ValueError(f"H needs at least 2 bits, got width={width}")
    values = values.astype(np.uint64) & np.uint64(mask(width))
    low = values & np.uint64(1)
    rest = values >> np.uint64(1)
    top_restored = (low ^ (rest >> np.uint64(width - 2))) & np.uint64(1)
    return rest | (top_restored << np.uint64(width - 1))


def skew_index_vec(rank: int, info: np.ndarray, width: int) -> np.ndarray:
    """Elementwise :func:`skew_index` over a uint64 array of info words."""
    if not 0 <= rank < SKEW_FUNCTION_COUNT:
        raise ValueError(
            f"rank must be in 0..{SKEW_FUNCTION_COUNT - 1}, got {rank}")
    info = info.astype(np.uint64)
    v1 = info & np.uint64(mask(width))
    v2 = (info >> np.uint64(width)) & np.uint64(mask(width))
    if rank == 0:
        return h_function_vec(v1, width) ^ h_inverse_vec(v2, width) ^ v2
    if rank == 1:
        return h_function_vec(v1, width) ^ h_inverse_vec(v2, width) ^ v1
    if rank == 2:
        return h_inverse_vec(v1, width) ^ h_function_vec(v2, width) ^ v2
    return h_inverse_vec(v1, width) ^ h_function_vec(v2, width) ^ v1
