"""Building and compressing (address, history, path) information words.

Predictor tables have a fixed index width; the information vector (PC bits,
history bits — possibly longer than the index, Section 5.3 — and path
addresses) must be compressed into that width.  The standard academic
technique, used throughout the paper's own simulations, is to concatenate
the fields and XOR-fold the result.
"""

from __future__ import annotations

from repro.common.bitops import mask, xor_fold

__all__ = ["PC_FIELD_BITS", "info_word", "gshare_index"]

PC_FIELD_BITS = 20
"""Address bits retained in information words (instruction-granular: the
2 byte-offset bits are dropped first).  20 bits cover code footprints up to
4 MB, far beyond the synthetic workloads."""


def info_word(pc: int, history: int, history_length: int, width: int,
              path: int = 0, path_bits: int = 0) -> int:
    """Compress (pc, history, path) into a ``width``-bit word.

    The history field is placed above the PC field and the (optional) path
    field above the history, then the concatenation is XOR-folded down to
    ``width`` bits.  With ``history_length = 0`` this degenerates to a pure
    address hash.
    """
    if history_length < 0:
        raise ValueError(f"history length must be >= 0, got {history_length}")
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    vector = (pc >> 2) & mask(PC_FIELD_BITS)
    offset = PC_FIELD_BITS
    if history_length:
        vector |= (history & mask(history_length)) << offset
        offset += history_length
    if path_bits:
        vector |= (path & mask(path_bits)) << offset
    return xor_fold(vector, width)


def gshare_index(pc: int, history: int, history_length: int,
                 width: int) -> int:
    """McFarling's gshare index: PC XOR global history, history aligned to
    the most significant index bits.

    When the history is longer than the index it is XOR-folded first
    (Section 5.3's long-history regime).
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    pc_part = (pc >> 2) & mask(width)
    history &= mask(history_length)
    if history_length <= width:
        history_part = history << (width - history_length)
    else:
        history_part = xor_fold(history, width)
    return pc_part ^ history_part
