"""Building and compressing (address, history, path) information words.

Predictor tables have a fixed index width; the information vector (PC bits,
history bits — possibly longer than the index, Section 5.3 — and path
addresses) must be compressed into that width.  The standard academic
technique, used throughout the paper's own simulations, is to concatenate
the fields and XOR-fold the result.

The ``*_vec`` variants compute the same functions over whole numpy arrays of
branches at once — the index-computation half of the batched simulation
engine (:mod:`repro.sim.engine`).  They are bit-identical to the scalar
functions: XOR-folding is GF(2)-linear, so a concatenation folds to the XOR
of its independently folded fields, and a field shifted by a whole number of
fold segments folds to the same value (segments only change places under the
XOR).  That identity lets the vector path fold each ≤64-bit field separately
in uint64 arithmetic even though the concatenated word (PC + up to 64
history bits + path) exceeds 64 bits.
"""

from __future__ import annotations

import numpy as np

from repro.common.bitops import mask, xor_fold

__all__ = ["PC_FIELD_BITS", "info_word", "gshare_index",
           "xor_fold_vec", "fold_field_vec", "info_word_vec",
           "gshare_index_vec"]

PC_FIELD_BITS = 20
"""Address bits retained in information words (instruction-granular: the
2 byte-offset bits are dropped first).  20 bits cover code footprints up to
4 MB, far beyond the synthetic workloads."""


def info_word(pc: int, history: int, history_length: int, width: int,
              path: int = 0, path_bits: int = 0) -> int:
    """Compress (pc, history, path) into a ``width``-bit word.

    The history field is placed above the PC field and the (optional) path
    field above the history, then the concatenation is XOR-folded down to
    ``width`` bits.  With ``history_length = 0`` this degenerates to a pure
    address hash.
    """
    if history_length < 0:
        raise ValueError(f"history length must be >= 0, got {history_length}")
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    vector = (pc >> 2) & mask(PC_FIELD_BITS)
    offset = PC_FIELD_BITS
    if history_length:
        vector |= (history & mask(history_length)) << offset
        offset += history_length
    if path_bits:
        vector |= (path & mask(path_bits)) << offset
    return xor_fold(vector, width)


def gshare_index(pc: int, history: int, history_length: int,
                 width: int) -> int:
    """McFarling's gshare index: PC XOR global history, history aligned to
    the most significant index bits.

    When the history is longer than the index it is XOR-folded first
    (Section 5.3's long-history regime).
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    pc_part = (pc >> 2) & mask(width)
    history &= mask(history_length)
    if history_length <= width:
        history_part = history << (width - history_length)
    else:
        history_part = xor_fold(history, width)
    return pc_part ^ history_part


# -- vectorized variants (numpy uint64 arrays, one element per branch) -------

def xor_fold_vec(values: np.ndarray, width: int) -> np.ndarray:
    """Elementwise :func:`repro.common.bitops.xor_fold` over a uint64 array.

    >>> int(xor_fold_vec(np.array([0b1111_0000_1010], dtype=np.uint64), 4)[0])
    5
    """
    if width <= 0:
        raise ValueError(f"fold width must be positive, got {width}")
    values = values.astype(np.uint64, copy=True)
    folded = np.zeros_like(values)
    segment_mask = np.uint64(mask(min(width, 64)))
    while values.any():
        folded ^= values & segment_mask
        if width >= 64:
            break  # one segment covers the whole uint64
        values >>= np.uint64(width)
    return folded


def fold_field_vec(values: np.ndarray, offset: int, width: int) -> np.ndarray:
    """XOR-fold of ``values << offset`` down to ``width`` bits, elementwise.

    ``values`` must fit in uint64; the shifted field may conceptually exceed
    64 bits, which is why the fold is performed segment-by-segment instead of
    materializing the shift.  Because segments that move by a whole fold
    width land on the same fold positions, only ``offset % width`` matters.
    """
    if width <= 0:
        raise ValueError(f"fold width must be positive, got {width}")
    if offset < 0:
        raise ValueError(f"field offset must be >= 0, got {offset}")
    cur = values.astype(np.uint64, copy=True)
    folded = np.zeros_like(cur)
    position = offset % width
    while cur.any():
        take = min(width - position, 64)
        chunk = (cur & np.uint64(mask(take))) << np.uint64(position)
        folded ^= chunk
        if take >= 64:
            break
        cur >>= np.uint64(take)
        position = 0
    return folded


def info_word_vec(pc: np.ndarray, history: np.ndarray, history_length: int,
                  width: int, path: np.ndarray | None = None,
                  path_bits: int = 0) -> np.ndarray:
    """Vectorized :func:`info_word` (bit-identical, see module docstring)."""
    if history_length < 0:
        raise ValueError(f"history length must be >= 0, got {history_length}")
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    pc_field = (pc.astype(np.uint64) >> np.uint64(2)) & np.uint64(mask(PC_FIELD_BITS))
    word = fold_field_vec(pc_field, 0, width)
    offset = PC_FIELD_BITS
    if history_length:
        hist_field = history.astype(np.uint64) & np.uint64(mask(history_length))
        word ^= fold_field_vec(hist_field, offset, width)
        offset += history_length
    if path_bits and path is not None:
        path_field = path.astype(np.uint64) & np.uint64(mask(path_bits))
        word ^= fold_field_vec(path_field, offset, width)
    return word


def gshare_index_vec(pc: np.ndarray, history: np.ndarray,
                     history_length: int, width: int) -> np.ndarray:
    """Vectorized :func:`gshare_index` (bit-identical)."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    pc_part = (pc.astype(np.uint64) >> np.uint64(2)) & np.uint64(mask(width))
    hist = history.astype(np.uint64) & np.uint64(mask(history_length))
    if history_length <= width:
        history_part = hist << np.uint64(width - history_length)
    else:
        history_part = xor_fold_vec(hist, width)
    return pc_part ^ history_part
