"""Coupling analysis for multi-table batched replay.

Multi-table predictors with partial update (e-gskew, 2Bc-gskew) have a true
sequential dependence: what each access *writes* depends on what all its
tables *read*, and a later access reading the same entry sees those writes.
That dependence cannot be scanned away like a single table's counter
machine — but it is **sparse**.  Within a bounded chunk of the access
stream, a position whose counter entries are touched by no other position
in the chunk can be replayed in any order relative to the rest:

* no other position writes what it reads (its reads equal the chunk-entry
  state), and
* nothing it writes is read or written by any other position.

So each chunk splits into an *uncoupled* set — replayed in one vectorized
pass against the chunk-entry table state — and a *coupled* remainder,
replayed scalar in stream order (coupled positions only ever share entries
with other coupled positions, so their mutual order is preserved).

The entry-granularity test is done on **hysteresis-group keys** (the index
modulo the hysteresis size): two indices interact iff they fall in the same
group — equal indices share both arrays, unequal indices in one group share
the hysteresis bit (Section 4.4's shared hysteresis).  Private hysteresis
degenerates to plain index equality.
"""

from __future__ import annotations

import numpy as np

__all__ = ["uncoupled_positions", "REPLAY_CHUNK"]

REPLAY_CHUNK = 8192
"""Default replay chunk length.

The tension: longer chunks amortize the vectorized passes over more
positions, but raise the probability that two positions collide in some
table (coupling is quadratic in chunk length for a uniform index stream),
pushing more of the stream onto the scalar path."""


def uncoupled_positions(*key_streams: np.ndarray) -> np.ndarray:
    """Mask of positions whose key is unique in **every** stream.

    Each ``key_streams[t]`` holds one table's entry keys for the same chunk
    of accesses; a position is uncoupled iff, for every table, no other
    position in the chunk has the same key.
    """
    mask: np.ndarray | None = None
    for keys in key_streams:
        _, inverse, counts = np.unique(keys, return_inverse=True,
                                       return_counts=True)
        unique_here = counts[inverse] == 1
        mask = unique_here if mask is None else mask & unique_here
    assert mask is not None
    return mask
