"""Shared low-level building blocks: bit operations, saturating counters,
deterministic randomness."""

from repro.common.bitops import (
    bit,
    bits,
    concat_bits,
    mask,
    parity,
    parity_of_bits,
    popcount,
    reverse_bits,
    rotate_left,
    rotate_right,
    set_bit,
    xor_fold,
)
from repro.common.counters import SplitCounterArray
from repro.common.rng import DEFAULT_SEED, rng_for, seed_from_name

__all__ = [
    "bit",
    "bits",
    "concat_bits",
    "mask",
    "parity",
    "parity_of_bits",
    "popcount",
    "reverse_bits",
    "rotate_left",
    "rotate_right",
    "set_bit",
    "xor_fold",
    "SplitCounterArray",
    "DEFAULT_SEED",
    "rng_for",
    "seed_from_name",
]
