"""Deterministic random-number plumbing.

Every stochastic element of the synthetic workloads (branch bias draws,
control-flow graph wiring, noise in behaviour models) is derived from a
single named seed so that traces — and therefore every experiment result —
are bit-for-bit reproducible across runs and machines.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["seed_from_name", "rng_for", "DEFAULT_SEED"]

DEFAULT_SEED = 0xE58  # "EV8"-flavoured stable project-wide root seed


def seed_from_name(name: str, root_seed: int = DEFAULT_SEED) -> int:
    """Derive a stable 63-bit seed from a string name and a root seed.

    Uses SHA-256 rather than ``hash()`` because the latter is salted per
    process and would break reproducibility.

    >>> seed_from_name("gcc") == seed_from_name("gcc")
    True
    >>> seed_from_name("gcc") != seed_from_name("go")
    True
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little") >> 1


def rng_for(name: str, root_seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Return a numpy Generator deterministically keyed by ``name``."""
    return np.random.default_rng(seed_from_name(name, root_seed))
