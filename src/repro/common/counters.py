"""Two-bit saturating counters with physically split prediction and
hysteresis arrays.

The EV8 predictor stores its 2-bit counters as two separate memory arrays
(Section 4.3 of the paper): the *prediction* array holds the direction bit
read at fetch time, the *hysteresis* array holds the strength bit touched at
update time.  The partial update policy only ever needs:

* a read of the prediction array to predict,
* a write of the hysteresis array to *strengthen* a correct prediction,
* a read of the hysteresis array plus writes of both arrays on a
  misprediction.

Section 4.4 additionally allows a hysteresis array *smaller* than the
prediction array: two prediction entries whose indices differ only in the
most significant bit share one hysteresis entry, so the hysteresis array
suffers more aliasing than the prediction array.

The conventional 2-bit counter states map onto (prediction, hysteresis) as::

    strong not-taken  = (0, 1)
    weak   not-taken  = (0, 0)
    weak   taken      = (1, 0)
    strong taken      = (1, 1)

i.e. the prediction bit is the counter's direction and the hysteresis bit is
its strength.  ``update`` implements the usual saturating-counter step in
this encoding; ``strengthen`` and ``weaken`` expose the half-steps the
partial update policy needs.

:meth:`SplitCounterArray.batch_access` is the vectorized heart of the
batched simulation engine (:mod:`repro.sim.engine`): it replays a whole
predict-then-train index/outcome stream through the array in numpy,
bit-identically to calling ``predict`` + ``update`` per branch.  The trick:
with private hysteresis, counters at different indices never interact, so a
stable sort by index groups each counter's accesses into a contiguous,
temporally ordered run; within runs, the counter step is a state machine
over 4 states, and state-machine transition *composition* is associative —
so the per-run sequential dependence resolves with a segmented Hillis-Steele
prefix scan (log2(n) fully-vectorized composition passes) instead of a
per-branch Python loop.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SplitCounterArray"]

# Saturating-counter transition tables over the packed state
# s = 2*direction + strength (0 = weak NT, 1 = strong NT, 2 = weak T,
# 3 = strong T): _STEP_NOT_TAKEN[s] / _STEP_TAKEN[s] is the state after
# training on a not-taken / taken outcome — exactly ``_step_towards``.
_STEP_NOT_TAKEN = np.array([1, 1, 0, 2], dtype=np.uint8)
_STEP_TAKEN = np.array([2, 0, 3, 3], dtype=np.uint8)


class SplitCounterArray:
    """An array of 2-bit saturating counters stored as split prediction and
    hysteresis bit arrays, with optional hysteresis sharing.

    Parameters
    ----------
    size:
        Number of prediction entries.  Must be a power of two.
    hysteresis_size:
        Number of hysteresis entries.  Must be a power of two and divide
        ``size``; when smaller than ``size``, ``size / hysteresis_size``
        prediction entries share each hysteresis entry (the EV8 uses a ratio
        of 2 for G0 and Meta; the index is the prediction index with the most
        significant bit(s) dropped).  Defaults to ``size`` (private
        hysteresis).
    init_taken:
        Initial direction of every counter.  The paper initialises all
        entries weakly not-taken (Section 8.1.1), which is the default.
    """

    __slots__ = ("size", "hysteresis_size", "_prediction", "_hysteresis")

    def __init__(self, size: int, hysteresis_size: int | None = None, *,
                 init_taken: bool = False) -> None:
        if size <= 0 or size & (size - 1):
            raise ValueError(f"counter array size must be a power of two, got {size}")
        if hysteresis_size is None:
            hysteresis_size = size
        if hysteresis_size <= 0 or hysteresis_size & (hysteresis_size - 1):
            raise ValueError(
                f"hysteresis size must be a power of two, got {hysteresis_size}")
        if hysteresis_size > size:
            raise ValueError(
                f"hysteresis size {hysteresis_size} exceeds prediction size {size}")
        self.size = size
        self.hysteresis_size = hysteresis_size
        initial = 1 if init_taken else 0
        self._prediction = bytearray([initial] * size)
        # Weak initial state: hysteresis 0 regardless of direction.
        self._hysteresis = bytearray(hysteresis_size)

    # -- index plumbing ----------------------------------------------------

    def _hysteresis_index(self, index: int) -> int:
        """Map a prediction index to its (possibly shared) hysteresis index.

        Sharing drops the most significant bit(s) of the prediction index
        (Section 4.4: "the prediction table and the hysteresis table are
        indexed using the same index function, except the most significant
        bit").
        """
        return index & (self.hysteresis_size - 1)

    def sharing_partners(self, index: int) -> list[int]:
        """Return all prediction indices sharing ``index``'s hysteresis entry."""
        base = self._hysteresis_index(index)
        ratio = self.size // self.hysteresis_size
        return [base + k * self.hysteresis_size for k in range(ratio)]

    # -- reads -------------------------------------------------------------

    def predict(self, index: int) -> bool:
        """Return the direction bit (True = predict taken).

        This is the only read needed at fetch time.
        """
        return bool(self._prediction[index & (self.size - 1)])

    def hysteresis(self, index: int) -> bool:
        """Return the hysteresis (strength) bit for a prediction index."""
        return bool(self._hysteresis[self._hysteresis_index(index & (self.size - 1))])

    def counter_value(self, index: int) -> int:
        """Return the conventional 2-bit counter value (0..3) for debugging
        and tests: 0/1 = strong/weak not-taken, 2/3 = weak/strong taken."""
        index &= self.size - 1
        direction = self._prediction[index]
        strength = self._hysteresis[self._hysteresis_index(index)]
        if direction:
            return 2 + strength
        return 1 - strength

    # -- writes ------------------------------------------------------------

    def strengthen(self, index: int, taken: bool) -> None:
        """Reinforce a correct prediction: saturate the counter towards the
        outcome without flipping the direction bit.

        Matches the partial-update "strengthen" operation: only the
        hysteresis array is written, and only when the stored direction
        agrees with the outcome (it always does when called on a correct
        prediction, but a shared hysteresis entry may currently be weak
        because of an alias, hence the unconditional set).
        """
        index &= self.size - 1
        if bool(self._prediction[index]) == taken:
            self._hysteresis[self._hysteresis_index(index)] = 1
        else:
            # Direction disagrees (possible when the caller strengthens a
            # majority vote that this particular bank did not contribute
            # to).  A strengthen in the wrong direction is a weaken.
            self._step_towards(index, taken)

    def update(self, index: int, taken: bool) -> None:
        """Full saturating-counter update step towards ``taken``."""
        self._step_towards(index & (self.size - 1), taken)

    def _step_towards(self, index: int, taken: bool) -> None:
        h_index = self._hysteresis_index(index)
        direction = self._prediction[index]
        strength = self._hysteresis[h_index]
        if bool(direction) == taken:
            if not strength:
                self._hysteresis[h_index] = 1
        elif strength:
            self._hysteresis[h_index] = 0
        else:
            self._prediction[index] = 1 if taken else 0
            # Stay weak after a direction flip (00 <-> 10 transition).

    # -- batched access ------------------------------------------------------

    @property
    def batch_supported(self) -> bool:
        """Whether :meth:`batch_access` is available.

        Shared hysteresis couples prediction entries through their common
        hysteresis bit, so the per-index independence the sort-and-scan
        relies on does not hold; those configurations must replay scalar.
        """
        return self.hysteresis_size == self.size

    def batch_access(self, indices: np.ndarray, takens: np.ndarray,
                     chunk: int = 1 << 20) -> np.ndarray:
        """Vectorized predict-then-train over a whole access stream.

        Equivalent to ``[self.predict(i) for i in indices]`` interleaved with
        ``self.update(i, t)`` per element, in stream order: returns the
        per-access predictions (bool array) and leaves every counter in the
        same final state the scalar replay would.  Processed in chunks of
        ``chunk`` accesses to bound the scan's working memory; the table
        state carries between chunks, so chunking does not change results.
        """
        if not self.batch_supported:
            raise ValueError(
                "batch_access requires private hysteresis (shared-hysteresis"
                " arrays couple entries and must be replayed scalar)")
        indices = np.asarray(indices).astype(np.int64, copy=False)
        takens = np.asarray(takens, dtype=np.bool_)
        if indices.shape != takens.shape:
            raise ValueError(
                f"index/outcome streams have mismatched shapes: "
                f"{indices.shape} vs {takens.shape}")
        indices = indices & (self.size - 1)
        predictions = np.empty(len(indices), dtype=np.bool_)
        for lo in range(0, len(indices), max(chunk, 1)):
            hi = lo + max(chunk, 1)
            predictions[lo:hi] = self._batch_access_chunk(indices[lo:hi],
                                                          takens[lo:hi])
        return predictions

    def _batch_access_chunk(self, indices: np.ndarray,
                            takens: np.ndarray) -> np.ndarray:
        n = len(indices)
        if n == 0:
            return np.empty(0, dtype=np.bool_)
        order = np.argsort(indices, kind="stable")
        sorted_index = indices[order]
        sorted_taken = takens[order]

        # Per-access transition functions as rows of 4 next-states, then an
        # inclusive segmented prefix scan composing them (segment = run of
        # equal indices; the sort makes segment membership a plain equality
        # test at any doubling distance).
        prefix = np.where(sorted_taken[:, None], _STEP_TAKEN[None, :],
                          _STEP_NOT_TAKEN[None, :])
        shift = 1
        while shift < n:
            rows = np.nonzero(sorted_index[shift:] == sorted_index[:-shift])[0]
            if rows.size == 0:
                # Runs are contiguous, so no pair at this distance in the
                # same segment means the longest run is <= shift: done.
                break
            prefix[shift + rows] = np.take_along_axis(prefix[shift + rows],
                                                      prefix[rows], axis=1)
            shift <<= 1

        prediction_view = np.frombuffer(self._prediction, dtype=np.uint8)
        hysteresis_view = np.frombuffer(self._hysteresis, dtype=np.uint8)
        initial = (2 * prediction_view[sorted_index]
                   + hysteresis_view[sorted_index]).astype(np.uint8)

        first = np.empty(n, dtype=np.bool_)
        first[0] = True
        first[1:] = sorted_index[1:] != sorted_index[:-1]
        state_before = np.empty(n, dtype=np.uint8)
        state_before[first] = initial[first]
        if n > 1:
            carried = np.take_along_axis(prefix[:-1], initial[1:, None],
                                         axis=1)[:, 0]
            interior = ~first[1:]
            state_before[1:][interior] = carried[interior]

        # Final state per touched counter: the inclusive prefix of each
        # segment's last access, applied to that counter's initial state.
        last = np.empty(n, dtype=np.bool_)
        last[-1] = True
        last[:-1] = first[1:]
        state_after = np.take_along_axis(prefix[last],
                                         initial[last][:, None], axis=1)[:, 0]
        touched = sorted_index[last]
        np.frombuffer(self._prediction, dtype=np.uint8)[touched] = \
            state_after >> 1
        np.frombuffer(self._hysteresis, dtype=np.uint8)[touched] = \
            state_after & 1

        predictions = np.empty(n, dtype=np.bool_)
        predictions[order] = state_before >= 2
        return predictions

    def set_counter(self, index: int, value: int) -> None:
        """Force a counter to a conventional 2-bit value (0..3). Test hook."""
        if not 0 <= value <= 3:
            raise ValueError(f"counter value must be in 0..3, got {value}")
        index &= self.size - 1
        self._prediction[index] = 1 if value >= 2 else 0
        self._hysteresis[self._hysteresis_index(index)] = 1 if value in (0, 3) else 0

    # -- bookkeeping ---------------------------------------------------------

    @property
    def storage_bits(self) -> int:
        """Total storage in bits (prediction + hysteresis)."""
        return self.size + self.hysteresis_size

    def reset(self, *, init_taken: bool = False) -> None:
        """Reset every counter to the weak state in the given direction."""
        initial = 1 if init_taken else 0
        for i in range(self.size):
            self._prediction[i] = initial
        for i in range(self.hysteresis_size):
            self._hysteresis[i] = 0

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SplitCounterArray(size={self.size}, "
                f"hysteresis_size={self.hysteresis_size})")
