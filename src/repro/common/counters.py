"""Two-bit saturating counters with physically split prediction and
hysteresis arrays.

The EV8 predictor stores its 2-bit counters as two separate memory arrays
(Section 4.3 of the paper): the *prediction* array holds the direction bit
read at fetch time, the *hysteresis* array holds the strength bit touched at
update time.  The partial update policy only ever needs:

* a read of the prediction array to predict,
* a write of the hysteresis array to *strengthen* a correct prediction,
* a read of the hysteresis array plus writes of both arrays on a
  misprediction.

Section 4.4 additionally allows a hysteresis array *smaller* than the
prediction array: two prediction entries whose indices differ only in the
most significant bit share one hysteresis entry, so the hysteresis array
suffers more aliasing than the prediction array.

The conventional 2-bit counter states map onto (prediction, hysteresis) as::

    strong not-taken  = (0, 1)
    weak   not-taken  = (0, 0)
    weak   taken      = (1, 0)
    strong taken      = (1, 1)

i.e. the prediction bit is the counter's direction and the hysteresis bit is
its strength.  ``update`` implements the usual saturating-counter step in
this encoding; ``strengthen`` and ``weaken`` expose the half-steps the
partial update policy needs.

:meth:`SplitCounterArray.batch_access` is the vectorized heart of the
batched simulation engine (:mod:`repro.sim.engine`): it replays a whole
predict-then-train index/outcome stream through the array in numpy,
bit-identically to calling ``predict`` + ``update`` per branch.  The trick:
counters in different *hysteresis groups* never interact (with private
hysteresis a group is a single counter; with shared hysteresis it is the
``size / hysteresis_size`` prediction entries around one hysteresis bit), so
a stable sort by group index gathers each group's accesses into a
contiguous, temporally ordered run; within runs, the group is a state
machine over ``2^(ratio+1)`` states — the partner direction bits plus the
shared strength bit — and state-machine transition *composition* is
associative, so the per-run sequential dependence resolves with a segmented
Hillis-Steele prefix scan (log2(n) fully-vectorized composition passes)
instead of a per-branch Python loop.  Private hysteresis is simply the
4-state, ratio-1 instance of the same machine.
"""

from __future__ import annotations

import numpy as np

from repro.obs import NULL_TELEMETRY, NullTelemetry

__all__ = ["SplitCounterArray"]

# Saturating-counter transition tables over the packed state
# s = 2*direction + strength (0 = weak NT, 1 = strong NT, 2 = weak T,
# 3 = strong T): _STEP_NOT_TAKEN[s] / _STEP_TAKEN[s] is the state after
# training on a not-taken / taken outcome — exactly ``_step_towards``.
_STEP_NOT_TAKEN = np.array([1, 1, 0, 2], dtype=np.uint8)
_STEP_TAKEN = np.array([2, 0, 3, 3], dtype=np.uint8)

_MAX_SHARING_RATIO = 5
"""Largest ``size / hysteresis_size`` the batched scan supports: the group
state packs ``ratio`` direction bits plus the strength bit, so the
transition tables have ``2^(ratio+1)`` columns and the scan carries that
many bytes per access.  The EV8 uses ratio 2; 5 (a 64-state machine) is
already far beyond any configuration in the paper."""

_GROUP_STEP_CACHE: dict[int, np.ndarray] = {}


def _group_step_table(ratio: int) -> np.ndarray:
    """Transition tables for a hysteresis group of ``ratio`` prediction
    entries sharing one strength bit.

    Group state ``s = (direction bits << 1) | strength`` (direction bit
    ``k`` belongs to the prediction entry ``base + k * hysteresis_size``).
    Row ``2 * k + taken`` maps every state to the state after an ``update``
    step through partner ``k`` towards ``taken`` — the exact
    ``_step_towards`` semantics, lifted to the group.  ``ratio == 1``
    reproduces the classic 4-state saturating-counter tables.
    """
    table = _GROUP_STEP_CACHE.get(ratio)
    if table is not None:
        return table
    states = 1 << (ratio + 1)
    table = np.empty((2 * ratio, states), dtype=np.uint8)
    for partner in range(ratio):
        for taken in (0, 1):
            for state in range(states):
                strength = state & 1
                directions = state >> 1
                direction = (directions >> partner) & 1
                if direction == taken:
                    strength = 1
                elif strength:
                    strength = 0
                else:
                    directions ^= 1 << partner  # flip, stay weak
                table[2 * partner + taken, state] = (directions << 1) | strength
    _GROUP_STEP_CACHE[ratio] = table
    return table


class SplitCounterArray:
    """An array of 2-bit saturating counters stored as split prediction and
    hysteresis bit arrays, with optional hysteresis sharing.

    Parameters
    ----------
    size:
        Number of prediction entries.  Must be a power of two.
    hysteresis_size:
        Number of hysteresis entries.  Must be a power of two and divide
        ``size``; when smaller than ``size``, ``size / hysteresis_size``
        prediction entries share each hysteresis entry (the EV8 uses a ratio
        of 2 for G0 and Meta; the index is the prediction index with the most
        significant bit(s) dropped).  Defaults to ``size`` (private
        hysteresis).
    init_taken:
        Initial direction of every counter.  The paper initialises all
        entries weakly not-taken (Section 8.1.1), which is the default.
    """

    __slots__ = ("size", "hysteresis_size", "_prediction", "_hysteresis",
                 "_telemetry", "_tele_names")

    def __init__(self, size: int, hysteresis_size: int | None = None, *,
                 init_taken: bool = False) -> None:
        if size <= 0 or size & (size - 1):
            raise ValueError(f"counter array size must be a power of two, got {size}")
        if hysteresis_size is None:
            hysteresis_size = size
        if hysteresis_size <= 0 or hysteresis_size & (hysteresis_size - 1):
            raise ValueError(
                f"hysteresis size must be a power of two, got {hysteresis_size}")
        if hysteresis_size > size:
            raise ValueError(
                f"hysteresis size {hysteresis_size} exceeds prediction size {size}")
        self.size = size
        self.hysteresis_size = hysteresis_size
        initial = 1 if init_taken else 0
        self._prediction = bytearray([initial] * size)
        # Weak initial state: hysteresis 0 regardless of direction.
        self._hysteresis = bytearray(hysteresis_size)
        self._telemetry: NullTelemetry = NULL_TELEMETRY
        self._tele_names: tuple[str, str, str, str] | None = None

    # -- telemetry ---------------------------------------------------------

    def attach_telemetry(self, sink: NullTelemetry,
                         label: str = "counters") -> None:
        """Route this array's traffic counters into ``sink`` under
        ``bank.<label>.*`` names.

        Recorded (all engine-consistent **logical** port traffic — the
        scalar walk and the batched replays count identically):

        * ``bank.<label>.reads`` — fetch-time prediction-array reads (one
          per prediction; update-time state inspection is not a port read,
          see :meth:`peek`);
        * ``bank.<label>.prediction_writes`` — direction-bit write
          operations (saturating-counter direction flips);
        * ``bank.<label>.hysteresis_writes`` — strength-bit write
          operations *issued* (an agreeing outcome asserts the bit, a
          strongly-disagreeing outcome clears it — counted whether or not
          the stored bit changes, because the array write port is occupied
          either way).  This is the traffic partial update exists to
          suppress (Section 4.2): a suppressed update issues no write at
          all, which is exactly what these counters make visible;
        * ``bank.<label>.sharing_conflicts`` — hysteresis writes issued
          while the entry's sharing group held *disagreeing* direction bits
          (the Section 4.4 hazard: one strength bit serving counters that
          currently point opposite ways).

        Every counter update op issues exactly one write — the write target
        is a pure function of the pre-write (direction, strength, outcome),
        which is what lets the vectorized replays account identically to
        the scalar walk.
        """
        self._telemetry = sink
        prefix = f"bank.{label}"
        self._tele_names = (f"{prefix}.reads",
                            f"{prefix}.prediction_writes",
                            f"{prefix}.hysteresis_writes",
                            f"{prefix}.sharing_conflicts")

    def _count_hysteresis_write(self, h_index: int) -> None:
        """Account one strength-bit write (telemetry-enabled path only)."""
        names = self._tele_names
        self._telemetry.count(names[2])
        ratio = self.size // self.hysteresis_size
        if ratio > 1:
            first = self._prediction[h_index]
            for k in range(1, ratio):
                if self._prediction[h_index + k * self.hysteresis_size] != first:
                    self._telemetry.count(names[3])
                    break

    # -- index plumbing ----------------------------------------------------

    def _hysteresis_index(self, index: int) -> int:
        """Map a prediction index to its (possibly shared) hysteresis index.

        Sharing drops the most significant bit(s) of the prediction index
        (Section 4.4: "the prediction table and the hysteresis table are
        indexed using the same index function, except the most significant
        bit").
        """
        return index & (self.hysteresis_size - 1)

    def sharing_partners(self, index: int) -> list[int]:
        """Return all prediction indices sharing ``index``'s hysteresis entry."""
        base = self._hysteresis_index(index)
        ratio = self.size // self.hysteresis_size
        return [base + k * self.hysteresis_size for k in range(ratio)]

    # -- reads -------------------------------------------------------------

    def predict(self, index: int) -> bool:
        """Return the direction bit (True = predict taken).

        This is the only read needed at fetch time; it is the operation the
        ``bank.<label>.reads`` telemetry counter counts.
        """
        if self._telemetry.enabled:
            self._telemetry.count(self._tele_names[0])
        return bool(self._prediction[index & (self.size - 1)])

    def peek(self, index: int) -> bool:
        """The direction bit *without* telemetry accounting.

        Update-time logic (e.g. the 2Bc-gskew chooser recomputing the
        overall prediction after training Meta) inspects state the hardware
        already holds in flight — it is not a fetch-port read, so it must
        not inflate ``bank.<label>.reads``.
        """
        return bool(self._prediction[index & (self.size - 1)])

    def hysteresis(self, index: int) -> bool:
        """Return the hysteresis (strength) bit for a prediction index."""
        return bool(self._hysteresis[self._hysteresis_index(index & (self.size - 1))])

    def counter_value(self, index: int) -> int:
        """Return the conventional 2-bit counter value (0..3) for debugging
        and tests: 0/1 = strong/weak not-taken, 2/3 = weak/strong taken."""
        index &= self.size - 1
        direction = self._prediction[index]
        strength = self._hysteresis[self._hysteresis_index(index)]
        if direction:
            return 2 + strength
        return 1 - strength

    # -- writes ------------------------------------------------------------

    def strengthen(self, index: int, taken: bool) -> None:
        """Reinforce a correct prediction: saturate the counter towards the
        outcome without flipping the direction bit.

        Matches the partial-update "strengthen" operation: only the
        hysteresis array is written, and only when the stored direction
        agrees with the outcome (it always does when called on a correct
        prediction, but a shared hysteresis entry may currently be weak
        because of an alias, hence the unconditional set).
        """
        index &= self.size - 1
        if bool(self._prediction[index]) == taken:
            h_index = self._hysteresis_index(index)
            if self._telemetry.enabled:
                self._count_hysteresis_write(h_index)
            self._hysteresis[h_index] = 1
        else:
            # Direction disagrees (possible when the caller strengthens a
            # majority vote that this particular bank did not contribute
            # to).  A strengthen in the wrong direction is a weaken.
            self._step_towards(index, taken)

    def update(self, index: int, taken: bool) -> None:
        """Full saturating-counter update step towards ``taken``."""
        self._step_towards(index & (self.size - 1), taken)

    def _step_towards(self, index: int, taken: bool) -> None:
        h_index = self._hysteresis_index(index)
        direction = self._prediction[index]
        strength = self._hysteresis[h_index]
        if bool(direction) == taken:
            # The write (assert the strength bit) is issued whether or not
            # the bit was already set; count it unconditionally.
            if self._telemetry.enabled:
                self._count_hysteresis_write(h_index)
            if not strength:
                self._hysteresis[h_index] = 1
        elif strength:
            if self._telemetry.enabled:
                self._count_hysteresis_write(h_index)
            self._hysteresis[h_index] = 0
        else:
            if self._telemetry.enabled:
                self._telemetry.count(self._tele_names[1])
            self._prediction[index] = 1 if taken else 0
            # Stay weak after a direction flip (00 <-> 10 transition).

    # -- batched access ------------------------------------------------------

    @property
    def batch_supported(self) -> bool:
        """Whether :meth:`batch_access` is available.

        Shared hysteresis couples the prediction entries around each
        hysteresis bit, but the coupling is *local to the group*: grouping
        the access stream by hysteresis index restores the independence the
        sort-and-scan relies on, with the group's joint (directions,
        strength) state as the scanned state machine.  Only absurd sharing
        ratios (state space beyond ``2^(ratio+1)`` = 64 states) fall outside
        the envelope.
        """
        return self.size // self.hysteresis_size <= _MAX_SHARING_RATIO

    def batch_access(self, indices: np.ndarray, takens: np.ndarray,
                     chunk: int = 1 << 20) -> np.ndarray:
        """Vectorized predict-then-train over a whole access stream.

        Equivalent to ``[self.predict(i) for i in indices]`` interleaved with
        ``self.update(i, t)`` per element, in stream order: returns the
        per-access predictions (bool array) and leaves every counter in the
        same final state the scalar replay would — including shared/half-size
        hysteresis configurations, which scan over the joint group state.
        Processed in chunks of ``chunk`` accesses to bound the scan's working
        memory; the table state carries between chunks, so chunking does not
        change results.
        """
        if not self.batch_supported:
            raise ValueError(
                f"batch_access supports hysteresis sharing ratios up to "
                f"{_MAX_SHARING_RATIO}, got "
                f"{self.size // self.hysteresis_size}")
        indices = np.asarray(indices).astype(np.int64, copy=False)
        takens = np.asarray(takens, dtype=np.bool_)
        if indices.shape != takens.shape:
            raise ValueError(
                f"index/outcome streams have mismatched shapes: "
                f"{indices.shape} vs {takens.shape}")
        indices = indices & (self.size - 1)
        if self._telemetry.enabled and len(indices):
            self._telemetry.count(self._tele_names[0], len(indices))
        predictions = np.empty(len(indices), dtype=np.bool_)
        for lo in range(0, len(indices), max(chunk, 1)):
            hi = lo + max(chunk, 1)
            predictions[lo:hi] = self._batch_access_chunk(indices[lo:hi],
                                                          takens[lo:hi])
        return predictions

    def _batch_access_chunk(self, indices: np.ndarray,
                            takens: np.ndarray) -> np.ndarray:
        n = len(indices)
        if n == 0:
            return np.empty(0, dtype=np.bool_)
        ratio = self.size // self.hysteresis_size
        groups = indices & (self.hysteresis_size - 1)
        partners = indices >> (self.hysteresis_size.bit_length() - 1)
        order = np.argsort(groups, kind="stable")
        sorted_group = groups[order]
        sorted_partner = partners[order].astype(np.uint8)

        # Per-access transition functions as rows of 2^(ratio+1) next-states
        # — row ``2 * partner + taken`` of the group step table — then an
        # inclusive segmented prefix scan composing them (segment = run of
        # equal group indices; the sort makes segment membership a plain
        # equality test at any doubling distance).
        table = _group_step_table(ratio)
        sorted_taken = takens[order]
        variant = 2 * sorted_partner + sorted_taken
        prefix = table[variant]
        shift = 1
        while shift < n:
            rows = np.nonzero(sorted_group[shift:] == sorted_group[:-shift])[0]
            if rows.size == 0:
                # Runs are contiguous, so no pair at this distance in the
                # same segment means the longest run is <= shift: done.
                break
            prefix[shift + rows] = np.take_along_axis(prefix[shift + rows],
                                                      prefix[rows], axis=1)
            shift <<= 1

        prediction_view = np.frombuffer(self._prediction, dtype=np.uint8)
        hysteresis_view = np.frombuffer(self._hysteresis, dtype=np.uint8)
        directions = np.zeros(n, dtype=np.uint8)
        for k in range(ratio):
            directions |= prediction_view[sorted_group
                                          + k * self.hysteresis_size] << k
        initial = (directions << 1) | hysteresis_view[sorted_group]

        first = np.empty(n, dtype=np.bool_)
        first[0] = True
        first[1:] = sorted_group[1:] != sorted_group[:-1]
        state_before = np.empty(n, dtype=np.uint8)
        state_before[first] = initial[first]
        if n > 1:
            carried = np.take_along_axis(prefix[:-1], initial[1:, None],
                                         axis=1)[:, 0]
            interior = ~first[1:]
            state_before[1:][interior] = carried[interior]

        if self._telemetry.enabled:
            # Logical write accounting, identical to the scalar
            # ``_step_towards`` arms: with the pre-access state in hand,
            # which array each access writes is a pure function of
            # (direction, strength, outcome).
            own_direction = ((state_before >> 1) >> sorted_partner) & 1
            strength = state_before & 1
            agree = own_direction == sorted_taken
            hysteresis_write = agree | (strength == 1)
            flips = int(np.count_nonzero(~agree & (strength == 0)))
            if flips:
                self._telemetry.count(self._tele_names[1], flips)
            hyst_writes = int(np.count_nonzero(hysteresis_write))
            if hyst_writes:
                self._telemetry.count(self._tele_names[2], hyst_writes)
            if ratio > 1:
                directions = state_before >> 1
                uniform = (directions == 0) | (directions == (1 << ratio) - 1)
                conflicts = int(np.count_nonzero(hysteresis_write & ~uniform))
                if conflicts:
                    self._telemetry.count(self._tele_names[3], conflicts)

        # Final state per touched group: the inclusive prefix of each
        # segment's last access, applied to that group's initial state.
        last = np.empty(n, dtype=np.bool_)
        last[-1] = True
        last[:-1] = first[1:]
        state_after = np.take_along_axis(prefix[last],
                                         initial[last][:, None], axis=1)[:, 0]
        touched = sorted_group[last]
        hysteresis_view[touched] = state_after & 1
        final_directions = state_after >> 1
        for k in range(ratio):
            prediction_view[touched + k * self.hysteresis_size] = \
                (final_directions >> k) & 1

        predictions = np.empty(n, dtype=np.bool_)
        predictions[order] = ((state_before >> 1) >> sorted_partner) & 1 != 0
        return predictions

    # -- vectorized scatter/gather helpers (group-unique index sets) ---------

    def predict_many(self, indices: np.ndarray) -> np.ndarray:
        """Gather direction bits for an int index array (read-only, any
        duplicates allowed) — the vectorized :meth:`predict`."""
        if self._telemetry.enabled and len(indices):
            self._telemetry.count(self._tele_names[0], len(indices))
        view = np.frombuffer(self._prediction, dtype=np.uint8)
        return view[indices & (self.size - 1)] != 0

    def packed_many(self, indices: np.ndarray) -> np.ndarray:
        """Gather packed counter states ``2*direction + strength`` (uint8,
        read-only, duplicates allowed).  Counts as one fetch-time read per
        element, exactly like :meth:`predict_many`."""
        if self._telemetry.enabled and len(indices):
            self._telemetry.count(self._tele_names[0], len(indices))
        indices = indices & (self.size - 1)
        prediction = np.frombuffer(self._prediction, dtype=np.uint8)[indices]
        hysteresis = np.frombuffer(self._hysteresis, dtype=np.uint8)[
            indices & (self.hysteresis_size - 1)]
        return (prediction << 1) | hysteresis

    def train_many_unique(self, indices: np.ndarray, takens: np.ndarray,
                          strengthen: np.ndarray | None = None,
                          update: np.ndarray | None = None) -> None:
        """Vectorized :meth:`strengthen` / :meth:`update` over positions
        whose **hysteresis groups are pairwise distinct** within the call
        (the caller guarantees no two selected positions share a hysteresis
        entry, hence no ordering between them matters).

        ``strengthen`` and ``update`` are disjoint boolean masks selecting
        which positions receive which operation; unselected positions are
        untouched.
        """
        if strengthen is None and update is None:
            return
        if strengthen is None:
            selected = update
        elif update is None:
            selected = strengthen
        else:
            selected = strengthen | update
        if not selected.any():
            return
        idx = (indices & (self.size - 1))[selected]
        taken = takens[selected]
        h_idx = idx & (self.hysteresis_size - 1)
        prediction_view = np.frombuffer(self._prediction, dtype=np.uint8)
        hysteresis_view = np.frombuffer(self._hysteresis, dtype=np.uint8)
        direction = prediction_view[idx]
        state = (direction << 1) | hysteresis_view[h_idx]
        stepped = np.where(taken, _STEP_TAKEN[state], _STEP_NOT_TAKEN[state])
        if strengthen is not None:
            # Strengthen with an agreeing direction saturates the strength
            # bit; with a disagreeing direction it degenerates to a step
            # (exactly the scalar ``strengthen``).
            agreeing = strengthen[selected] & ((direction != 0) == taken)
            stepped = np.where(agreeing, (direction << 1) | 1, stepped)
        if self._telemetry.enabled:
            self._account_unique_writes(h_idx, direction, state, taken)
        prediction_view[idx] = stepped >> 1
        hysteresis_view[h_idx] = stepped & 1

    def _account_unique_writes(self, h_idx: np.ndarray,
                               direction: np.ndarray, state: np.ndarray,
                               taken: np.ndarray) -> None:
        """Logical write accounting for :meth:`train_many_unique`, mirroring
        the scalar ``strengthen`` / ``_step_towards`` arms exactly (called
        with the pre-write state, like the scalar checks).  Strengthen and
        update ops obey the same rule: an agreeing outcome issues a
        hysteresis write, a strongly-disagreeing outcome issues a hysteresis
        write, a weakly-disagreeing outcome issues a prediction write."""
        strength = state & 1
        agree = (direction != 0) == taken
        hysteresis_write = agree | (strength == 1)
        prediction_write = ~agree & (strength == 0)
        names = self._tele_names
        flips = int(np.count_nonzero(prediction_write))
        if flips:
            self._telemetry.count(names[1], flips)
        hyst_writes = int(np.count_nonzero(hysteresis_write))
        if hyst_writes:
            self._telemetry.count(names[2], hyst_writes)
        ratio = self.size // self.hysteresis_size
        if ratio > 1:
            view = np.frombuffer(self._prediction, dtype=np.uint8)
            first = view[h_idx]
            uniform = np.ones(len(h_idx), dtype=np.bool_)
            for k in range(1, ratio):
                uniform &= view[h_idx + k * self.hysteresis_size] == first
            conflicts = int(np.count_nonzero(hysteresis_write & ~uniform))
            if conflicts:
                self._telemetry.count(names[3], conflicts)

    def set_counter(self, index: int, value: int) -> None:
        """Force a counter to a conventional 2-bit value (0..3). Test hook."""
        if not 0 <= value <= 3:
            raise ValueError(f"counter value must be in 0..3, got {value}")
        index &= self.size - 1
        self._prediction[index] = 1 if value >= 2 else 0
        self._hysteresis[self._hysteresis_index(index)] = 1 if value in (0, 3) else 0

    # -- bookkeeping ---------------------------------------------------------

    @property
    def storage_bits(self) -> int:
        """Total storage in bits (prediction + hysteresis)."""
        return self.size + self.hysteresis_size

    def reset(self, *, init_taken: bool = False) -> None:
        """Reset every counter to the weak state in the given direction."""
        initial = 1 if init_taken else 0
        for i in range(self.size):
            self._prediction[i] = initial
        for i in range(self.hysteresis_size):
            self._hysteresis[i] = 0

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SplitCounterArray(size={self.size}, "
                f"hysteresis_size={self.hysteresis_size})")
