"""Bit-manipulation helpers shared across the predictor implementations.

All predictor index functions in this repository are ultimately built from a
small set of primitive operations on non-negative integers interpreted as bit
vectors: extracting bit fields, XOR-folding long vectors down to a fixed
width, and computing parities of selected bit subsets.  Keeping them here (and
testing them exhaustively) lets the index-function modules read like the
equations in the paper.
"""

from __future__ import annotations

__all__ = [
    "bit",
    "bits",
    "mask",
    "set_bit",
    "concat_bits",
    "xor_fold",
    "parity",
    "parity_of_bits",
    "popcount",
    "reverse_bits",
    "rotate_left",
    "rotate_right",
]


def mask(width: int) -> int:
    """Return a bit mask of ``width`` low-order ones.

    >>> mask(4)
    15
    >>> mask(0)
    0
    """
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bit(value: int, position: int) -> int:
    """Return bit ``position`` of ``value`` (0 or 1).

    >>> bit(0b1010, 1)
    1
    >>> bit(0b1010, 0)
    0
    """
    if position < 0:
        raise ValueError(f"bit position must be non-negative, got {position}")
    return (value >> position) & 1


def bits(value: int, low: int, width: int) -> int:
    """Return the ``width``-bit field of ``value`` starting at bit ``low``.

    >>> bits(0b110100, 2, 3)
    5
    """
    if low < 0:
        raise ValueError(f"low bit must be non-negative, got {low}")
    if width < 0:
        raise ValueError(f"field width must be non-negative, got {width}")
    return (value >> low) & mask(width)


def set_bit(value: int, position: int, bit_value: int) -> int:
    """Return ``value`` with bit ``position`` forced to ``bit_value``.

    >>> set_bit(0b1000, 0, 1)
    9
    >>> set_bit(0b1001, 3, 0)
    1
    """
    if bit_value not in (0, 1):
        raise ValueError(f"bit value must be 0 or 1, got {bit_value}")
    cleared = value & ~(1 << position)
    return cleared | (bit_value << position)


def concat_bits(*fields: tuple[int, int]) -> int:
    """Concatenate ``(value, width)`` fields, first field ending up most
    significant.

    >>> concat_bits((0b10, 2), (0b011, 3))
    19
    """
    result = 0
    for value, width in fields:
        if width < 0:
            raise ValueError(f"field width must be non-negative, got {width}")
        result = (result << width) | (value & mask(width))
    return result


def xor_fold(value: int, width: int) -> int:
    """Fold an arbitrarily long bit vector down to ``width`` bits by XORing
    successive ``width``-wide segments.

    This is the standard technique for hashing a history register that is
    longer than the predictor index (Section 5.3 of the paper notes the EV8
    uses 21 history bits to index a 64K-entry table; the surplus bits must be
    folded into the index).

    >>> xor_fold(0b1111_0000_1010, 4)
    5
    >>> xor_fold(0b101, 8)
    5
    """
    if width <= 0:
        raise ValueError(f"fold width must be positive, got {width}")
    folded = 0
    segment_mask = mask(width)
    while value:
        folded ^= value & segment_mask
        value >>= width
    return folded


def parity(value: int) -> int:
    """Return the XOR of all bits of ``value`` (0 or 1).

    >>> parity(0b1011)
    1
    >>> parity(0b1001)
    0
    """
    return popcount(value) & 1


def parity_of_bits(value: int, positions: tuple[int, ...] | list[int]) -> int:
    """Return the XOR of the bits of ``value`` at the given positions.

    This is the primitive behind every "large tree of XOR gates" bit in the
    EV8 unshuffle functions (Section 7.1 step 3).

    >>> parity_of_bits(0b1010, (1, 3))
    0
    >>> parity_of_bits(0b1010, (0, 1))
    1
    """
    acc = 0
    for position in positions:
        acc ^= (value >> position) & 1
    return acc


def popcount(value: int) -> int:
    """Return the number of set bits in ``value``.

    >>> popcount(0b1011)
    3
    """
    if value < 0:
        raise ValueError(f"popcount requires a non-negative value, got {value}")
    return value.bit_count()


def reverse_bits(value: int, width: int) -> int:
    """Return ``value`` with its low ``width`` bits reversed.

    >>> reverse_bits(0b0011, 4)
    12
    """
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def rotate_left(value: int, amount: int, width: int) -> int:
    """Rotate the low ``width`` bits of ``value`` left by ``amount``.

    >>> rotate_left(0b0011, 1, 4)
    6
    >>> rotate_left(0b1001, 1, 4)
    3
    """
    if width <= 0:
        raise ValueError(f"rotate width must be positive, got {width}")
    amount %= width
    value &= mask(width)
    return ((value << amount) | (value >> (width - amount))) & mask(width)


def rotate_right(value: int, amount: int, width: int) -> int:
    """Rotate the low ``width`` bits of ``value`` right by ``amount``.

    >>> rotate_right(0b0011, 1, 4)
    9
    """
    if width <= 0:
        raise ValueError(f"rotate width must be positive, got {width}")
    return rotate_left(value, width - (amount % width), width)
