# Convenience targets for the EV8 reproduction.

PYTHON ?= python

.PHONY: install test bench bench-quick report examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Quarter-scale traces: every table/figure in a few minutes.
bench-quick:
	REPRO_TRACE_BRANCHES=75000 $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

report:
	$(PYTHON) -m repro.experiments.runall --output report.md

examples:
	$(PYTHON) examples/quickstart.py li 40000
	$(PYTHON) examples/frontend_pipeline.py perl
	$(PYTHON) examples/design_space.py 40000
	$(PYTHON) examples/smt_interference.py 20000
	$(PYTHON) examples/aliasing_analysis.py gcc
	$(PYTHON) examples/custom_workload.py

clean:
	rm -rf .trace_cache results .benchmarks
